//! Minimal, dependency-free stand-in for the `bytes` crate.
//!
//! Implements the subset the trace crate uses: big-endian `get_*`/`put_*`
//! cursors over byte slices, a growable [`BytesMut`] scratch buffer with
//! `split`/`freeze`, and the immutable [`Bytes`] handle. No refcounted
//! zero-copy machinery — buffers here are small per-event scratch space.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// Read cursor over a byte source (big-endian accessors).
pub trait Buf {
    /// Remaining bytes.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a big-endian `u32`, advancing 4 bytes.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`, advancing 8 bytes.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write cursor over a byte sink (big-endian accessors).
pub trait BufMut {
    /// Appends raw bytes, advancing the cursor.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for &mut [u8] {
    fn put_slice(&mut self, src: &[u8]) {
        assert!(self.len() >= src.len(), "buffer overflow");
        let taken = std::mem::take(self);
        let (head, tail) = taken.split_at_mut(src.len());
        head.copy_from_slice(src);
        *self = tail;
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// A growable byte scratch buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut(Vec::with_capacity(capacity))
    }

    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Clears the contents, keeping capacity.
    pub fn clear(&mut self) {
        self.0.clear();
    }

    /// Splits off the full contents, leaving `self` empty (with its
    /// capacity retained, so the scratch buffer does not reallocate).
    pub fn split(&mut self) -> BytesMut {
        BytesMut(std::mem::take(&mut self.0))
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_round_trip_big_endian() {
        let mut buf = [0u8; 12];
        {
            let mut w: &mut [u8] = &mut buf;
            w.put_u32(0xdead_beef);
            w.put_u64(0x0102_0304_0506_0708);
        }
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytesmut_split_freeze() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u64(7);
        b.put_u32(9);
        assert_eq!(b.len(), 12);
        let frozen = b.split().freeze();
        assert!(b.is_empty());
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u64(), 7);
        assert_eq!(r.get_u32(), 9);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32();
    }
}
