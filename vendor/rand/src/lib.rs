//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements exactly the API surface the workspace uses, with the
//! `rand` 0.9 method names (`random`, `random_range`, `random_bool`):
//!
//! * [`SmallRng`] — xoshiro256++, seeded via SplitMix64 like upstream,
//! * the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits,
//! * [`seq::SliceRandom`] (Fisher–Yates `shuffle`, `choose`),
//! * [`seq::index::sample`] (partial Fisher–Yates without replacement).
//!
//! Everything is deterministic given a seed; stream values differ from
//! upstream `rand` (no compatibility promise is needed — the workspace
//! only requires seed-stable determinism).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of 32/64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the "standard" distribution:
/// `f64`/`f32` in `[0, 1)`, integers over their full range, fair `bool`.
pub trait StandardDist: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardDist for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardDist for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDist for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardDist for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value; panics on an empty range like upstream.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + reduce(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi as i128 - lo as i128 + 1;
                if span > u64::MAX as i128 {
                    // Full i64/isize domain: every word is a valid draw.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + reduce(rng.next_u64(), span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardDist>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as StandardDist>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Maps a random word to `0..span` (Lemire's multiply-shift reduction;
/// the tiny modulo bias is irrelevant for simulation use).
fn reduce(word: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((word as u128 * span as u128) >> 64) as u64
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws from the standard distribution of `T`.
    fn random<T: StandardDist>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        <f64 as StandardDist>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::SmallRng;
}

/// A small, fast, seedable generator: xoshiro256++.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as upstream uses for seed_from_u64.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = SampleRange::sample_single(0..=i, rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = SampleRange::sample_single(0..self.len(), rng);
                self.get(i)
            }
        }
    }

    /// Index sampling without replacement, mirroring `rand::seq::index`.
    pub mod index {
        use super::super::{RngCore, SampleRange};

        /// A set of sampled indices.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Iterates over the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Converts into a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length` uniformly,
        /// in random order (partial Fisher–Yates).
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`, like upstream.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} of {length} indices"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = SampleRange::sample_single(i..length, rng);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::index::sample;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = rng.random_range(5..=5);
            assert_eq!(y, 5);
            let f: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f32 = rng.random::<f32>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn full_domain_inclusive_ranges() {
        let mut rng = SmallRng::seed_from_u64(5);
        // Must not overflow the span computation (regression: the signed
        // full-domain span is 2^64, which truncated to 0 as u64).
        let mut saw_negative = false;
        let mut saw_positive = false;
        for _ in 0..200 {
            let x: i64 = rng.random_range(i64::MIN..=i64::MAX);
            saw_negative |= x < 0;
            saw_positive |= x > 0;
            let y: u64 = rng.random_range(0..=u64::MAX);
            let _ = y;
            let b: i8 = rng.random_range(i8::MIN..=i8::MAX);
            let _ = b;
        }
        assert!(
            saw_negative && saw_positive,
            "full-domain draw is not degenerate"
        );
    }

    #[test]
    fn full_range_coverage_small_span() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_without_replacement() {
        let mut rng = SmallRng::seed_from_u64(9);
        let picked = sample(&mut rng, 100, 10).into_vec();
        assert_eq!(picked.len(), 10);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        assert!(picked.iter().all(|&i| i < 100));
    }

    #[test]
    fn random_bool_probability_extremes() {
        let mut rng = SmallRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
