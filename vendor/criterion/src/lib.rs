//! Minimal, dependency-free stand-in for `criterion`.
//!
//! Provides the macro/API surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `Bencher::iter`/`iter_batched`, `Throughput`, `BatchSize`) with a
//! simple wall-clock measurement loop: warm up briefly, then run batches
//! until a small time budget is spent and report the mean ns/iteration.
//! No statistics, plots, or baselines — enough to compare the tracers'
//! fast paths by eye and to keep `cargo bench` runnable offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration input sizing hint (accepted, unused).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    measure_budget: Duration,
    warmup_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure_budget: Duration::from_millis(200),
            warmup_budget: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self, None, name, None, f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the
    /// vendored runner is time-budgeted instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotates throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self.criterion, Some(&self.name), name, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Measures a closure's per-iteration cost.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the measurement loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over per-iteration inputs built by `setup`
    /// (setup time excluded).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    group: Option<&str>,
    name: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let full_name = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    // Warm up and estimate per-iteration cost with a single iteration.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warmup_start = Instant::now();
    f(&mut bencher);
    let mut per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    while warmup_start.elapsed() < criterion.warmup_budget {
        f(&mut bencher);
        per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    }
    // One measured run sized to the budget.
    let iters = (criterion.measure_budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000);
    bencher.iters = iters as u64;
    f(&mut bencher);
    let ns_per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.1} Melem/s)", n as f64 / ns_per_iter * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / ns_per_iter * 1e9 / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!(
        "{full_name:<40} {ns_per_iter:>12.1} ns/iter  [{} iters]{rate}",
        bencher.iters
    );
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` / `cargo test --benches` pass harness flags
            // (e.g. --bench, --test) which this simple runner ignores;
            // `--list` must print nothing and exit for test discovery.
            if std::env::args().any(|a| a == "--list") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_addition(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.throughput(Throughput::Elements(1));
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn runner_completes_quickly() {
        let mut c = Criterion {
            measure_budget: Duration::from_millis(5),
            warmup_budget: Duration::from_millis(1),
        };
        bench_addition(&mut c);
        c.bench_function("top_level", |b| b.iter(|| 1 + 1));
    }
}
