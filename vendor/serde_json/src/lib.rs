//! Minimal, dependency-free stand-in for `serde_json`.
//!
//! Renders and parses the vendored mini-serde [`Value`] tree as JSON.
//! Numbers round-trip exactly: integers print as integers, floats use
//! Rust's shortest round-trip `Display`, and non-finite floats are
//! written as `null` (matching real serde_json). Strings support the
//! full JSON escape set including `\uXXXX` surrogate pairs.

#![forbid(unsafe_code)]

use std::fmt;
use std::io::{Read, Write};

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/deserialization failure.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(format!("io error: {e}"))
    }
}

/// Result alias matching serde_json.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` as JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Deserializes a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserializes a value of type `T` from a JSON reader.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

// ---- writer ----------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's Display is shortest-round-trip; force a `.0` on
                // integral values so the number re-parses as a float.
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error(format!(
                "unexpected character {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid utf-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                let combined = 0x10000
                                    + ((hi - 0xd800) << 10)
                                    + (lo.wrapping_sub(0xdc00) & 0x3ff);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error("invalid unicode escape".into()))?);
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".into()))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -2.5e-17, 1e300] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s} -> {back}");
        }
    }

    #[test]
    fn integral_float_stays_float() {
        let s = to_string(&5.0f64).unwrap();
        assert_eq!(s, "5.0");
        assert_eq!(from_str::<f64>(&s).unwrap(), 5.0);
    }

    #[test]
    fn nonfinite_serializes_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "he said \"hi\"\n\ttab\\slash \u{1F600} \u{7}";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unicode_escapes_parse() {
        let back: String = from_str(r#""A😀""#).unwrap();
        assert_eq!(back, "A\u{1F600}");
    }

    #[test]
    fn vectors_and_options() {
        let v = vec![Some(1u64), None, Some(3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3]");
        let back: Vec<Option<u64>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn writer_reader_round_trip() {
        let v = vec![1.5f64, -2.25, 0.0];
        let mut buf = Vec::new();
        to_writer(&mut buf, &v).unwrap();
        let back: Vec<f64> = from_reader(&buf[..]).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("4 2").is_err());
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
