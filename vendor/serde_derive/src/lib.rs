//! `#[derive(Serialize, Deserialize)]` for the vendored mini-serde.
//!
//! The build environment has no crates.io access, so this proc-macro
//! crate parses the item's token stream by hand (no `syn`/`quote`) and
//! emits `to_value`/`from_value` impls against the value-tree model of
//! the vendored `serde` crate. Supported shapes — everything this
//! workspace derives on:
//!
//! * structs with named fields, tuple structs (newtype included), unit
//!   structs,
//! * enums with unit, tuple/newtype, and struct variants (externally
//!   tagged, like real serde's default).
//!
//! Generic parameters and `#[serde(...)]` attributes are unsupported and
//! rejected with a compile-time panic naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum FieldsKind {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: FieldsKind,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: FieldsKind,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_serialize(name, fields),
        Item::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_deserialize(name, fields),
        Item::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    code.parse().expect("generated Deserialize impl parses")
}

// ---- parsing ---------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("mini-serde derive does not support generic type `{name}`");
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    FieldsKind::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    FieldsKind::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => FieldsKind::Unit,
                other => panic!("unsupported struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("unsupported enum body for `{name}`: {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("mini-serde derive supports struct/enum only, found `{other}`"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate), pub(super), ...
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Advances past one field's type: everything up to a comma at angle
/// depth zero (the comma is consumed).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(tt) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        fields.push(expect_ident(&tokens, &mut i));
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                FieldsKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                FieldsKind::Named(parse_named_fields(g.stream()))
            }
            _ => FieldsKind::Unit,
        };
        // Skip to the next variant: discriminants (`= expr`) and the
        // trailing comma.
        let mut depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---- code generation -------------------------------------------------

fn gen_struct_serialize(name: &str, fields: &FieldsKind) -> String {
    let body = match fields {
        FieldsKind::Named(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
        FieldsKind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        FieldsKind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        FieldsKind::Unit => "::serde::Value::Null".to_string(),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_struct_deserialize(name: &str, fields: &FieldsKind) -> String {
    let body = match fields {
        FieldsKind::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.get_field({f:?})?)?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        FieldsKind::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        FieldsKind::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array()?;\n\
                 if items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::Error(::std::format!(\n\
                         \"expected {n} elements for {name}, found {{}}\", items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        FieldsKind::Unit => format!("::std::result::Result::Ok({name})"),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|variant| {
            let vname = &variant.name;
            match &variant.fields {
                FieldsKind::Unit => format!(
                    "{name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?}))"
                ),
                FieldsKind::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                    let inner = if *n == 1 {
                        "::serde::Serialize::to_value(f0)".to_string()
                    } else {
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                    };
                    format!(
                        "{name}::{vname}({binds}) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from({vname:?}), {inner})])",
                        binds = binds.join(", ")
                    )
                }
                FieldsKind::Named(fields) => {
                    let pairs: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vname} {{ {fields} }} => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from({vname:?}), \
                              ::serde::Value::Object(::std::vec![{pairs}]))])",
                        fields = fields.join(", "),
                        pairs = pairs.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {} }}\n\
             }}\n\
         }}",
        arms.join(",\n")
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, FieldsKind::Unit))
        .map(|v| {
            let vname = &v.name;
            format!("{vname:?} => ::std::result::Result::Ok({name}::{vname})")
        })
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|variant| {
            let vname = &variant.name;
            match &variant.fields {
                FieldsKind::Unit => None,
                FieldsKind::Tuple(1) => Some(format!(
                    "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(inner)?))"
                )),
                FieldsKind::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    Some(format!(
                        "{vname:?} => {{\n\
                             let items = inner.as_array()?;\n\
                             if items.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::Error(::std::format!(\n\
                                     \"expected {n} elements for {name}::{vname}, found {{}}\", items.len())));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n\
                         }}",
                        inits.join(", ")
                    ))
                }
                FieldsKind::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::Deserialize::from_value(inner.get_field({f:?})?)?")
                        })
                        .collect();
                    Some(format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname} {{ {} }})",
                        inits.join(", ")
                    ))
                }
            }
        })
        .collect();
    let str_match = if unit_arms.is_empty() {
        String::new()
    } else {
        format!(
            "::serde::Value::Str(s) => match s.as_str() {{\n\
                 {},\n\
                 other => ::std::result::Result::Err(::serde::Error(::std::format!(\n\
                     \"unknown {name} variant `{{other}}`\"))),\n\
             }},",
            unit_arms.join(",\n")
        )
    };
    let obj_match = if data_arms.is_empty() {
        String::new()
    } else {
        format!(
            "::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                 let (tag, inner) = &pairs[0];\n\
                 match tag.as_str() {{\n\
                     {},\n\
                     other => ::std::result::Result::Err(::serde::Error(::std::format!(\n\
                         \"unknown {name} variant `{{other}}`\"))),\n\
                 }}\n\
             }},",
            data_arms.join(",\n")
        )
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                     {str_match}\n\
                     {obj_match}\n\
                     other => ::std::result::Result::Err(::serde::Error(::std::format!(\n\
                         \"invalid value for {name}: {{}}\", other.kind()))),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
