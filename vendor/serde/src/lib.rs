//! Minimal, dependency-free stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the subset the workspace needs: `#[derive(Serialize,
//! Deserialize)]` plus impls for the std types that appear in the
//! project's data model. Instead of serde's visitor architecture it uses
//! a simple self-describing [`Value`] tree; `serde_json` (also vendored)
//! renders and parses that tree as JSON. Formats and zero-copy are out of
//! scope — persistence in this workspace is JSON only.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map of string keys to values.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `name` in an object, failing with a descriptive error.
    pub fn get_field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error(format!("missing field `{name}`"))),
            other => Err(Error(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// The elements of an array, or an error.
    pub fn as_array(&self) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(Error(format!("expected array, found {}", other.kind()))),
        }
    }

    /// A short name for the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => {
                        return Err(Error(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::I64(n) } else { Value::U64(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error(format!("integer {n} out of i64 range")))?,
                    other => {
                        return Err(Error(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN), // serde_json writes non-finite as null
                    other => Err(Error(format!("expected number, found {}", other.kind()))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error(format!(
                "expected single-char string, found {}",
                other.kind()
            ))),
        }
    }
}

// ---- composite impls -------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array()?;
        if items.len() != 2 {
            return Err(Error(format!(
                "expected 2-tuple, found {} elements",
                items.len()
            )));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array()?;
        if items.len() != 3 {
            return Err(Error(format!(
                "expected 3-tuple, found {} elements",
                items.len()
            )));
        }
        Ok((
            A::from_value(&items[0])?,
            B::from_value(&items[1])?,
            C::from_value(&items[2])?,
        ))
    }
}

/// Map keys serializable as JSON object keys (strings), mirroring
/// serde_json's stringified-key behaviour for integer keys.
pub trait MapKey: Sized {
    /// The key as an object-key string.
    fn to_key(&self) -> String;
    /// Parses the key back from an object-key string.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse()
                    .map_err(|_| Error(format!("invalid {} map key `{key}`", stringify!($t))))
            }
        }
    )*};
}
impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        // Deterministic output: HashMap iteration order is unstable.
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize, S: std::hash::BuildHasher + Default>
    Deserialize for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error(format!("expected object, found {}", other.kind()))),
        }
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error(format!("expected object, found {}", other.kind()))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
