//! Minimal, dependency-free stand-in for `crossbeam`.
//!
//! Provides `queue::ArrayQueue` with crossbeam's API. The vendored
//! implementation is a mutex-guarded ring — same semantics (bounded MPMC
//! FIFO, `push` fails when full), weaker scalability. `#![forbid(unsafe)]`
//! rules out a true lock-free ring here; the tracer built on top measures
//! its own cost honestly either way.

#![forbid(unsafe_code)]

/// Bounded queues.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// A bounded multi-producer multi-consumer FIFO queue.
    #[derive(Debug)]
    pub struct ArrayQueue<T> {
        inner: Mutex<VecDeque<T>>,
        capacity: usize,
    }

    impl<T> ArrayQueue<T> {
        /// Creates a queue holding at most `capacity` elements.
        ///
        /// # Panics
        ///
        /// Panics if `capacity` is zero, like crossbeam.
        pub fn new(capacity: usize) -> Self {
            assert!(capacity > 0, "capacity must be non-zero");
            ArrayQueue {
                inner: Mutex::new(VecDeque::with_capacity(capacity)),
                capacity,
            }
        }

        /// Attempts to enqueue, returning `Err(value)` when full.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            if q.len() >= self.capacity {
                Err(value)
            } else {
                q.push_back(value);
                Ok(())
            }
        }

        /// Dequeues the oldest element, if any.
        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }

        /// Maximum number of elements.
        pub fn capacity(&self) -> usize {
            self.capacity
        }

        /// Current number of elements.
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Whether the queue is full.
        pub fn is_full(&self) -> bool {
            self.len() >= self.capacity
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_capacity() {
            let q = ArrayQueue::new(2);
            assert!(q.push(1).is_ok());
            assert!(q.push(2).is_ok());
            assert_eq!(q.push(3), Err(3));
            assert!(q.is_full());
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
            assert!(q.is_empty());
            assert_eq!(q.capacity(), 2);
        }

        #[test]
        fn concurrent_producers_conserve_items() {
            let q = std::sync::Arc::new(ArrayQueue::new(10_000));
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let q = std::sync::Arc::clone(&q);
                    std::thread::spawn(move || {
                        for i in 0..1_000 {
                            q.push(i).unwrap();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(q.len(), 4_000);
        }
    }
}
