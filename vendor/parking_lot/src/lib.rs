//! Minimal, dependency-free stand-in for `parking_lot`.
//!
//! Wraps the std primitives with parking_lot's poison-free API (`lock()`
//! returns the guard directly). A poisoned std lock — a panic while the
//! lock was held — just recovers the inner data, matching parking_lot's
//! behaviour of not propagating poison.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn no_poison_on_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
