//! Minimal, dependency-free stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: range and
//! tuple strategies, `prop::collection::vec`, `Just`, `prop_oneof!`,
//! `any::<T>()`, `.prop_map`, `proptest!` with an optional
//! `#![proptest_config(...)]`, and the `prop_assert*`/`prop_assume!`
//! macros. Cases are generated deterministically from the test name, so
//! failures reproduce across runs. No shrinking: a failing case reports
//! its generated inputs verbatim instead.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// The deterministic RNG driving all strategies.
pub struct TestRng(rand::rngs::SmallRng);

impl TestRng {
    /// Derives the RNG for one case of one test.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name keeps streams distinct per test.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(rand::rngs::SmallRng::seed_from_u64(
            hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message describes it.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should not count.
    Reject,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy for storage in heterogeneous collections.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated strategy trait object.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among alternatives (the `prop_oneof!` backend).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates an empty union; at least one arm must be added.
    pub fn new() -> Self {
        Union { arms: Vec::new() }
    }

    /// Adds an alternative.
    pub fn push<S: Strategy<Value = V> + 'static>(&mut self, strategy: S) {
        self.arms.push(Box::new(strategy));
    }
}

impl<V> Default for Union<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let pick = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[pick].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy produced by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The full-range strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range standard draw used by `any::<T>()`.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: rand::StandardDist> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng as _;
        rng.random()
    }
}

macro_rules! impl_arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyStrategy(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies, reachable as `prop::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Generates `Vec`s with lengths drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The result of [`vec`](vec()).
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng as _;
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror of `proptest::prop`.
pub mod prop {
    pub use crate::collection;
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        prop_oneof, proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng, Union,
    };
}

/// Runs the body of one property test over `config.cases` generated
/// cases, panicking with the case inputs on the first failure. Used by
/// the generated code of [`proptest!`]; not part of the public API shape
/// of real proptest.
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut body: impl FnMut(&mut TestRng, u64) -> Result<(), TestCaseError>,
) {
    let mut rejected = 0u64;
    let max_rejects = (config.cases as u64) * 16;
    let mut case = 0u64;
    let mut run = 0u32;
    while run < config.cases {
        let mut rng = TestRng::for_case(test_name, case);
        match body(&mut rng, case) {
            Ok(()) => run += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "{test_name}: too many prop_assume! rejections ({rejected}); \
                         strategy rarely satisfies the assumption"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: case #{case} failed:\n{msg}");
            }
        }
        case += 1;
    }
}

/// Defines property tests. Mirrors `proptest!` from the real crate for
/// the supported grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(any::<bool>(), 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $(let $arg = $strategy;)+
            let strategies = ($(&$arg,)+);
            $crate::run_cases(stringify!($name), &config, |rng, _case| {
                let ($($arg,)+) = &strategies;
                $(let $arg = $crate::Strategy::generate($arg, rng);)+
                $body
                Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Rejects a case that does not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategy alternatives of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let mut union = $crate::Union::new();
        $(union.push($strategy);)+
        union
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_test_and_case() {
        let s = 0u64..1000;
        let mut r1 = TestRng::for_case("alpha", 3);
        let mut r2 = TestRng::for_case("alpha", 3);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hold(x in 5u32..10, f in -1.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_hold(v in collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map(op in prop_oneof![Just(0u8), (1u8..4).prop_map(|x| x * 10)]) {
            prop_assert!(op == 0 || (10..40).contains(&op));
        }

        #[test]
        fn tuples_and_assume(pair in (0u32..50, 0u32..50)) {
            let (a, b) = pair;
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(x in 0u8..=255) {
            let _ = x;
        }
    }
}
