//! Workspace smoke test: the examples compile and the end-to-end
//! `sanity_check` regeneration binary runs to completion.
//!
//! These shell out to the same `cargo` that is running the test suite,
//! against this workspace, so a broken example or a bit-rotted bench
//! binary fails tier-1 instead of lingering until someone runs it by
//! hand.

use std::process::Command;

fn cargo() -> Command {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut cmd = Command::new(cargo);
    cmd.current_dir(env!("CARGO_MANIFEST_DIR"));
    cmd
}

#[test]
fn examples_compile() {
    let output = cargo()
        .args(["build", "--examples", "--quiet"])
        .output()
        .expect("cargo is invocable");
    assert!(
        output.status.success(),
        "`cargo build --examples` failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn sanity_check_runs_to_completion() {
    // Release: the binary simulates tens of millions of kernel calls.
    let output = cargo()
        .args([
            "run",
            "--release",
            "--quiet",
            "-p",
            "fmeter-bench",
            "--bin",
            "sanity_check",
        ])
        .output()
        .expect("cargo is invocable");
    assert!(
        output.status.success(),
        "sanity_check exited with {:?}:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    for marker in ["SVM scp vs kcompile", "KMeans purity"] {
        assert!(
            stdout.contains(marker),
            "sanity_check output lost the `{marker}` section:\n{stdout}"
        );
    }
}
