//! Workspace smoke test: the examples compile and the end-to-end
//! `sanity_check` regeneration binary runs to completion.
//!
//! These shell out to the same `cargo` that is running the test suite,
//! against this workspace, so a broken example or a bit-rotted bench
//! binary fails tier-1 instead of lingering until someone runs it by
//! hand.

use std::process::Command;

fn cargo() -> Command {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut cmd = Command::new(cargo);
    cmd.current_dir(env!("CARGO_MANIFEST_DIR"));
    cmd
}

/// The smoke tests shell out to `cargo ... --release`, so running them
/// from a debug `cargo test` triggers a second, cold full-workspace
/// release build. CI's debug matrix leg sets this variable to skip them
/// there (the release leg still runs them).
fn release_smoke_skipped() -> bool {
    // Non-empty value required: CI exports the variable as "" on the
    // release leg (GitHub env expressions cannot omit a key).
    std::env::var("FMETER_SKIP_RELEASE_SMOKE").is_ok_and(|v| !v.is_empty())
}

#[test]
fn examples_compile() {
    // Builds in the ambient profile (no --release), so this stays cheap
    // and is not gated by FMETER_SKIP_RELEASE_SMOKE.
    let output = cargo()
        .args(["build", "--examples", "--quiet"])
        .output()
        .expect("cargo is invocable");
    assert!(
        output.status.success(),
        "`cargo build --examples` failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn streaming_daemon_example_runs_to_completion() {
    if release_smoke_skipped() {
        return;
    }
    // Release: the ingest loop simulates a full rolling-mix monitoring
    // run. The example self-checks online accuracy and post-refit
    // equivalence with a from-scratch rebuild, so a green exit means the
    // incremental path still works end to end.
    let output = cargo()
        .args([
            "run",
            "--release",
            "--quiet",
            "--example",
            "streaming_daemon",
        ])
        .output()
        .expect("cargo is invocable");
    assert!(
        output.status.success(),
        "streaming_daemon exited with {:?}:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    for marker in ["online classification accuracy", "post-refit equivalence"] {
        assert!(
            stdout.contains(marker),
            "streaming_daemon output lost the `{marker}` section:\n{stdout}"
        );
    }
}

#[test]
fn sanity_check_runs_to_completion() {
    if release_smoke_skipped() {
        return;
    }
    // Release: the binary simulates tens of millions of kernel calls.
    let output = cargo()
        .args([
            "run",
            "--release",
            "--quiet",
            "-p",
            "fmeter-bench",
            "--bin",
            "sanity_check",
        ])
        .output()
        .expect("cargo is invocable");
    assert!(
        output.status.success(),
        "sanity_check exited with {:?}:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    for marker in ["SVM scp vs kcompile", "KMeans purity"] {
        assert!(
            stdout.contains(marker),
            "sanity_check output lost the `{marker}` section:\n{stdout}"
        );
    }
}
