//! Persistence round trips and failure injection: models survive the
//! disk, and corrupted or degenerate inputs fail loudly instead of
//! silently skewing signatures.

use std::sync::Arc;

use fmeter::core::{Fmeter, SignatureDb};
use fmeter::ir::{SparseVec, TermCounts, TfIdfModel};
use fmeter::kernel_sim::{CpuId, Kernel, KernelConfig, KernelOp, Nanos};
use fmeter::ml::{DecisionTree, Kernel as SvmKernel, SvmTrainer};
use fmeter::trace::FmeterTracer;
use fmeter::workloads::Dbench;

#[test]
fn ir_types_survive_json() {
    let v = SparseVec::from_pairs(8, [(1, 2.5), (6, -1.0)]).unwrap();
    let json = serde_json::to_string(&v).unwrap();
    let back: SparseVec = serde_json::from_str(&json).unwrap();
    assert_eq!(v, back);

    let tc = TermCounts::from_pairs(8, [(0, 3), (7, 9)]).unwrap();
    let back: TermCounts = serde_json::from_str(&serde_json::to_string(&tc).unwrap()).unwrap();
    assert_eq!(tc, back);

    let mut corpus = fmeter::ir::Corpus::new(4);
    corpus.push(TermCounts::from_pairs(4, [(0, 2), (1, 1)]).unwrap());
    corpus.push(TermCounts::from_pairs(4, [(0, 1), (2, 5)]).unwrap());
    let model = TfIdfModel::fit(&corpus).unwrap();
    let back: TfIdfModel = serde_json::from_str(&serde_json::to_string(&model).unwrap()).unwrap();
    // Same transform behaviour after the round trip.
    let doc = corpus.doc(0).unwrap();
    assert_eq!(model.transform(doc), back.transform(doc));
}

#[test]
fn trained_models_survive_json() {
    let xs = vec![
        SparseVec::from_pairs(4, [(0, 1.0)]).unwrap(),
        SparseVec::from_pairs(4, [(0, 0.9)]).unwrap(),
        SparseVec::from_pairs(4, [(1, 1.0)]).unwrap(),
        SparseVec::from_pairs(4, [(1, 1.1)]).unwrap(),
    ];
    let ys = vec![1i8, 1, -1, -1];

    let svm = SvmTrainer::new()
        .kernel(SvmKernel::Linear)
        .train(&xs, &ys)
        .unwrap();
    let svm_back: fmeter::ml::SvmModel =
        serde_json::from_str(&serde_json::to_string(&svm).unwrap()).unwrap();
    let tree = DecisionTree::trainer().train(&xs, &ys).unwrap();
    let tree_back: DecisionTree =
        serde_json::from_str(&serde_json::to_string(&tree).unwrap()).unwrap();
    for (x, &y) in xs.iter().zip(&ys) {
        assert_eq!(svm_back.predict(x), y);
        assert_eq!(tree_back.predict(x), y);
    }
}

#[test]
fn corrupted_database_fails_loudly() {
    assert!(SignatureDb::load(&b"not json"[..]).is_err());
    assert!(SignatureDb::load(&b"{\"model\": 3}"[..]).is_err());
    assert!(SignatureDb::load(&b""[..]).is_err());
}

#[test]
fn db_round_trips_through_real_collection() {
    let mut kernel = Kernel::new(KernelConfig {
        num_cpus: 2,
        seed: 77,
        timer_hz: 1000,
        image_seed: 0x2628,
    })
    .unwrap();
    let fmeter = Fmeter::install(&mut kernel);
    let mut logger = fmeter.logger(Nanos::from_millis(4), kernel.now());
    let raw = logger
        .collect(
            &mut kernel,
            &mut Dbench::new(1),
            &[CpuId(0)],
            6,
            Some("dbench"),
        )
        .unwrap();
    let db = SignatureDb::build(&raw).unwrap();
    let mut buf = Vec::new();
    db.save(&mut buf).unwrap();
    let restored = SignatureDb::load(&buf[..]).unwrap();
    // Search results identical post-restore.
    let query = raw[0].to_term_counts();
    let a: Vec<(usize, String)> = db
        .search(&query, 3)
        .unwrap()
        .iter()
        .map(|(s, score)| ((score * 1e9) as usize, format!("{:?}", s.label)))
        .collect();
    let b: Vec<(usize, String)> = restored
        .search(&query, 3)
        .unwrap()
        .iter()
        .map(|(s, score)| ((score * 1e9) as usize, format!("{:?}", s.label)))
        .collect();
    assert_eq!(a, b);
}

#[test]
fn counter_reset_mid_interval_saturates_not_underflows() {
    // Failure injection: an operator resets counters between the
    // daemon's two reads. The delta must clamp to zero, never wrap.
    let mut kernel = Kernel::new(KernelConfig {
        num_cpus: 1,
        seed: 5,
        timer_hz: 0,
        image_seed: 0x2628,
    })
    .unwrap();
    let tracer = Arc::new(FmeterTracer::with_cpus(kernel.symbols(), 1));
    kernel.set_tracer(tracer.clone());
    kernel
        .run_op(CpuId(0), KernelOp::Fork { pages: 32 })
        .unwrap();
    let before = tracer.snapshot(kernel.now());
    tracer.reset(); // injected fault
    kernel.run_op(CpuId(0), KernelOp::SyscallNull).unwrap();
    let after = tracer.snapshot(kernel.now());
    for &d in &before.delta(&after) {
        assert!(d < 1_000_000, "delta wrapped: {d}");
    }
}

#[test]
fn workload_stream_survives_tracer_swap_mid_run() {
    // Flip instrumentation off and on mid-workload: the kernel must keep
    // running and the logger must keep producing coherent intervals.
    let mut kernel = Kernel::new(KernelConfig {
        num_cpus: 2,
        seed: 9,
        timer_hz: 1000,
        image_seed: 0x2628,
    })
    .unwrap();
    let fmeter = Fmeter::install(&mut kernel);
    let mut logger = fmeter.logger(Nanos::from_millis(2), kernel.now());
    let mut w = Dbench::new(2);
    let first = logger
        .collect_one(&mut kernel, &mut w, &[CpuId(0)], None)
        .unwrap();
    fmeter.set_enabled(false);
    let dark = logger
        .collect_one(&mut kernel, &mut w, &[CpuId(0)], None)
        .unwrap();
    fmeter.set_enabled(true);
    let third = logger
        .collect_one(&mut kernel, &mut w, &[CpuId(0)], None)
        .unwrap();
    assert!(first.total_calls() > 0);
    assert_eq!(dark.total_calls(), 0);
    assert!(third.total_calls() > 0);
    // Time keeps tiling even across the dark interval.
    assert_eq!(first.ended_at, dark.started_at);
    assert_eq!(dark.ended_at, third.started_at);
}
