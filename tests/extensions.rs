//! Integration tests for the beyond-the-paper extensions: the hot-set
//! tracer (§6), the user-space debugfs path, anomaly detection, and the
//! tree/ensemble classifiers — all driven through the full stack.

use std::sync::Arc;

use fmeter::core::{AnomalyDetector, DebugfsReader, Fmeter, RawSignature, SignatureDb};
use fmeter::kernel_sim::{modules, CpuId, Kernel, KernelConfig, KernelOp, Nanos};
use fmeter::ml::{AdaBoost, DecisionTree};
use fmeter::trace::{FmeterTracer, HotSetTracer};
use fmeter::workloads::{Dbench, NetperfReceive, Scp, Workload};

fn kernel(seed: u64) -> Kernel {
    Kernel::new(KernelConfig {
        num_cpus: 4,
        seed,
        timer_hz: 1000,
        image_seed: 0x2628,
    })
    .expect("standard image builds")
}

#[test]
fn hot_set_tracer_counts_agree_with_standard_fmeter() {
    // Same seed, same workload: the two counter organisations must agree
    // on every function's count.
    let mut k1 = kernel(61);
    let standard = Arc::new(FmeterTracer::with_cpus(k1.symbols(), 4));
    k1.set_tracer(standard.clone());
    let mut w = Dbench::new(5);
    w.run_steps(&mut k1, &[CpuId(0)], 40).unwrap();
    let profile = standard.snapshot(k1.now()).counts().to_vec();

    let mut k2 = kernel(61);
    let hot = Arc::new(HotSetTracer::from_profile(k2.symbols(), 4, &profile, 32).with_stats());
    k2.set_tracer(hot.clone());
    let mut w = Dbench::new(5);
    w.run_steps(&mut k2, &[CpuId(0)], 40).unwrap();

    // The walks differ (tracer overhead shifts tick timing), so compare
    // via totals per run rather than exact equality: totals must be the
    // sum of hot and cold hits, and the snapshot must account for every
    // recorded call.
    let snap = hot.snapshot(k2.now());
    assert_eq!(snap.total(), hot.hot_hits() + hot.cold_hits());
    assert!(
        hot.hit_rate() > 0.3,
        "boot-free dbench profile should hit the hot set"
    );
}

#[test]
fn userspace_daemon_path_feeds_the_full_pipeline() {
    // Collect signatures *only* through debugfs strings, then classify.
    let make_raw = |seed: u64, label: &str, steps: usize| -> Vec<RawSignature> {
        let mut k = kernel(seed);
        let _fmeter = Fmeter::install(&mut k);
        let reader = DebugfsReader::attach(&k).unwrap();
        let mut workload: Box<dyn Workload> = if label == "scp" {
            Box::new(Scp::new(seed))
        } else {
            Box::new(Dbench::new(seed))
        };
        let mut sigs = Vec::new();
        for _ in 0..6 {
            let before = reader.read_counters(&k).unwrap();
            workload.run_steps(&mut k, &[CpuId(0)], steps).unwrap();
            let after = reader.read_counters(&k).unwrap();
            sigs.push(RawSignature {
                counts: before.delta(&after),
                started_at: before.taken_at(),
                ended_at: after.taken_at(),
                label: Some(label.to_string()),
            });
        }
        sigs
    };
    let mut all = make_raw(71, "scp", 60);
    all.extend(make_raw(72, "dbench", 25));
    let db = SignatureDb::build(&all).unwrap();
    let probe = make_raw(73, "dbench", 25);
    let verdict = db.classify(&probe[0].to_term_counts(), 3).unwrap();
    assert_eq!(verdict.as_deref(), Some("dbench"));
}

#[test]
fn anomaly_detector_flags_a_novel_workload() {
    // Train syndromes on scp + dbench; a netperf machine (never seen)
    // must be flagged, while fresh dbench passes.
    let collect = |seed: u64, label: &str| -> Vec<RawSignature> {
        let mut k = kernel(seed);
        let fmeter = Fmeter::install(&mut k);
        let mut logger = fmeter.logger(Nanos::from_millis(5), k.now());
        match label {
            "scp" => logger
                .collect(&mut k, &mut Scp::new(seed), &[CpuId(0)], 10, Some(label))
                .unwrap(),
            "dbench" => logger
                .collect(&mut k, &mut Dbench::new(seed), &[CpuId(0)], 10, Some(label))
                .unwrap(),
            _ => {
                k.load_module(modules::myri10ge_v151()).unwrap();
                let mut w = NetperfReceive::new(seed, "myri10ge");
                logger
                    .collect(&mut k, &mut w, &[CpuId(0)], 10, Some(label))
                    .unwrap()
            }
        }
    };
    let mut training = collect(81, "scp");
    training.extend(collect(82, "dbench"));
    let db = SignatureDb::build(&training).unwrap();
    let detector = AnomalyDetector::fit(&db, 2, 1.3, 9).unwrap();

    // Known behaviour passes (match rate over several intervals).
    let known = collect(83, "dbench");
    let known_flags = known
        .iter()
        .filter(|s| {
            detector
                .inspect(&db, &s.to_term_counts())
                .unwrap()
                .is_anomalous
        })
        .count();
    assert!(
        known_flags <= known.len() / 2,
        "{known_flags} known intervals flagged"
    );

    // Novel behaviour is caught.
    let novel = collect(84, "netperf");
    let novel_flags = novel
        .iter()
        .filter(|s| {
            detector
                .inspect(&db, &s.to_term_counts())
                .unwrap()
                .is_anomalous
        })
        .count();
    assert!(
        novel_flags > novel.len() / 2,
        "only {novel_flags}/{} novel intervals flagged",
        novel.len()
    );
}

#[test]
fn tree_and_boosting_classify_real_signatures() {
    let collect = |seed: u64, label: &str| -> Vec<RawSignature> {
        let mut k = kernel(seed);
        let fmeter = Fmeter::install(&mut k);
        let mut logger = fmeter.logger(Nanos::from_millis(5), k.now());
        if label == "scp" {
            logger
                .collect(&mut k, &mut Scp::new(seed), &[CpuId(0)], 12, Some(label))
                .unwrap()
        } else {
            logger
                .collect(&mut k, &mut Dbench::new(seed), &[CpuId(0)], 12, Some(label))
                .unwrap()
        }
    };
    let scp = collect(91, "scp");
    let dbench = collect(92, "dbench");
    let mut corpus = fmeter::ir::Corpus::new(scp[0].counts.len());
    for s in scp.iter().chain(&dbench) {
        corpus.push(s.to_term_counts());
    }
    let model = fmeter::ir::TfIdfModel::fit(&corpus).unwrap();
    let xs: Vec<_> = corpus
        .iter()
        .map(|d| model.transform(d).l2_normalized())
        .collect();
    let ys: Vec<i8> = std::iter::repeat_n(1, 12)
        .chain(std::iter::repeat_n(-1, 12))
        .collect();

    let tree = DecisionTree::trainer()
        .max_depth(4)
        .train(&xs, &ys)
        .unwrap();
    let tree_acc = xs
        .iter()
        .zip(&ys)
        .filter(|(x, &y)| tree.predict(x) == y)
        .count();
    assert!(tree_acc >= 22, "tree training accuracy {tree_acc}/24");

    let boosted = AdaBoost::new(10).weak_depth(1).train(&xs, &ys).unwrap();
    let boost_acc = xs
        .iter()
        .zip(&ys)
        .filter(|(x, &y)| boosted.predict(x) == y)
        .count();
    assert!(boost_acc >= 22, "boosting training accuracy {boost_acc}/24");
}

#[test]
fn kallsyms_is_available_even_without_fmeter() {
    let k = kernel(99);
    let content = k.debugfs().read("kallsyms").unwrap();
    assert_eq!(content.lines().count(), k.num_functions());
    assert!(content.contains(" t vfs_read\n"));
    // Counter file only appears after install.
    assert!(k.debugfs().read("tracing/fmeter/counters").is_err());
    let mut k = k;
    let _fmeter = Fmeter::install(&mut k);
    k.run_op(CpuId(0), KernelOp::SyscallNull).unwrap();
    assert!(k.debugfs().read("tracing/fmeter/counters").is_ok());
}
