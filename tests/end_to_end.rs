//! End-to-end integration: boot → workload → daemon → tf-idf → learning,
//! exercising the full §4.2 methodology at test scale.

use fmeter::core::{Fmeter, RawSignature, SignatureDb};
use fmeter::ir::{Corpus, TfIdfModel};
use fmeter::kernel_sim::{CpuId, Kernel, KernelConfig, Nanos};
use fmeter::ml::metrics::purity;
use fmeter::ml::{Agglomerative, CrossValidation, KMeans, Linkage};
use fmeter::workloads::{Dbench, KCompile, Scp, Workload};

fn collect(workload: &mut dyn Workload, label: &str, n: usize, seed: u64) -> Vec<RawSignature> {
    let mut kernel = Kernel::new(KernelConfig {
        num_cpus: 4,
        seed,
        timer_hz: 1000,
        image_seed: 0x2628,
    })
    .expect("standard image builds");
    let fmeter = Fmeter::install(&mut kernel);
    let cpus: Vec<CpuId> = (0..2).map(CpuId).collect();
    let mut logger = fmeter.logger(Nanos::from_millis(5), kernel.now());
    logger
        .collect(&mut kernel, workload, &cpus, n, Some(label))
        .expect("collection runs")
}

fn vectors_of(raw: &[RawSignature]) -> Vec<fmeter::ir::SparseVec> {
    let mut corpus = Corpus::new(raw[0].counts.len());
    for r in raw {
        corpus.push(r.to_term_counts());
    }
    let model = TfIdfModel::fit(&corpus).expect("non-empty corpus");
    corpus
        .iter()
        .map(|d| model.transform(d).l2_normalized())
        .collect()
}

#[test]
fn svm_separates_workload_classes() {
    let scp = collect(&mut Scp::new(1), "scp", 15, 11);
    let kcompile = collect(&mut KCompile::new(2), "kcompile", 15, 12);
    let mut all = scp.clone();
    all.extend(kcompile.clone());
    let xs = vectors_of(&all);
    let ys: Vec<i8> = std::iter::repeat_n(1, 15)
        .chain(std::iter::repeat_n(-1, 15))
        .collect();
    let report = CrossValidation::new(3).run(&xs, &ys).expect("cv runs");
    let (acc, _) = report.mean_accuracy();
    assert!(acc >= 0.9, "mini Table 4 accuracy collapsed: {acc}");
}

#[test]
fn kmeans_recovers_three_workloads() {
    let scp = collect(&mut Scp::new(3), "scp", 12, 21);
    let kcompile = collect(&mut KCompile::new(4), "kcompile", 12, 22);
    let dbench = collect(&mut Dbench::new(5), "dbench", 12, 23);
    let mut all = scp;
    all.extend(kcompile);
    all.extend(dbench);
    let xs = vectors_of(&all);
    let truth: Vec<usize> = (0..3).flat_map(|c| std::iter::repeat_n(c, 12)).collect();
    let result = KMeans::new(3)
        .seed(1)
        .restarts(4)
        .run(&xs)
        .expect("clustering runs");
    let p = purity(&result.assignments, &truth).expect("aligned");
    assert!(p >= 0.9, "3-class purity collapsed: {p}");
}

#[test]
fn dendrogram_separates_two_workloads_below_root() {
    let scp = collect(&mut Scp::new(6), "scp", 8, 31);
    let dbench = collect(&mut Dbench::new(7), "dbench", 8, 32);
    let mut all = scp;
    all.extend(dbench);
    let xs = vectors_of(&all);
    let tree = Agglomerative::new(Linkage::Single)
        .fit(&xs)
        .expect("fit runs");
    let (mut left, _right) = tree.root_split().expect("root exists");
    left.sort_unstable();
    let scp_side: Vec<usize> = (0..8).collect();
    let dbench_side: Vec<usize> = (8..16).collect();
    assert!(
        left == scp_side || left == dbench_side,
        "root split mixes classes: {left:?}"
    );
}

#[test]
fn signature_db_classifies_and_persists() {
    let scp = collect(&mut Scp::new(8), "scp", 10, 41);
    let dbench = collect(&mut Dbench::new(9), "dbench", 10, 42);
    let mut all = scp;
    all.extend(dbench);
    let db = SignatureDb::build(&all).expect("db builds");

    // Fresh intervals classify correctly by nearest neighbours.
    let fresh_dbench = collect(&mut Dbench::new(10), "probe", 2, 43);
    for sig in &fresh_dbench {
        let verdict = db.classify(&sig.to_term_counts(), 5).expect("search runs");
        assert_eq!(verdict.as_deref(), Some("dbench"));
    }

    // Round-trip through JSON persistence.
    let mut buf = Vec::new();
    db.save(&mut buf).expect("saves");
    let restored = SignatureDb::load(&buf[..]).expect("loads");
    assert_eq!(restored.len(), db.len());
    let verdict = restored
        .classify(&fresh_dbench[0].to_term_counts(), 5)
        .expect("search runs");
    assert_eq!(verdict.as_deref(), Some("dbench"));
}

#[test]
fn interval_length_does_not_skew_signatures() {
    // The paper's claim (§3, §5): tf normalisation removes run-length
    // bias. Signatures of one workload at 4 ms and 16 ms intervals must
    // classify as the same class.
    let short = {
        let mut kernel = Kernel::new(KernelConfig {
            num_cpus: 4,
            seed: 51,
            timer_hz: 1000,
            image_seed: 0x2628,
        })
        .unwrap();
        let fmeter = Fmeter::install(&mut kernel);
        let mut logger = fmeter.logger(Nanos::from_millis(4), kernel.now());
        logger
            .collect(
                &mut kernel,
                &mut Dbench::new(11),
                &[CpuId(0)],
                8,
                Some("dbench"),
            )
            .unwrap()
    };
    let long = {
        let mut kernel = Kernel::new(KernelConfig {
            num_cpus: 4,
            seed: 52,
            timer_hz: 1000,
            image_seed: 0x2628,
        })
        .unwrap();
        let fmeter = Fmeter::install(&mut kernel);
        let mut logger = fmeter.logger(Nanos::from_millis(16), kernel.now());
        logger
            .collect(
                &mut kernel,
                &mut Dbench::new(12),
                &[CpuId(0)],
                8,
                Some("dbench"),
            )
            .unwrap()
    };
    let scp = collect(&mut Scp::new(13), "scp", 8, 53);

    // Corpus: short-interval dbench + scp. Query: long-interval dbench.
    let mut training = short.clone();
    training.extend(scp);
    let db = SignatureDb::build(&training).expect("db builds");
    for sig in &long {
        let verdict = db.classify(&sig.to_term_counts(), 3).expect("search runs");
        assert_eq!(
            verdict.as_deref(),
            Some("dbench"),
            "a 4x longer interval must not change the class"
        );
    }
}
