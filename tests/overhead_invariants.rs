//! Integration: the simulated-cost model behind Tables 1–3 keeps its
//! defining invariants.

use std::sync::Arc;

use fmeter::kernel_sim::{CpuId, Kernel, KernelConfig, KernelOp, Nanos};
use fmeter::trace::{FmeterTracer, FtraceTracer, FMETER_CALL_OVERHEAD, FTRACE_CALL_OVERHEAD};
use fmeter::workloads::LmbenchTest;

fn kernel(seed: u64) -> Kernel {
    Kernel::new(KernelConfig {
        num_cpus: 2,
        seed,
        timer_hz: 0,
        image_seed: 0x2628,
    })
    .expect("standard image builds")
}

#[test]
fn identical_walks_differ_only_by_overhead() {
    // Same seed, three tracers: the executed call multiset is identical,
    // and the time difference is exactly overhead x calls.
    let mut vanilla = kernel(17);
    let mut with_fmeter = kernel(17);
    let mut with_ftrace = kernel(17);
    with_fmeter.set_tracer(Arc::new(FmeterTracer::with_cpus(with_fmeter.symbols(), 2)));
    with_ftrace.set_tracer(Arc::new(FtraceTracer::new(
        with_ftrace.symbols(),
        2,
        1 << 22,
    )));

    for op in [
        KernelOp::Read { bytes: 16384 },
        KernelOp::Fork { pages: 48 },
        KernelOp::TcpSend { bytes: 30000 },
        KernelOp::Fsync,
    ] {
        let sv = vanilla.run_op(CpuId(0), op).unwrap();
        let sm = with_fmeter.run_op(CpuId(0), op).unwrap();
        let sf = with_ftrace.run_op(CpuId(0), op).unwrap();
        assert_eq!(sv.calls, sm.calls);
        assert_eq!(sv.calls, sf.calls);
        assert_eq!(sm.time.0, sv.time.0 + FMETER_CALL_OVERHEAD.0 * sv.calls);
        assert_eq!(sf.time.0, sv.time.0 + FTRACE_CALL_OVERHEAD.0 * sv.calls);
    }
}

#[test]
fn overhead_ordering_holds_for_every_lmbench_test() {
    for test in LmbenchTest::ALL {
        let mut vanilla = kernel(23);
        let mut with_fmeter = kernel(23);
        let mut with_ftrace = kernel(23);
        with_fmeter.set_tracer(Arc::new(FmeterTracer::with_cpus(with_fmeter.symbols(), 2)));
        with_ftrace.set_tracer(Arc::new(FtraceTracer::new(
            with_ftrace.symbols(),
            2,
            1 << 22,
        )));
        let v = test.run(&mut vanilla, CpuId(0), 15).unwrap();
        let m = test.run(&mut with_fmeter, CpuId(0), 15).unwrap();
        let f = test.run(&mut with_ftrace, CpuId(0), 15).unwrap();
        assert!(
            v.mean_us < m.mean_us && m.mean_us < f.mean_us,
            "{}: ordering vanilla({:.3}) < fmeter({:.3}) < ftrace({:.3}) violated",
            test.label(),
            v.mean_us,
            m.mean_us,
            f.mean_us
        );
        let fmeter_slowdown = m.mean_us / v.mean_us;
        let ftrace_slowdown = f.mean_us / v.mean_us;
        assert!(
            fmeter_slowdown < 2.5,
            "{}: fmeter slowdown {fmeter_slowdown:.2} out of the paper's band",
            test.label()
        );
        assert!(
            ftrace_slowdown / fmeter_slowdown > 2.0,
            "{}: ftrace must be >2x worse than fmeter (got {:.2}x vs {:.2}x)",
            test.label(),
            ftrace_slowdown,
            fmeter_slowdown
        );
    }
}

#[test]
fn lmbench_relative_magnitudes_match_the_paper() {
    // Coarse sanity on the baseline column: process tests are the most
    // expensive, simple syscalls the cheapest, select scales with nfds.
    let mut k = kernel(29);
    let run = |k: &mut Kernel, t: LmbenchTest| t.run(k, CpuId(0), 25).unwrap().mean_us;
    let syscall = run(&mut k, LmbenchTest::SimpleSyscall);
    let read = run(&mut k, LmbenchTest::SimpleRead);
    let fork = run(&mut k, LmbenchTest::ForkExit);
    let fork_sh = run(&mut k, LmbenchTest::ForkSh);
    let select10 = run(&mut k, LmbenchTest::Select10);
    let select100 = run(&mut k, LmbenchTest::Select100);
    assert!(syscall < read, "read must cost more than a null syscall");
    assert!(
        fork > 100.0 * syscall,
        "fork is orders of magnitude above a syscall"
    );
    assert!(
        fork_sh > fork,
        "fork+sh does strictly more work than fork+exit"
    );
    assert!(select100 > 3.0 * select10, "select cost scales with nfds");
}

#[test]
fn user_time_is_configuration_invariant() {
    // Table 3's `user` row: user-mode time never changes with tracing.
    use fmeter::workloads::{KCompile, Workload};
    let mut times = Vec::new();
    for traced in [false, true] {
        let mut k = Kernel::new(KernelConfig {
            num_cpus: 2,
            seed: 31,
            timer_hz: 1000,
            image_seed: 0x2628,
        })
        .unwrap();
        if traced {
            k.set_tracer(Arc::new(FtraceTracer::new(k.symbols(), 2, 1 << 20)));
        }
        let mut make = KCompile::new(9);
        let stats = make.run_steps(&mut k, &[CpuId(0)], 20).unwrap();
        times.push(stats.user_time);
    }
    assert_eq!(times[0], times[1]);
}

#[test]
fn tick_cadence_is_clock_driven_not_op_driven() {
    let mut k = Kernel::new(KernelConfig {
        num_cpus: 1,
        seed: 37,
        timer_hz: 1000,
        image_seed: 0x2628,
    })
    .unwrap();
    let tracer = Arc::new(FmeterTracer::with_cpus(k.symbols(), 1));
    k.set_tracer(tracer.clone());
    let tick = k.symbols().lookup("smp_apic_timer_interrupt").unwrap();
    // 20 ms of pure user time -> ~20 ticks regardless of op count.
    k.run_user_time(CpuId(0), Nanos::from_millis(20)).unwrap();
    let ticks = tracer.count(tick);
    assert!(
        (15..=25).contains(&ticks),
        "expected ~20 ticks, got {ticks}"
    );
}
