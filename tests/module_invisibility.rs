//! Integration: runtime-loadable modules are invisible to the tracer
//! except through the core-kernel functions they call — the property the
//! whole Table 5 experiment rests on.

use std::sync::Arc;

use fmeter::kernel_sim::{modules, CpuId, Kernel, KernelConfig, ModuleOp, RecordingTracer};
use fmeter::trace::FmeterTracer;
use fmeter::workloads::{NetperfReceive, Workload};

fn kernel(seed: u64) -> Kernel {
    Kernel::new(KernelConfig {
        num_cpus: 2,
        seed,
        timer_hz: 0,
        image_seed: 0x2628,
    })
    .expect("standard image builds")
}

#[test]
fn module_ops_only_emit_core_kernel_function_ids() {
    let mut k = kernel(1);
    k.load_module(modules::myri10ge_v151_no_lro()).unwrap();
    let recorder = Arc::new(RecordingTracer::new());
    k.set_tracer(recorder.clone());
    k.run_module_op(CpuId(0), "myri10ge", ModuleOp::NicReceive, 64)
        .unwrap();
    let num_functions = k.num_functions() as u32;
    let calls = recorder.calls();
    assert!(!calls.is_empty());
    for (_, f) in calls {
        assert!(
            f.0 < num_functions,
            "traced id {f} outside the core symbol table"
        );
    }
}

#[test]
fn no_myri10ge_symbol_exists_in_core_table() {
    let k = kernel(2);
    for f in k.symbols().iter() {
        assert!(
            !f.name.starts_with("myri10ge"),
            "driver symbol {} leaked into the instrumented table",
            f.name
        );
    }
}

#[test]
fn lro_variants_differ_only_through_core_calls() {
    // Same receive volume through two driver variants: the LRO-off driver
    // must show far more netif_receive_skb activity; the LRO-on driver
    // must show inet_lro activity instead.
    let run = |module| {
        let mut k = kernel(3);
        k.load_module(module).unwrap();
        let fmeter = Arc::new(FmeterTracer::with_cpus(k.symbols(), 2));
        k.set_tracer(fmeter.clone());
        let mut netperf = NetperfReceive::new(4, "myri10ge");
        netperf.run_steps(&mut k, &[CpuId(0)], 40).unwrap();
        let netif = k.symbols().lookup("netif_receive_skb").unwrap();
        let lro = k.symbols().lookup("inet_lro_receive_skb").unwrap();
        (fmeter.count(netif), fmeter.count(lro))
    };
    let (netif_on, lro_on) = run(modules::myri10ge_v151());
    let (netif_off, lro_off) = run(modules::myri10ge_v151_no_lro());
    assert!(lro_on > 0, "LRO driver must call inet_lro_receive_skb");
    assert_eq!(
        lro_off, 0,
        "LRO-off driver must never call inet_lro_receive_skb"
    );
    assert!(
        netif_off > netif_on * 3,
        "per-packet delivery must dominate aggregated delivery ({netif_off} vs {netif_on})"
    );
}

#[test]
fn unloading_the_module_stops_its_effects() {
    let mut k = kernel(5);
    k.load_module(modules::myri10ge_v143()).unwrap();
    k.run_module_op(CpuId(0), "myri10ge", ModuleOp::NicReceive, 8)
        .unwrap();
    k.unload_module("myri10ge").unwrap();
    assert!(k
        .run_module_op(CpuId(0), "myri10ge", ModuleOp::NicReceive, 8)
        .is_err());
    assert!(k.loaded_modules().is_empty());
}

#[test]
fn driver_internal_time_elapses_without_tracer_events() {
    let mut k = kernel(6);
    // A module with pure internal work and zero core-kernel calls.
    let ghost = fmeter::kernel_sim::KernelModule::new("ghost", "0.1").with_handler(
        ModuleOp::NicTransmit,
        fmeter::kernel_sim::ModuleHandler {
            calls: vec![],
            internal_cost_per_unit: fmeter::kernel_sim::Nanos(1_000),
        },
    );
    k.load_module(ghost).unwrap();
    let recorder = Arc::new(RecordingTracer::new());
    k.set_tracer(recorder.clone());
    let before = k.now();
    let stats = k
        .run_module_op(CpuId(0), "ghost", ModuleOp::NicTransmit, 100)
        .unwrap();
    assert_eq!(recorder.len(), 0, "ghost module must be invisible");
    assert_eq!(stats.calls, 0);
    assert!(k.now() - before >= fmeter::kernel_sim::Nanos(100_000));
}
