//! Cross-crate integration: the production tracers must agree exactly
//! with the reference tracer and with each other about *what happened* —
//! they only differ in cost and in what they store.

use std::sync::Arc;

use fmeter::kernel_sim::{CountingTracer, CpuId, FunctionId, Kernel, KernelConfig, KernelOp};
use fmeter::trace::{FmeterTracer, FtraceTracer};

fn kernel(seed: u64) -> Kernel {
    Kernel::new(KernelConfig {
        num_cpus: 4,
        seed,
        timer_hz: 1000,
        image_seed: 0x2628,
    })
    .expect("standard image builds")
}

fn ops() -> Vec<KernelOp> {
    vec![
        KernelOp::Read { bytes: 8192 },
        KernelOp::Write { bytes: 4096 },
        KernelOp::Open { components: 3 },
        KernelOp::Fork { pages: 32 },
        KernelOp::Exit { pages: 32 },
        KernelOp::TcpSend { bytes: 20000 },
        KernelOp::Select {
            nfds: 30,
            tcp: true,
        },
        KernelOp::PageFault { major: true },
        KernelOp::SemOp,
    ]
}

#[test]
fn fmeter_counts_match_reference_counts() {
    // Same kernel seed => identical walks; the per-function counts seen
    // by Fmeter's paged per-CPU counters must equal the trivial global
    // reference tracer's.
    let mut k1 = kernel(42);
    let reference = Arc::new(CountingTracer::new(k1.num_functions()));
    k1.set_tracer(reference.clone());
    let mut k2 = kernel(42);
    let fmeter = Arc::new(FmeterTracer::with_cpus(k2.symbols(), 4));
    k2.set_tracer(fmeter.clone());

    for (i, op) in ops().into_iter().enumerate() {
        let cpu = CpuId(i % 4);
        k1.run_op(cpu, op).unwrap();
        k2.run_op(cpu, op).unwrap();
    }
    // Tick schedules differ (tracer overhead shifts the clock), so
    // compare with ticks subtracted: disable ticks instead.
    let ref_counts = reference.snapshot();
    let fm_counts = fmeter.snapshot(k2.now());
    // Tick-path functions may differ in count; every other function must
    // match exactly. Identify tick-reachable functions by a tick-only run.
    let mut tick_kernel = kernel(42);
    let tick_ref = Arc::new(CountingTracer::new(tick_kernel.num_functions()));
    tick_kernel.set_tracer(tick_ref.clone());
    for _ in 0..50 {
        tick_kernel.run_op(CpuId(0), KernelOp::TimerTick).unwrap();
    }
    let tick_touched: Vec<bool> = tick_ref.snapshot().iter().map(|&c| c > 0).collect();

    let mut compared = 0;
    for i in 0..ref_counts.len() {
        if !tick_touched[i] {
            assert_eq!(
                ref_counts[i],
                fm_counts.counts()[i],
                "fn#{i} count mismatch between reference and fmeter"
            );
            compared += 1;
        }
    }
    assert!(compared > 2000, "too few functions compared: {compared}");
}

#[test]
fn ftrace_event_stream_aggregates_to_fmeter_counts() {
    // Ftrace stores per-event records; aggregating them per function must
    // reproduce Fmeter's counters for the same (seeded) activity.
    let mut k1 = Kernel::new(KernelConfig {
        num_cpus: 4,
        seed: 7,
        timer_hz: 0,
        image_seed: 0x2628,
    })
    .unwrap();
    let ftrace = Arc::new(FtraceTracer::new(k1.symbols(), 4, 1 << 24));
    k1.set_tracer(ftrace.clone());
    let mut k2 = Kernel::new(KernelConfig {
        num_cpus: 4,
        seed: 7,
        timer_hz: 0,
        image_seed: 0x2628,
    })
    .unwrap();
    let fmeter = Arc::new(FmeterTracer::with_cpus(k2.symbols(), 4));
    k2.set_tracer(fmeter.clone());

    for (i, op) in ops().into_iter().enumerate() {
        let cpu = CpuId(i % 4);
        k1.run_op(cpu, op).unwrap();
        k2.run_op(cpu, op).unwrap();
    }
    assert_eq!(ftrace.total_overwritten(), 0, "buffer must be big enough");
    let events = ftrace.drain_all();
    let mut from_events = vec![0u64; k1.num_functions()];
    let address_to_id: std::collections::HashMap<u64, usize> = k1
        .symbols()
        .iter()
        .map(|f| (f.address, f.id.index()))
        .collect();
    for e in &events {
        from_events[address_to_id[&e.ip]] += 1;
    }
    let fm = fmeter.snapshot(k2.now());
    assert_eq!(from_events, fm.counts().to_vec());
}

#[test]
fn per_cpu_counts_sum_to_total() {
    let mut k = kernel(9);
    let fmeter = Arc::new(FmeterTracer::with_cpus(k.symbols(), 4));
    k.set_tracer(fmeter.clone());
    for (i, op) in ops().into_iter().cycle().take(40).enumerate() {
        k.run_op(CpuId(i % 4), op).unwrap();
    }
    let probe = k.symbols().lookup("_spin_lock").unwrap();
    let per_cpu_sum: u64 = (0..4).map(|c| fmeter.count_on_cpu(CpuId(c), probe)).sum();
    assert_eq!(per_cpu_sum, fmeter.count(probe));
    assert!(per_cpu_sum > 0);
    // All four CPUs executed work.
    for c in 0..4 {
        assert!(k.cpu(CpuId(c)).unwrap().calls_executed > 0, "cpu{c} idle");
    }
}

#[test]
fn ftrace_small_buffer_loses_oldest_but_counts_losses() {
    let mut k = Kernel::new(KernelConfig {
        num_cpus: 1,
        seed: 3,
        timer_hz: 0,
        image_seed: 0x2628,
    })
    .unwrap();
    // Tiny 2 KiB ring: heavy ops must overflow it.
    let ftrace = Arc::new(FtraceTracer::new(k.symbols(), 1, 2048));
    k.set_tracer(ftrace.clone());
    let stats = k.run_op(CpuId(0), KernelOp::Fork { pages: 64 }).unwrap();
    assert!(stats.calls > 100);
    let lost = ftrace.total_overwritten();
    let kept = ftrace.drain(CpuId(0)).len() as u64;
    assert!(lost > 0, "a fork must overflow a 2 KiB ring");
    assert_eq!(
        lost + kept,
        stats.calls,
        "every event is either kept or counted lost"
    );
}

#[test]
fn function_ids_and_addresses_are_stable_across_reboots() {
    // The paper relies on symbols loading at the same address across
    // reboots of one build: two kernels from the same image seed agree.
    let k1 = kernel(1);
    let k2 = kernel(2); // different runtime seed, same image
    for (f1, f2) in k1.symbols().iter().zip(k2.symbols().iter()) {
        assert_eq!(f1.id, f2.id);
        assert_eq!(f1.address, f2.address);
        assert_eq!(f1.name, f2.name);
    }
    // ...and a different *image* seed is a different build.
    let k3 = Kernel::new(KernelConfig {
        num_cpus: 1,
        seed: 1,
        timer_hz: 0,
        image_seed: 0x9999,
    })
    .unwrap();
    let differs = k1
        .symbols()
        .iter()
        .zip(k3.symbols().iter())
        .any(|(a, b)| a.name != b.name || a.address != b.address);
    assert!(differs);
}

#[test]
fn disabled_tracers_see_nothing_but_kernel_runs_identically() {
    let mut k = kernel(5);
    let fmeter = Arc::new(FmeterTracer::with_cpus(k.symbols(), 4));
    k.set_tracer(fmeter.clone());
    fmeter.set_enabled(false);
    let s1 = k.run_op(CpuId(0), KernelOp::Read { bytes: 4096 }).unwrap();
    assert_eq!(fmeter.snapshot(k.now()).total(), 0);
    fmeter.set_enabled(true);
    let s2 = k.run_op(CpuId(0), KernelOp::Read { bytes: 4096 }).unwrap();
    assert_eq!(fmeter.snapshot(k.now()).total(), s2.calls);
    // Disabled instrumentation costs nothing; enabled costs something.
    let _ = s1;
    let f = FunctionId(0);
    let _ = f;
}
