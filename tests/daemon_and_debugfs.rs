//! Integration: the logging daemon's debugfs path — counters flow from
//! the kernel-side tracer to "user space" exactly the way the paper's
//! daemon reads them.

use std::sync::Arc;

use fmeter::core::Fmeter;
use fmeter::kernel_sim::{CpuId, Kernel, KernelConfig, KernelOp, Nanos};
use fmeter::trace::{CounterSnapshot, FmeterTracer};
use fmeter::workloads::Background;

fn kernel(seed: u64) -> Kernel {
    Kernel::new(KernelConfig {
        num_cpus: 2,
        seed,
        timer_hz: 1000,
        image_seed: 0x2628,
    })
    .expect("standard image builds")
}

/// Parses the debugfs export back into (address, count) pairs.
fn parse_debugfs(content: &str) -> Vec<(u64, u64)> {
    content
        .lines()
        .map(|line| {
            let (addr, count) = line.split_once(' ').expect("two columns");
            (
                u64::from_str_radix(addr.trim_start_matches("0x"), 16).expect("hex address"),
                count.parse().expect("decimal count"),
            )
        })
        .collect()
}

#[test]
fn debugfs_export_matches_snapshot() {
    let mut k = kernel(1);
    let fmeter = Fmeter::install(&mut k);
    k.run_op(CpuId(0), KernelOp::Fork { pages: 16 }).unwrap();
    k.run_op(CpuId(1), KernelOp::Read { bytes: 8192 }).unwrap();

    let content = k.debugfs().read("tracing/fmeter/counters").unwrap();
    let parsed = parse_debugfs(&content);
    assert_eq!(parsed.len(), k.num_functions());

    let snapshot = fmeter.tracer().snapshot(k.now());
    for (i, &(addr, count)) in parsed.iter().enumerate() {
        let f = k
            .symbols()
            .function(fmeter::kernel_sim::FunctionId(i as u32))
            .unwrap();
        assert_eq!(addr, f.address, "line {i} address mismatch");
        assert_eq!(count, snapshot.counts()[i], "line {i} count mismatch");
    }
}

#[test]
fn daemon_reads_counts_twice_and_diffs() {
    // Reproduce the daemon's read-diff-log loop manually via debugfs.
    let mut k = kernel(2);
    let _fmeter = Fmeter::install(&mut k);

    let before: Vec<(u64, u64)> =
        parse_debugfs(&k.debugfs().read("tracing/fmeter/counters").unwrap());
    let stats = k.run_op(CpuId(0), KernelOp::Execve { pages: 32 }).unwrap();
    let after: Vec<(u64, u64)> =
        parse_debugfs(&k.debugfs().read("tracing/fmeter/counters").unwrap());

    let diff_total: u64 = before
        .iter()
        .zip(&after)
        .map(|(&(_, b), &(_, a))| a - b)
        .sum();
    assert_eq!(
        diff_total, stats.calls,
        "debugfs diff equals executed calls"
    );
}

#[test]
fn logger_intervals_tile_time_and_counts() {
    let mut k = kernel(3);
    let fmeter = Fmeter::install(&mut k);
    let tracer: &Arc<FmeterTracer> = fmeter.tracer();
    let t0 = k.now();
    let before: CounterSnapshot = tracer.snapshot(t0);

    let mut logger = fmeter.logger(Nanos::from_millis(2), k.now());
    let mut background = Background::new(4);
    let sigs = logger
        .collect(&mut k, &mut background, &[CpuId(0)], 5, None)
        .unwrap();

    // Intervals tile exactly and sum to the overall delta.
    for pair in sigs.windows(2) {
        assert_eq!(pair[0].ended_at, pair[1].started_at);
    }
    assert_eq!(sigs[0].started_at, t0);
    assert_eq!(sigs.last().unwrap().ended_at, k.now());
    let after = tracer.snapshot(k.now());
    let overall = before.delta(&after);
    let mut summed = vec![0u64; overall.len()];
    for s in &sigs {
        for (i, c) in s.counts.iter().enumerate() {
            summed[i] += c;
        }
    }
    assert_eq!(summed, overall);
}

#[test]
fn switch_off_produces_empty_intervals() {
    let mut k = kernel(5);
    let fmeter = Fmeter::install(&mut k);
    let mut logger = fmeter.logger(Nanos::from_millis(1), k.now());
    let mut background = Background::new(6);

    fmeter.set_enabled(false);
    let sigs = logger
        .collect(&mut k, &mut background, &[CpuId(0)], 2, None)
        .unwrap();
    for s in &sigs {
        assert_eq!(
            s.total_calls(),
            0,
            "disabled tracer must log empty signatures"
        );
    }
    fmeter.set_enabled(true);
    let sigs = logger
        .collect(&mut k, &mut background, &[CpuId(0)], 2, None)
        .unwrap();
    for s in &sigs {
        assert!(s.total_calls() > 0);
    }
}

#[test]
fn timer_ticks_appear_in_signatures_uniformly() {
    // Background interference (here: the timer tick) lands in every
    // interval — the idf weighting then attenuates it (paper §5).
    let mut k = kernel(7);
    let fmeter = Fmeter::install(&mut k);
    let mut logger = fmeter.logger(Nanos::from_millis(3), k.now());
    let mut background = Background::new(8);
    let sigs = logger
        .collect(&mut k, &mut background, &[CpuId(0)], 6, None)
        .unwrap();
    let tick_entry = k.symbols().lookup("smp_apic_timer_interrupt").unwrap();
    for s in &sigs {
        assert!(
            s.counts[tick_entry.index()] > 0,
            "every 3ms interval must contain 1000Hz tick activity"
        );
    }
}
