//! Always-on streaming ingest — the monitoring daemon the paper's §2.2
//! workflow ultimately runs as, now fronted by the sharded
//! [`SignatureService`]: signatures stream off the machine interval by
//! interval, each one is classified against the live service *and then
//! inserted into it*, old intervals age out of a sliding retention
//! window, behaviour syndromes are refreshed every few intervals
//! through the warm-started `recluster` path (cold K-means once, then
//! O(changed docs) per maintenance cycle), the tf-idf weights are
//! re-fitted automatically whenever the corpus has drifted far enough
//! from the published idf generation,
//! dead slots are reclaimed by policy-driven vacuums (the daemon
//! translates its eviction cursor through the remap), and the whole
//! run is **crash-consistent**: the service streams in durable mode
//! (WAL-append before every mutation, policy-driven checkpoints), the
//! daemon is killed mid-write — torn WAL tail and all — and recovery
//! restores exactly the durably-acked state and keeps streaming.
//!
//! Every mutation publishes an immutable snapshot generation, so a
//! dashboard (or any other reader) can pin a generation and keep
//! querying it lock-free while the daemon streams — demonstrated below
//! with a snapshot frozen at bootstrap and re-queried after the whole
//! stream has churned the live corpus.
//!
//! ```text
//! cargo run --release --example streaming_daemon
//! ```

use fmeter::core::{
    persist, CheckpointPolicy, DurableOptions, Fmeter, RawSignature, RefitPolicy, SignatureDb,
    SignatureService, SyncPolicy, VacuumPolicy, WalHealth,
};
use fmeter::ir::SearchScratch;
use fmeter::kernel_sim::{CpuId, Kernel, KernelConfig, Nanos};
use fmeter::workloads::{ApacheBench, Dbench, KCompile, RollingMix, Scp, Workload};

/// Live signatures retained (the sliding window).
const WINDOW: usize = 56;
/// Streamed intervals after the bootstrap corpus.
const STREAM: usize = 48;
/// Shards the service spreads the window over.
const SHARDS: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut kernel = Kernel::new(KernelConfig {
        seed: 77,
        ..KernelConfig::default()
    })?;
    let fmeter = Fmeter::install(&mut kernel);
    let cpus: Vec<CpuId> = (0..4).map(CpuId).collect();
    let mut logger = fmeter.logger(Nanos::from_millis(8), kernel.now());

    // 1. Bootstrap: a labelled batch from each known behaviour class,
    //    batch-built exactly as an offline operator would.
    let mut raw: Vec<RawSignature> = Vec::new();
    let bootstrap = |logger: &mut fmeter::core::SignatureLogger,
                     kernel: &mut Kernel,
                     w: &mut dyn Workload,
                     label: &str|
     -> Result<Vec<RawSignature>, Box<dyn std::error::Error>> {
        logger.resync(kernel.now());
        Ok(logger.collect(kernel, w, &cpus, 8, Some(label))?)
    };
    raw.extend(bootstrap(
        &mut logger,
        &mut kernel,
        &mut KCompile::new(1),
        "kcompile",
    )?);
    raw.extend(bootstrap(
        &mut logger,
        &mut kernel,
        &mut Scp::new(2),
        "scp",
    )?);
    raw.extend(bootstrap(
        &mut logger,
        &mut kernel,
        &mut Dbench::new(3),
        "dbench",
    )?);
    raw.extend(bootstrap(
        &mut logger,
        &mut kernel,
        &mut ApacheBench::new(4),
        "apachebench",
    )?);
    // The daemon runs durable: every mutation is WAL-appended (and
    // fsynced) before it applies, and the log folds into a fresh
    // checkpoint every 24 ops — so the kill below can only ever cost
    // the mutation whose record it tears.
    let durable_dir =
        std::env::temp_dir().join(format!("fmeter-streaming-daemon-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&durable_dir);
    let opts = DurableOptions {
        sync: SyncPolicy::EveryRecord,
        checkpoint: CheckpointPolicy::Every {
            ops: Some(24),
            wal_bytes: Some(256 * 1024),
            interval: None,
        },
    };
    let service =
        SignatureService::from_db_durable(SignatureDb::build(&raw)?, SHARDS, &durable_dir, opts)?;
    // A 56-signature window is tiny, so every mutation moves idf a lot;
    // the drift bound is set loose enough that staleness (a fifth of the
    // window's worth of mutations) is what usually fires.
    service.set_refit_policy(RefitPolicy::Threshold {
        max_idf_drift: 0.5,
        max_stale_fraction: 0.2,
    })?;
    // Sliding-window eviction leaves one dead slot per aged-out
    // interval; let the service reclaim them once they pile up to a
    // fifth of the slot space (but not before 8 accumulate).
    service.set_vacuum_policy(VacuumPolicy::DeadFraction {
        max_dead_fraction: 0.2,
        min_dead: 8,
    })?;
    println!(
        "bootstrap: {} signatures over {} functions in {} shards, epoch {}, durable at {}",
        service.len(),
        service.dim(),
        service.num_shards(),
        service.epoch(),
        durable_dir.display()
    );
    // A dashboard pins the bootstrap generation: this Arc stays valid
    // and immutable no matter what the streaming loop does below.
    let pinned = service.snapshot();
    let bootstrap_len = service.len();
    let bootstrap_probe = raw[0].to_term_counts();

    // 2. Stream: a rolling workload mix (phases rotate through the four
    //    classes, drifting daemon noise underneath). Every interval is
    //    classified against the live service, then ingested; the oldest
    //    signature ages out once the window is full. Each mutation
    //    publishes the next snapshot generation off to the side —
    //    concurrent readers never wait on this loop.
    let mut mix = RollingMix::standard(42, 300..=900);
    let mut oldest = 0usize; // sliding-window eviction cursor
    let mut correct = 0usize;
    let mut votes = 0usize;
    let mut refits_seen = service.epoch();
    let mut vacuums_seen = service.vacuums();
    let mut warm_reclusters = 0usize;
    let mut cold_reclusters = 0usize;
    logger.resync(kernel.now());
    for interval in 0..STREAM {
        let label = mix.name().to_string();
        let sig = logger.collect_one(&mut kernel, &mut mix, &cpus, Some(&label))?;
        if let Some(predicted) = service.classify(&sig.to_term_counts(), 5)? {
            votes += 1;
            if predicted == label {
                correct += 1;
            }
        }
        raw.push(sig.clone());
        service.insert(&sig)?;
        while service.len() > WINDOW {
            while !service.is_live(oldest) {
                oldest += 1;
            }
            service.remove(oldest)?;
            // A removal may have crossed the dead-fraction bound and
            // auto-vacuumed: every doc id just got renumbered, so the
            // raw-history mirror and the eviction cursor must translate
            // through the remap the vacuum left behind.
            if service.vacuums() != vacuums_seen {
                vacuums_seen = service.vacuums();
                let stats = service.last_vacuum().expect("vacuum records its remap");
                raw = stats
                    .remap
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| m.is_some())
                    .map(|(old_id, _)| raw[old_id].clone())
                    .collect();
                // Everything before the cursor was dead; the oldest
                // surviving interval now sits at slot 0.
                oldest = (oldest..stats.remap.len())
                    .find_map(|d| stats.remap[d])
                    .unwrap_or(0);
                println!(
                    "  vacuum -> reclaimed {} dead slots ({} live / {} slots, generation {})",
                    stats.dropped_slots,
                    service.len(),
                    service.num_slots(),
                    service.generation()
                );
            }
        }
        if service.epoch() != refits_seen {
            println!(
                "  refit -> epoch {} (drift absorbed, {} live / {} slots, generation {})",
                service.epoch(),
                service.len(),
                service.num_slots(),
                service.generation()
            );
            refits_seen = service.epoch();
        }
        // Syndrome maintenance rides the stream: every few intervals the
        // daemon refreshes its behaviour syndromes through the warm-started
        // recluster path. The first call clusters cold; after that only
        // the docs churned since the last cycle cost any Lloyd work — the
        // cached assignment follows inserts, evictions, and vacuums.
        if interval % 6 == 5 {
            let rc = service.recluster(4, 9)?;
            if rc.warm {
                warm_reclusters += 1;
            } else {
                cold_reclusters += 1;
            }
        }
    }
    let accuracy = correct as f64 / votes.max(1) as f64;
    println!(
        "streamed {STREAM} intervals: window {} live / {} slots, {} refits, \
         {} snapshot generations, online classification accuracy {:.2}",
        service.len(),
        service.num_slots(),
        service.epoch(),
        service.generation(),
        accuracy
    );
    assert!(votes > 0, "classification must produce votes");
    // Phase-straddling intervals are genuinely mixed, so demand a solid
    // majority rather than perfection.
    assert!(
        accuracy >= 0.6,
        "online accuracy collapsed: {accuracy:.2} < 0.60"
    );
    // The maintenance cycles must have settled onto the warm path: after
    // the first cold call, every refresh is O(changed docs).
    let final_syndromes = service.recluster(4, 9)?;
    assert!(final_syndromes.warm, "steady-state recluster fell cold");
    println!(
        "syndrome maintenance: {} cycles ({} warm-started, {} cold), final partition:",
        warm_reclusters + cold_reclusters,
        warm_reclusters,
        cold_reclusters
    );
    for (i, s) in final_syndromes.syndromes.iter().enumerate() {
        println!(
            "  syndrome {i}: {} members, dominant label {:?}",
            s.members.len(),
            s.dominant_label
        );
    }
    assert!(
        warm_reclusters >= 1,
        "the cached assignment never warm-started a cycle"
    );

    // The pinned bootstrap generation still answers — untouched by the
    // stream's inserts, evictions, refits, and vacuums.
    assert_eq!(pinned.len(), bootstrap_len);
    let mut scratch = SearchScratch::new();
    let frozen_hits = pinned.search(&bootstrap_probe, 3, &mut scratch)?;
    assert!(!frozen_hits.is_empty(), "pinned snapshot went dark");
    println!(
        "pinned generation {} still serves {} signatures (live service is at generation {})",
        pinned.generation(),
        pinned.len(),
        service.generation()
    );

    // 3. The incremental service must be indistinguishable from a
    //    from-scratch flat rebuild over the surviving window once
    //    refitted — sharding changes the layout, never the answers.
    service.refit();
    let surviving: Vec<RawSignature> = (0..service.num_slots())
        .filter(|&d| service.is_live(d))
        .map(|d| raw[d].clone())
        .collect();
    let rebuilt = SignatureDb::build(&surviving)?;
    assert_eq!(service.len(), rebuilt.len());
    let mut agree = 0usize;
    for probe in surviving.iter().rev().take(12) {
        let q = probe.to_term_counts();
        let incremental = service.classify(&q, 5)?;
        let fresh = rebuilt.classify(&q, 5)?;
        assert_eq!(
            incremental, fresh,
            "post-refit classification diverged from flat rebuild"
        );
        agree += 1;
    }
    println!("post-refit equivalence: {agree}/12 probes matched a from-scratch flat rebuild");

    // 4. Crash consistency: kill the daemon mid-write and recover.
    //    First fold everything so far into a clean checkpoint (v4
    //    envelope, per-section checksums), then insert one more
    //    interval whose WAL record we tear — the byte-level shape of a
    //    process killed while appending.
    service.checkpoint()?;
    let before_kill = service.len();
    let probe_before = surviving.last().expect("window is non-empty").clone();
    let verdict_before = service.classify(&probe_before.to_term_counts(), 5)?;
    let doomed = logger.collect_one(&mut kernel, &mut mix, &cpus, Some("doomed"))?;
    service.insert(&doomed)?;
    let (generation, wal_bytes) = service
        .with_durable_log(|log| (log.generation(), log.wal_bytes()))
        .expect("daemon runs durable");
    drop(service); // kill -9: no shutdown save, no final checkpoint
    let wal_path = durable_dir.join(format!("wal-{generation:010}.log"));
    let wal = std::fs::read(&wal_path)?;
    std::fs::write(&wal_path, &wal[..wal.len() - 5])?; // torn final record
    println!(
        "killed the daemon mid-append: wal-{generation:010}.log torn at byte {} of {wal_bytes}",
        wal.len() - 5,
    );

    //    Recovery loads the newest good checkpoint, replays the WAL up
    //    to the torn record, and starts a fresh generation. Exactly the
    //    doomed insert is gone; everything acked before it survives
    //    with identical answers.
    let (recovered, report) = SignatureService::recover_durable(&durable_dir, opts)?;
    println!(
        "recovered from generation {}: {} op(s) replayed, torn tail = {}, {} live signatures",
        report.generation,
        report.replayed_ops,
        report.torn_tail,
        recovered.len()
    );
    assert!(report.torn_tail, "the torn record must be detected");
    assert_eq!(recovered.len(), before_kill, "the torn insert is lost");
    assert_eq!(recovered.num_shards(), SHARDS, "saved layout restored");
    assert_eq!(
        recovered.classify(&probe_before.to_term_counts(), 5)?,
        verdict_before,
        "recovered service diverged from the pre-kill state"
    );

    //    ... and the recovered daemon keeps streaming durably.
    logger.resync(kernel.now());
    for _ in 0..4 {
        let label = mix.name().to_string();
        let sig = logger.collect_one(&mut kernel, &mut mix, &cpus, Some(&label))?;
        recovered.insert(&sig)?;
    }
    recovered.checkpoint()?;
    assert_eq!(recovered.durability_health(), Some(WalHealth::Healthy));
    println!(
        "daemon resumed: {} live signatures at epoch {} (envelope v{}, durability healthy)",
        recovered.len(),
        recovered.epoch(),
        persist::CURRENT_FORMAT_VERSION,
    );
    drop(recovered);
    let _ = std::fs::remove_dir_all(&durable_dir);
    Ok(())
}
