//! Fleet monitoring with unsupervised syndromes — the paper's §2.2
//! operator workflow: signatures stream in from many production machines,
//! get clustered into labelled syndromes, and new machines are diagnosed
//! by their nearest syndrome. Meta-clustering then groups whole behaviour
//! classes for cache-aware scheduling.
//!
//! ```text
//! cargo run --release --example datacenter_monitor
//! ```

use fmeter::core::{Fmeter, RawSignature, SignatureDb};
use fmeter::ir::euclidean_distance;
use fmeter::kernel_sim::{CpuId, Kernel, KernelConfig, Nanos};
use fmeter::workloads::{ApacheBench, Dbench, KCompile, Scp, Workload};

/// One "production machine" running a known role.
fn machine_run(
    role: usize,
    label: &str,
    n: usize,
    seed: u64,
) -> Result<Vec<RawSignature>, Box<dyn std::error::Error>> {
    let mut kernel = Kernel::new(KernelConfig {
        seed,
        ..KernelConfig::default()
    })?;
    let fmeter = Fmeter::install(&mut kernel);
    let cpus: Vec<CpuId> = (0..4).map(CpuId).collect();
    let mut logger = fmeter.logger(Nanos::from_millis(8), kernel.now());
    let mut workload: Box<dyn Workload> = match role {
        0 => Box::new(ApacheBench::new(seed)),
        1 => Box::new(Dbench::new(seed)),
        2 => Box::new(KCompile::new(seed)),
        _ => Box::new(Scp::new(seed)),
    };
    Ok(logger.collect(&mut kernel, workload.as_mut(), &cpus, n, Some(label))?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Twelve machines, four roles, three machines per role.
    let roles = ["web", "storage", "build", "transfer"];
    let mut all = Vec::new();
    for (role, name) in roles.iter().enumerate() {
        for machine in 0..3 {
            let seed = (role * 10 + machine) as u64 + 1000;
            println!("collecting from {name}-{machine}...");
            all.extend(machine_run(role, name, 10, seed)?);
        }
    }
    println!("fleet corpus: {} signatures", all.len());

    // 2. Cluster the fleet into syndromes (K = number of roles) and
    //    explain each one by its most discriminative kernel functions
    //    (resolved through the kallsyms debugfs export, as an operator
    //    tool would).
    let db = SignatureDb::build(&all)?;
    let syndromes = db.syndromes(roles.len(), 42)?;
    let symbol_kernel = Kernel::new(KernelConfig::default())?;
    println!("\nsyndromes:");
    for (i, s) in syndromes.iter().enumerate() {
        let explanation: Vec<String> = db
            .explain_syndrome(s, 3)
            .into_iter()
            .map(|(term, _, _)| {
                symbol_kernel
                    .symbols()
                    .function(fmeter::kernel_sim::FunctionId(term))
                    .map(|f| f.name.clone())
                    .unwrap_or_else(|_| format!("fn#{term}"))
            })
            .collect();
        println!(
            "  syndrome {i}: {} members, dominant role = {:?}, signature functions: {}",
            s.members.len(),
            s.dominant_label,
            explanation.join(", ")
        );
    }
    // Every role must surface as some syndrome's dominant label.
    for name in roles {
        assert!(
            syndromes
                .iter()
                .any(|s| s.dominant_label.as_deref() == Some(name)),
            "role {name} lost in clustering"
        );
    }

    // 3. A new, unlabelled machine reports in — diagnose it by the
    //    nearest syndrome centroid.
    println!("\nnew unlabelled machine joins (secretly a storage box)...");
    let newcomer = machine_run(1, "unknown", 6, 9999)?;
    let mut verdicts = std::collections::HashMap::<String, usize>::new();
    for sig in &newcomer {
        let vector = db.transform(&sig.to_term_counts());
        let nearest = syndromes
            .iter()
            .min_by(|a, b| {
                let da = euclidean_distance(&vector, &a.centroid).expect("same space");
                let db_ = euclidean_distance(&vector, &b.centroid).expect("same space");
                da.total_cmp(&db_)
            })
            .expect("syndromes exist");
        if let Some(label) = &nearest.dominant_label {
            *verdicts.entry(label.clone()).or_default() += 1;
        }
    }
    let (diagnosis, votes) = verdicts
        .iter()
        .max_by_key(|(_, &v)| v)
        .expect("votes exist");
    println!(
        "diagnosis: {diagnosis} ({votes}/{} intervals agree)",
        newcomer.len()
    );
    assert_eq!(diagnosis, "storage");

    // 4. Meta-clustering: which whole roles use the kernel similarly?
    //    (The paper proposes scheduling similar classes on shared cache
    //    domains.)
    let groups = SignatureDb::meta_cluster(&syndromes, 2)?;
    println!("\nmeta-clustering of syndromes into 2 cache-affinity groups:");
    for (i, s) in syndromes.iter().enumerate() {
        println!(
            "  group {}: syndrome {i} ({:?})",
            groups[i], s.dominant_label
        );
    }
    Ok(())
}
