//! Quickstart: boot a simulated machine, install Fmeter, log signatures
//! of two different behaviours, and compare them in the vector space.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fmeter::core::{Fmeter, SignatureDb};
use fmeter::kernel_sim::{CpuId, Kernel, KernelConfig, Nanos};
use fmeter::workloads::{Dbench, Scp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Boot a 16-CPU machine with the standard simulated kernel image
    //    (3815 instrumented functions) and patch Fmeter into it.
    let mut kernel = Kernel::new(KernelConfig::default())?;
    let fmeter = Fmeter::install(&mut kernel);
    println!(
        "machine up: {} kernel functions instrumented, tracer = {:?}",
        kernel.num_functions(),
        kernel.tracer().name()
    );

    // 2. Run the logging daemon while two workloads execute, 10 ms of
    //    simulated time per signature (the paper uses 2-10 s of wall
    //    time; the interval only sets the sample size per signature).
    let interval = Nanos::from_millis(10);
    let cpus: Vec<CpuId> = (0..4).map(CpuId).collect();
    let mut logger = fmeter.logger(interval, kernel.now());

    let mut scp = Scp::new(1);
    let scp_sigs = logger.collect(&mut kernel, &mut scp, &cpus, 8, Some("scp"))?;
    logger.resync(kernel.now());
    let mut dbench = Dbench::new(2);
    let dbench_sigs = logger.collect(&mut kernel, &mut dbench, &cpus, 8, Some("dbench"))?;

    println!(
        "collected {} scp + {} dbench signatures ({} kernel calls in the last one)",
        scp_sigs.len(),
        dbench_sigs.len(),
        dbench_sigs.last().map(|s| s.total_calls()).unwrap_or(0),
    );

    // 3. Embed everything in the tf-idf vector space and index it.
    let mut raw = scp_sigs.clone();
    raw.extend(dbench_sigs.clone());
    let db = SignatureDb::build(&raw)?;

    // 4. Same-class signatures are close; cross-class ones are far.
    let sigs = db.signatures();
    let same = sigs[0].cosine(&sigs[1])?;
    let cross = sigs[0].cosine(&sigs[12])?;
    println!("cosine(scp, scp)    = {same:.4}");
    println!("cosine(scp, dbench) = {cross:.4}");
    assert!(same > cross, "same-class signatures must be more similar");

    // 5. Similarity search labels a fresh interval.
    let fresh = logger.collect_one(&mut kernel, &mut dbench, &cpus, None)?;
    let verdict = db.classify(&fresh.to_term_counts(), 5)?;
    println!("fresh interval classified as: {verdict:?}");
    assert_eq!(verdict.as_deref(), Some("dbench"));
    Ok(())
}
