//! Detecting a subtly different device driver — the §4.2.1 myri10ge
//! experiment: the driver lives in an *un-instrumented* module, so its
//! behaviour reaches signatures only through the core-kernel functions
//! it calls. A system silently running with LRO disabled (the paper's
//! "compromised machine" scenario) is flagged automatically.
//!
//! ```text
//! cargo run --release --example driver_anomaly
//! ```

use fmeter::core::{Fmeter, RawSignature, SignatureDb};
use fmeter::kernel_sim::{modules, CpuId, Kernel, KernelConfig, KernelModule, Nanos};
use fmeter::workloads::NetperfReceive;

fn receive_run(
    module: KernelModule,
    label: &str,
    n: usize,
    seed: u64,
) -> Result<Vec<RawSignature>, Box<dyn std::error::Error>> {
    let mut kernel = Kernel::new(KernelConfig {
        seed,
        ..KernelConfig::default()
    })?;
    kernel.load_module(module)?;
    let fmeter = Fmeter::install(&mut kernel);
    let cpus: Vec<CpuId> = (0..4).map(CpuId).collect();
    let mut logger = fmeter.logger(Nanos::from_millis(10), kernel.now());
    let mut netperf = NetperfReceive::new(seed ^ 7, "myri10ge");
    Ok(logger.collect(&mut kernel, &mut netperf, &cpus, n, Some(label))?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the operator's database from the *known-good* machine:
    //    myri10ge 1.5.1, stock parameters.
    println!("profiling the known-good driver (myri10ge 1.5.1, LRO on)...");
    let good = receive_run(modules::myri10ge_v151(), "normal", 30, 500)?;

    // 2. A fleet machine reports in. Unknown to the operator, a module
    //    with LRO disabled was loaded (paper: "may correspond to a
    //    compromised system ... which increases the propensity of the
    //    machine to DDOS attacks").
    println!("collecting signatures from the suspect machine (LRO silently off)...");
    let suspect = receive_run(modules::myri10ge_v151_no_lro(), "suspect", 12, 600)?;
    // And one healthy control machine.
    let control = receive_run(modules::myri10ge_v151(), "control", 12, 700)?;

    // 3. Index everything together (one corpus, as the paper's daemon
    //    would) and compare each machine's signatures against the
    //    known-good profile.
    let mut all = good.clone();
    all.extend(suspect.clone());
    all.extend(control.clone());
    let db = SignatureDb::build(&all)?;
    let sigs = db.signatures();
    let (good_sigs, rest) = sigs.split_at(good.len());
    let (suspect_sigs, control_sigs) = rest.split_at(suspect.len());

    let mean_similarity = |probe: &[fmeter::core::Signature]| -> f64 {
        let mut total = 0.0;
        for p in probe {
            let best = good_sigs
                .iter()
                .map(|g| p.cosine(g).expect("same space"))
                .fold(f64::MIN, f64::max);
            total += best;
        }
        total / probe.len() as f64
    };
    let suspect_score = mean_similarity(suspect_sigs);
    let control_score = mean_similarity(control_sigs);
    println!("mean best-match cosine vs known-good profile:");
    println!("  control machine: {control_score:.4}");
    println!("  suspect machine: {suspect_score:.4}");

    assert!(
        control_score > suspect_score,
        "the healthy machine must match the known-good profile better"
    );
    let threshold = (control_score + suspect_score) / 2.0;
    println!(
        "verdict: suspect machine {} (threshold {threshold:.4})",
        if suspect_score < threshold {
            "FLAGGED as anomalous"
        } else {
            "looks normal"
        }
    );
    Ok(())
}
