//! Figure-1 style exploration: boot the simulated kernel and inspect the
//! power-law distribution of function invocation counts.
//!
//! ```text
//! cargo run --release --example boot_powerlaw
//! ```

use std::sync::Arc;

use fmeter::kernel_sim::{FunctionId, Kernel, KernelConfig};
use fmeter::trace::FmeterTracer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut kernel = Kernel::new(KernelConfig::default())?;
    let tracer = Arc::new(FmeterTracer::with_cpus(kernel.symbols(), kernel.num_cpus()));
    kernel.set_tracer(tracer.clone());

    let report = kernel.boot()?;
    println!(
        "boot complete: {} functions, {} calls, {} simulated",
        report.functions, report.total_calls, report.duration
    );

    // Rank functions by invocation count.
    let snapshot = tracer.snapshot(kernel.now());
    let mut ranked: Vec<(u64, FunctionId)> = snapshot
        .counts()
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, FunctionId(i as u32)))
        .collect();
    ranked.sort_unstable_by_key(|&(count, _)| std::cmp::Reverse(count));

    println!("\nhottest 15 functions (the idf-attenuated 'stop words'):");
    for (count, id) in ranked.iter().take(15) {
        let f = kernel.symbols().function(*id)?;
        println!("  {:>9} calls  {:<28} [{}]", count, f.name, f.subsystem);
    }

    println!("\nselected rank/count points (log-log straight line):");
    for rank in [1usize, 4, 16, 64, 256, 1024, 3815] {
        let (count, _) = ranked[rank - 1];
        println!("  rank {rank:>5}: {count}");
    }

    let decades = (ranked[0].0 as f64 / ranked[ranked.len() - 1].0.max(1) as f64).log10();
    println!("\ndynamic range: {decades:.1} decades (paper's Figure 1: ~7)");
    assert!(decades > 3.5);
    Ok(())
}
