//! Workload classification with a supervised SVM — the §4.2.1 scenario:
//! an operator trains on labelled signatures of known behaviours and
//! automatically recognises them later.
//!
//! ```text
//! cargo run --release --example workload_classifier
//! ```

use fmeter::core::{Fmeter, RawSignature};
use fmeter::ir::{Corpus, TfIdfModel};
use fmeter::kernel_sim::{CpuId, Kernel, KernelConfig, Nanos};
use fmeter::ml::{metrics::BinaryConfusion, CrossValidation, SvmTrainer};
use fmeter::workloads::{KCompile, Scp, Workload};

fn collect(
    workload: &mut dyn Workload,
    label: &str,
    n: usize,
    seed: u64,
) -> Result<Vec<RawSignature>, Box<dyn std::error::Error>> {
    let mut kernel = Kernel::new(KernelConfig {
        seed,
        ..KernelConfig::default()
    })?;
    let fmeter = Fmeter::install(&mut kernel);
    let cpus: Vec<CpuId> = (0..4).map(CpuId).collect();
    let mut logger = fmeter.logger(Nanos::from_millis(10), kernel.now());
    Ok(logger.collect(&mut kernel, workload, &cpus, n, Some(label))?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Controlled collection runs for two behaviours.
    println!("collecting scp signatures...");
    let scp = collect(&mut Scp::new(3), "scp", 40, 100)?;
    println!("collecting kcompile signatures...");
    let kcompile = collect(&mut KCompile::new(4), "kcompile", 40, 200)?;

    // 2. tf-idf over the whole corpus, L2-normalised into the unit ball.
    let mut corpus = Corpus::new(scp[0].counts.len());
    for sig in scp.iter().chain(&kcompile) {
        corpus.push(sig.to_term_counts());
    }
    let model = TfIdfModel::fit(&corpus)?;
    let vectors: Vec<_> = corpus
        .iter()
        .map(|d| model.transform(d).l2_normalized())
        .collect();
    let labels: Vec<i8> = std::iter::repeat_n(1i8, scp.len())
        .chain(std::iter::repeat_n(-1i8, kcompile.len()))
        .collect();

    // 3. The paper's protocol: K-fold CV with the C parameter tuned on a
    //    validation fold, evaluated once on the test fold.
    let report = CrossValidation::new(5).run(&vectors, &labels)?;
    let (acc, sd) = report.mean_accuracy();
    println!(
        "5-fold CV scp(+1) vs kcompile(-1): accuracy {:.2}% ± {:.2} \
         (baseline {:.2}%)",
        acc * 100.0,
        sd * 100.0,
        report.baseline_accuracy * 100.0
    );

    // 4. Train a final model on everything and sanity-check it in-sample.
    let svm = SvmTrainer::new().train(&vectors, &labels)?;
    let predictions = svm.predict_batch(&vectors);
    let confusion = BinaryConfusion::from_labels(&labels, &predictions)?;
    println!(
        "final model: {} support vectors, training accuracy {:.2}%",
        svm.num_support_vectors(),
        confusion.accuracy() * 100.0
    );
    assert!(acc > 0.95);
    Ok(())
}
