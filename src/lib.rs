//! Fmeter — indexable low-level system signatures by counting kernel
//! function calls.
//!
//! A comprehensive reproduction of *"Fmeter: Extracting Indexable
//! Low-level System Signatures by Counting Kernel Function Calls"*
//! (Marian, Lee, Weatherspoon, Sagar — MIDDLEWARE 2012), built from
//! scratch in Rust, including every substrate the paper depends on:
//!
//! * [`kernel_sim`] — a deterministic monolithic-kernel simulator (3815
//!   instrumented functions, stochastic call graph, per-CPU state,
//!   loadable modules, timer interrupts),
//! * [`trace`] — the two instrumentation systems: Fmeter's per-CPU
//!   counter pages and an Ftrace-style ring-buffer function tracer,
//! * [`workloads`] — lmbench micro-benchmarks and the paper's macro
//!   workloads (kcompile, scp, dbench, apachebench, netperf),
//! * [`ir`] — the vector space model: tf-idf, sparse vectors, distances,
//!   inverted-index search,
//! * [`ml`] — K-means, agglomerative hierarchical clustering, an SMO
//!   SVM, the paper's K-fold cross-validation protocol, and metrics,
//! * [`core`] — the assembled system: tracer installation, the logging
//!   daemon, and the labelled signature database.
//!
//! # Quickstart
//!
//! ```
//! use fmeter::core::{Fmeter, SignatureDb};
//! use fmeter::kernel_sim::{CpuId, Kernel, KernelConfig, Nanos};
//! use fmeter::workloads::{Dbench, Workload};
//!
//! // Boot a machine, install Fmeter, log signatures of a workload.
//! let mut kernel = Kernel::new(KernelConfig::default())?;
//! let fmeter = Fmeter::install(&mut kernel);
//! let mut logger = fmeter.logger(Nanos::from_millis(5), kernel.now());
//! let raw = logger.collect(&mut kernel, &mut Dbench::new(7), &[CpuId(0)], 5, Some("dbench"))?;
//!
//! // Embed them in the vector space model and search by similarity.
//! let db = SignatureDb::build(&raw)?;
//! let hits = db.search(&raw[0].to_term_counts(), 3)?;
//! assert_eq!(hits.len(), 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub use fmeter_core as core;
pub use fmeter_ir as ir;
pub use fmeter_kernel_sim as kernel_sim;
pub use fmeter_ml as ml;
pub use fmeter_trace as trace;
pub use fmeter_workloads as workloads;
