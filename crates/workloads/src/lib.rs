//! Workload generators driving the simulated kernel.
//!
//! Two families, matching the paper's evaluation:
//!
//! * [`lmbench`] — the 23 micro-benchmark latency tests of Table 1, each
//!   mapped to its kernel operation sequence,
//! * macro workloads ([`KCompile`], [`Scp`], [`Dbench`], [`ApacheBench`],
//!   [`NetperfReceive`]) — the §4.2 signature workloads plus the Table 2/3
//!   throughput benchmarks.
//!
//! All workloads implement [`Workload`]: a `step` is one natural unit
//! (one compiled translation unit, one transferred chunk, one HTTP
//! request, one received packet batch) issuing kernel operations and
//! spending un-instrumented user time, just as the real programs would.
//!
//! Around the two paper families the crate owns the *composition*
//! machinery streaming scenarios need: [`OpMix`] (weighted operation
//! blends), [`Background`]/[`WithBackground`] (drifting daemon noise
//! under a foreground workload), and [`RollingMix`] (seeded phase
//! rotation through the macro workloads — what the streaming-daemon
//! example classifies online). In the data flow of
//! `docs/ARCHITECTURE.md` this crate is the stimulus: it drives
//! `fmeter-kernel-sim` while the tracers count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lmbench;
mod macros;
mod mix;
mod noise;
mod streaming;
mod workload;

pub use lmbench::{LatencyStats, LmbenchTest};
pub use macros::{ApacheBench, Dbench, KCompile, NetperfReceive, Scp};
pub use mix::OpMix;
pub use noise::{Background, WithBackground};
pub use streaming::RollingMix;
pub use workload::{StepStats, Workload};
