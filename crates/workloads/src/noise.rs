//! Background system activity and workload composition.
//!
//! A real monitored machine never runs a workload in perfect isolation:
//! cron, syslog, the page-cache flusher, shell sessions, and the logging
//! daemon itself (paper §5's "measurement interference") all contribute
//! kernel calls to every interval. [`Background`] models that ambient
//! activity and [`WithBackground`] blends it into a primary workload with
//! a slowly drifting intensity — which is what gives same-class
//! signatures their natural within-class variance.

use fmeter_kernel_sim::{CpuId, Kernel, KernelError, KernelOp, Nanos};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{OpMix, StepStats, Workload};

/// Ambient system activity: periodic writeback, cron-style forks, syslog
/// writes, shell polling, time queries.
#[derive(Debug)]
pub struct Background {
    rng: SmallRng,
    mix: OpMix,
}

impl Background {
    /// Creates the background generator.
    pub fn new(seed: u64) -> Self {
        Background {
            rng: SmallRng::seed_from_u64(seed),
            mix: OpMix::new(vec![
                (KernelOp::Gettimeofday, 20.0),
                (KernelOp::Stat { components: 3 }, 10.0),
                (KernelOp::Open { components: 3 }, 6.0),
                (KernelOp::Read { bytes: 2048 }, 8.0),
                (KernelOp::Close, 6.0),
                (KernelOp::Write { bytes: 512 }, 5.0), // syslog append
                (KernelOp::UnixSend { bytes: 256 }, 4.0), // syslog socket
                (
                    KernelOp::Select {
                        nfds: 4,
                        tcp: false,
                    },
                    6.0,
                ),
                (KernelOp::ContextSwitch, 8.0),
                (KernelOp::SyscallNull, 6.0),
                (KernelOp::Fsync, 1.0), // pdflush-style writeback
                (KernelOp::BlockIrq, 2.0),
                (KernelOp::Fork { pages: 16 }, 0.6), // cron job
                (KernelOp::Execve { pages: 24 }, 0.6),
                (KernelOp::Exit { pages: 24 }, 0.6),
                (KernelOp::PageFault { major: false }, 8.0),
            ]),
        }
    }
}

impl Workload for Background {
    fn name(&self) -> &str {
        "background"
    }

    fn step(&mut self, kernel: &mut Kernel, cpu: CpuId) -> Result<StepStats, KernelError> {
        let mut stats = StepStats::default();
        let ops = self.rng.random_range(2..=5);
        for _ in 0..ops {
            let op = self.mix.sample(&mut self.rng);
            stats.absorb(kernel.run_op(cpu, op)?);
        }
        let user = Nanos::from_micros(self.rng.random_range(20..=120));
        stats.absorb(kernel.run_user_time(cpu, user)?);
        stats.user_time += user;
        Ok(stats)
    }
}

/// A primary workload blended with drifting background activity.
///
/// Each step runs the background instead of the primary with probability
/// `fraction`; the fraction is re-drawn from `[lo, hi]` every few dozen
/// steps, modelling daemons waking and sleeping. The workload keeps the
/// *primary's* name — background is contamination, not a class.
#[derive(Debug)]
pub struct WithBackground<W> {
    primary: W,
    background: Background,
    rng: SmallRng,
    lo: f32,
    hi: f32,
    fraction: f32,
    steps_left_in_phase: u32,
}

impl<W: Workload> WithBackground<W> {
    /// Wraps `primary`, drawing the background fraction from `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= lo <= hi < 1`.
    pub fn new(primary: W, seed: u64, lo: f32, hi: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&lo) && lo <= hi && hi < 1.0,
            "bad fraction range"
        );
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xba5e);
        let fraction = lo + (hi - lo) * rng.random::<f32>();
        WithBackground {
            primary,
            background: Background::new(seed ^ 0xb9),
            rng,
            lo,
            hi,
            fraction,
            steps_left_in_phase: 600,
        }
    }

    /// The current background fraction (diagnostics).
    pub fn fraction(&self) -> f32 {
        self.fraction
    }

    /// The wrapped primary workload.
    pub fn primary(&self) -> &W {
        &self.primary
    }
}

impl<W: Workload> Workload for WithBackground<W> {
    fn name(&self) -> &str {
        self.primary.name()
    }

    fn step(&mut self, kernel: &mut Kernel, cpu: CpuId) -> Result<StepStats, KernelError> {
        if self.steps_left_in_phase == 0 {
            // Occasionally the ambient activity spikes (cron bursts, log
            // rotation, writeback storms): intervals logged during such a
            // phase look background-dominated whatever the workload is —
            // these are the signatures clustering tends to misplace.
            self.fraction = if self.rng.random::<f32>() < 0.06 {
                0.80 + 0.15 * self.rng.random::<f32>()
            } else {
                self.lo + (self.hi - self.lo) * self.rng.random::<f32>()
            };
            // Phases must outlive the daemon's logging interval, or the
            // drift averages out within every signature.
            self.steps_left_in_phase = self.rng.random_range(300..=2_000);
        }
        self.steps_left_in_phase -= 1;
        if self.rng.random::<f32>() < self.fraction {
            self.background.step(kernel, cpu)
        } else {
            self.primary.step(kernel, cpu)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dbench;
    use fmeter_kernel_sim::KernelConfig;

    fn kernel() -> Kernel {
        Kernel::new(KernelConfig {
            num_cpus: 2,
            seed: 3,
            timer_hz: 1000,
            image_seed: 0x2628,
        })
        .unwrap()
    }

    #[test]
    fn background_steps_produce_activity() {
        let mut k = kernel();
        let mut bg = Background::new(1);
        let stats = bg.run_steps(&mut k, &[CpuId(0)], 20).unwrap();
        assert!(stats.kernel_calls > 0);
        assert!(stats.user_time > Nanos::ZERO);
        assert_eq!(bg.name(), "background");
    }

    #[test]
    fn wrapper_keeps_primary_name() {
        let w = WithBackground::new(Dbench::new(1), 2, 0.05, 0.3);
        assert_eq!(w.name(), "dbench");
        assert!(w.fraction() >= 0.05 && w.fraction() < 0.3);
    }

    #[test]
    fn fraction_drifts_over_phases() {
        let mut k = kernel();
        let mut w = WithBackground::new(Dbench::new(1), 7, 0.05, 0.35);
        let first = w.fraction();
        let mut changed = false;
        // Phases last 300-2000 steps (plus the 600-step initial phase),
        // so a few thousand steps must cross at least one boundary.
        for _ in 0..4_000 {
            w.step(&mut k, CpuId(0)).unwrap();
            if (w.fraction() - first).abs() > 1e-6 {
                changed = true;
                break;
            }
        }
        assert!(changed, "fraction should re-draw across phases");
    }

    #[test]
    #[should_panic(expected = "bad fraction range")]
    fn bad_range_panics() {
        let _ = WithBackground::new(Dbench::new(1), 1, 0.5, 0.4);
    }
}
