use fmeter_kernel_sim::KernelOp;
use rand::rngs::SmallRng;
use rand::Rng;

/// A weighted distribution over kernel operations.
///
/// Macro workloads are, to first order, characteristic *mixes* of kernel
/// operations — that is precisely why their tf-idf signatures separate.
/// `OpMix` samples operations proportionally to weight.
///
/// # Examples
///
/// ```
/// use fmeter_kernel_sim::KernelOp;
/// use fmeter_workloads::OpMix;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mix = OpMix::new(vec![
///     (KernelOp::Read { bytes: 4096 }, 3.0),
///     (KernelOp::Write { bytes: 4096 }, 1.0),
/// ]);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let op = mix.sample(&mut rng); // reads 3x as often as writes
/// assert!(matches!(op, KernelOp::Read { .. } | KernelOp::Write { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct OpMix {
    entries: Vec<(KernelOp, f64)>,
    total_weight: f64,
}

impl OpMix {
    /// Builds a mix from `(op, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty or any weight is non-positive.
    pub fn new(entries: Vec<(KernelOp, f64)>) -> Self {
        assert!(
            !entries.is_empty(),
            "an operation mix needs at least one entry"
        );
        assert!(
            entries.iter().all(|&(_, w)| w > 0.0),
            "operation weights must be positive"
        );
        let total_weight = entries.iter().map(|&(_, w)| w).sum();
        OpMix {
            entries,
            total_weight,
        }
    }

    /// Number of distinct operations in the mix.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the mix is empty (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Samples one operation proportionally to weight.
    pub fn sample(&self, rng: &mut SmallRng) -> KernelOp {
        let mut roll = rng.random::<f64>() * self.total_weight;
        for &(op, w) in &self.entries {
            if roll < w {
                return op;
            }
            roll -= w;
        }
        self.entries.last().expect("mix is non-empty").0
    }

    /// The entries and weights.
    pub fn entries(&self) -> &[(KernelOp, f64)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sampling_respects_weights() {
        let mix = OpMix::new(vec![(KernelOp::SyscallNull, 9.0), (KernelOp::Fstat, 1.0)]);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut nulls = 0;
        for _ in 0..10_000 {
            if matches!(mix.sample(&mut rng), KernelOp::SyscallNull) {
                nulls += 1;
            }
        }
        // Expect ~9000; allow generous slack.
        assert!((8500..=9500).contains(&nulls), "got {nulls}");
    }

    #[test]
    fn single_entry_mix_always_returns_it() {
        let mix = OpMix::new(vec![(KernelOp::Close, 1.0)]);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..10 {
            assert!(matches!(mix.sample(&mut rng), KernelOp::Close));
        }
        assert_eq!(mix.len(), 1);
        assert!(!mix.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn empty_mix_panics() {
        let _ = OpMix::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_weight_panics() {
        let _ = OpMix::new(vec![(KernelOp::Close, 0.0)]);
    }
}
