use fmeter_kernel_sim::{CpuId, ExecStats, Kernel, KernelError, Nanos};
use serde::{Deserialize, Serialize};

/// Statistics for one workload step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StepStats {
    /// Instrumented kernel calls performed by the step.
    pub kernel_calls: u64,
    /// Time the step spent inside the kernel (including tracer overhead).
    pub sys_time: Nanos,
    /// Un-instrumented user-mode time the step spent.
    pub user_time: Nanos,
}

impl StepStats {
    /// Total (user + sys) time of the step.
    pub fn total_time(&self) -> Nanos {
        self.sys_time + self.user_time
    }

    /// Merges kernel [`ExecStats`] into this step.
    pub fn absorb(&mut self, stats: ExecStats) {
        self.kernel_calls += stats.calls;
        self.sys_time += stats.time;
    }
}

/// A workload that drives the simulated kernel step by step.
///
/// A *step* is the workload's natural unit of progress: one compiled file
/// for `kcompile`, one HTTP request for `apachebench`, one transferred
/// chunk for `scp`, one client transaction for `dbench`, one interrupt
/// batch for `netperf`. Signature collection samples whatever steps
/// happen to fall inside each logging interval — the same way the paper's
/// daemon samples whatever the machine was doing.
pub trait Workload {
    /// Stable name (used as the class label in the learning experiments).
    fn name(&self) -> &str;

    /// Executes one step on `cpu`.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (invalid CPU, missing module, ...).
    fn step(&mut self, kernel: &mut Kernel, cpu: CpuId) -> Result<StepStats, KernelError>;

    /// Runs `steps` steps, spreading them round-robin over `cpus` CPUs.
    ///
    /// # Errors
    ///
    /// Propagates the first step error.
    fn run_steps(
        &mut self,
        kernel: &mut Kernel,
        cpus: &[CpuId],
        steps: usize,
    ) -> Result<StepStats, KernelError> {
        let mut total = StepStats::default();
        for i in 0..steps {
            let cpu = cpus[i % cpus.len().max(1)];
            let s = self.step(kernel, cpu)?;
            total.kernel_calls += s.kernel_calls;
            total.sys_time += s.sys_time;
            total.user_time += s.user_time;
        }
        Ok(total)
    }
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn step(&mut self, kernel: &mut Kernel, cpu: CpuId) -> Result<StepStats, KernelError> {
        (**self).step(kernel, cpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_stats_accumulate() {
        let mut s = StepStats::default();
        s.absorb(ExecStats {
            calls: 10,
            time: Nanos(100),
        });
        s.user_time += Nanos(50);
        s.absorb(ExecStats {
            calls: 5,
            time: Nanos(20),
        });
        assert_eq!(s.kernel_calls, 15);
        assert_eq!(s.sys_time, Nanos(120));
        assert_eq!(s.total_time(), Nanos(170));
    }
}
