//! Macro workloads: the signature-generating programs of the paper's
//! evaluation (§4.1 Tables 2–3, §4.2 Tables 4–5).

use fmeter_kernel_sim::{CpuId, Kernel, KernelError, KernelOp, ModuleOp, Nanos};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{OpMix, StepStats, Workload};

/// Kernel compilation (`kcompile`): `make` repeatedly forks compiler
/// processes that walk headers, fault in their working set, crunch in
/// user mode, and write object files. One step = one translation unit.
///
/// Matches the paper's Table 3 character: most wall time is user mode
/// (`cc1` itself), with a substantial syscall-heavy kernel component.
#[derive(Debug)]
pub struct KCompile {
    rng: SmallRng,
    mix: OpMix,
    /// Translation units compiled so far.
    pub files_compiled: u64,
}

impl KCompile {
    /// Creates the workload with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        KCompile {
            rng: SmallRng::seed_from_u64(seed),
            // Header walking + page cache reads dominate the syscall mix.
            mix: OpMix::new(vec![
                (KernelOp::Open { components: 4 }, 22.0),
                (KernelOp::Read { bytes: 16 * 1024 }, 30.0),
                (KernelOp::Close, 22.0),
                (KernelOp::Stat { components: 4 }, 34.0),
                (KernelOp::Fstat, 8.0),
                (KernelOp::Brk, 6.0),
                (KernelOp::Mmap { pages: 24 }, 3.0),
                (KernelOp::PageFault { major: false }, 40.0),
                (KernelOp::PageFault { major: true }, 1.0),
                (KernelOp::Write { bytes: 24 * 1024 }, 4.0),
                (KernelOp::Lseek, 4.0),
                (KernelOp::ContextSwitch, 6.0),
                (KernelOp::SignalDeliver, 0.3),
            ]),
            files_compiled: 0,
        }
    }
}

impl Workload for KCompile {
    fn name(&self) -> &str {
        "kcompile"
    }

    fn step(&mut self, kernel: &mut Kernel, cpu: CpuId) -> Result<StepStats, KernelError> {
        let mut stats = StepStats::default();
        // make forks cc1 for this translation unit.
        stats.absorb(kernel.run_op(cpu, KernelOp::Fork { pages: 48 })?);
        stats.absorb(kernel.run_op(cpu, KernelOp::Execve { pages: 96 })?);
        // Compiler activity: headers, faults, reads...
        let syscalls = self.rng.random_range(60..=100);
        for _ in 0..syscalls {
            let op = self.mix.sample(&mut self.rng);
            stats.absorb(kernel.run_op(cpu, op)?);
        }
        // cc1 crunches in user mode: the dominant cost, invisible to the
        // tracer (Table 3's `user` row is configuration-independent).
        let user = Nanos::from_micros(self.rng.random_range(1_000..=1_700));
        stats.absorb(kernel.run_user_time(cpu, user)?);
        stats.user_time += user;
        stats.absorb(kernel.run_op(cpu, KernelOp::Exit { pages: 96 })?);
        stats.absorb(kernel.run_op(cpu, KernelOp::Wait)?);
        self.files_compiled += 1;
        Ok(stats)
    }
}

/// Secure copy (`scp`) of files over the network: read from the page
/// cache, encrypt in user mode, push through TCP.
///
/// Like a real `scp -r`, the workload alternates between *bulk* phases
/// (one big file, 64 KiB chunks — transfer-dominated) and *small-file*
/// phases (an open/stat/read/send/close round trip per file — metadata-
/// heavy). Phases persist across many logging intervals, which is where
/// the within-class spread of scp signatures comes from.
#[derive(Debug)]
pub struct Scp {
    rng: SmallRng,
    chunks_in_file: u32,
    chunks_done: u32,
    bulk_mode: bool,
    steps_left_in_mode: u32,
    /// Total bytes transferred so far.
    pub bytes_sent: u64,
}

impl Scp {
    /// Creates the workload with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Scp {
            rng: SmallRng::seed_from_u64(seed),
            chunks_in_file: 160,
            chunks_done: 0,
            bulk_mode: true,
            steps_left_in_mode: 700,
            bytes_sent: 0,
        }
    }

    fn maybe_switch_mode(&mut self) {
        if self.steps_left_in_mode == 0 {
            self.bulk_mode = self.rng.random::<f32>() < 0.6;
            self.steps_left_in_mode = self.rng.random_range(400..=1_600);
        }
        self.steps_left_in_mode -= 1;
    }
}

impl Workload for Scp {
    fn name(&self) -> &str {
        "scp"
    }

    fn step(&mut self, kernel: &mut Kernel, cpu: CpuId) -> Result<StepStats, KernelError> {
        self.maybe_switch_mode();
        let mut stats = StepStats::default();
        if self.bulk_mode {
            const CHUNK: u32 = 64 * 1024;
            if self.chunks_done == 0 {
                // New file: open it, stat it.
                stats.absorb(kernel.run_op(cpu, KernelOp::Open { components: 3 })?);
                stats.absorb(kernel.run_op(cpu, KernelOp::Fstat)?);
            }
            stats.absorb(kernel.run_op(cpu, KernelOp::Read { bytes: CHUNK })?);
            // ssh encrypts the chunk in user space.
            let user = Nanos::from_micros(self.rng.random_range(180..=260));
            stats.absorb(kernel.run_user_time(cpu, user)?);
            stats.user_time += user;
            stats.absorb(kernel.run_op(cpu, KernelOp::TcpSend { bytes: CHUNK })?);
            // ACK clocking: the receive softirq processes returning ACKs.
            stats.absorb(kernel.run_op(cpu, KernelOp::SoftirqNetRx { packets: 6 })?);
            if self.rng.random::<f32>() < 0.2 {
                stats.absorb(kernel.run_op(cpu, KernelOp::Select { nfds: 3, tcp: true })?);
            }
            self.bytes_sent += CHUNK as u64;
            self.chunks_done += 1;
            if self.chunks_done >= self.chunks_in_file {
                stats.absorb(kernel.run_op(cpu, KernelOp::Close)?);
                self.chunks_done = 0;
            }
        } else {
            // Small-file phase: a whole file per step.
            const SMALL: u32 = 8 * 1024;
            stats.absorb(kernel.run_op(cpu, KernelOp::Stat { components: 4 })?);
            stats.absorb(kernel.run_op(cpu, KernelOp::Open { components: 4 })?);
            stats.absorb(kernel.run_op(cpu, KernelOp::Fstat)?);
            stats.absorb(kernel.run_op(cpu, KernelOp::Read { bytes: SMALL })?);
            let user = Nanos::from_micros(self.rng.random_range(30..=60));
            stats.absorb(kernel.run_user_time(cpu, user)?);
            stats.user_time += user;
            stats.absorb(kernel.run_op(cpu, KernelOp::TcpSend { bytes: SMALL })?);
            stats.absorb(kernel.run_op(cpu, KernelOp::SoftirqNetRx { packets: 2 })?);
            stats.absorb(kernel.run_op(cpu, KernelOp::Close)?);
            self.bytes_sent += SMALL as u64;
        }
        Ok(stats)
    }
}

/// The `dbench` filesystem throughput benchmark: a stream of NetBench-
/// style file transactions. One step = one client transaction group.
///
/// Real dbench loadfiles alternate *data* sections (big reads/writes)
/// with *metadata* sections (create/unlink/stat/rename churn); the
/// workload models both as persistent phases.
#[derive(Debug)]
pub struct Dbench {
    rng: SmallRng,
    data_mix: OpMix,
    meta_mix: OpMix,
    data_mode: bool,
    steps_left_in_mode: u32,
    /// Transactions completed.
    pub transactions: u64,
}

impl Dbench {
    /// Creates the workload with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Dbench {
            rng: SmallRng::seed_from_u64(seed),
            data_mix: OpMix::new(vec![
                (KernelOp::Write { bytes: 64 * 1024 }, 34.0),
                (KernelOp::Read { bytes: 64 * 1024 }, 30.0),
                (KernelOp::Open { components: 3 }, 8.0),
                (KernelOp::Close, 8.0),
                (KernelOp::Stat { components: 3 }, 4.0),
                (KernelOp::FileCreate, 3.0),
                (KernelOp::Lseek, 8.0),
                (KernelOp::Fsync, 1.0),
                (KernelOp::BlockIrq, 9.0),
            ]),
            meta_mix: OpMix::new(vec![
                (KernelOp::FileCreate, 16.0),
                (KernelOp::Unlink, 14.0),
                (KernelOp::Stat { components: 3 }, 20.0),
                (KernelOp::Open { components: 3 }, 12.0),
                (KernelOp::Close, 12.0),
                (KernelOp::Mkdir, 4.0),
                (KernelOp::Rename, 6.0),
                (KernelOp::ReadDir { entries: 64 }, 9.0),
                (KernelOp::Write { bytes: 8 * 1024 }, 6.0),
                (KernelOp::Fsync, 2.0),
                (KernelOp::BlockIrq, 5.0),
            ]),
            data_mode: true,
            steps_left_in_mode: 800,
            transactions: 0,
        }
    }
}

impl Workload for Dbench {
    fn name(&self) -> &str {
        "dbench"
    }

    fn step(&mut self, kernel: &mut Kernel, cpu: CpuId) -> Result<StepStats, KernelError> {
        if self.steps_left_in_mode == 0 {
            self.data_mode = self.rng.random::<f32>() < 0.65;
            self.steps_left_in_mode = self.rng.random_range(400..=1_600);
        }
        self.steps_left_in_mode -= 1;
        let mut stats = StepStats::default();
        let ops = self.rng.random_range(10..=18);
        for _ in 0..ops {
            let op = if self.data_mode {
                self.data_mix.sample(&mut self.rng)
            } else {
                self.meta_mix.sample(&mut self.rng)
            };
            stats.absorb(kernel.run_op(cpu, op)?);
        }
        // dbench barely computes: tiny user component.
        let user = Nanos::from_micros(self.rng.random_range(5..=15));
        stats.absorb(kernel.run_user_time(cpu, user)?);
        stats.user_time += user;
        self.transactions += 1;
        Ok(stats)
    }
}

/// The `apachebench` HTTP macro-benchmark of Table 2: 512 concurrent
/// closed-loop connections against httpd serving one 1400-byte file.
/// One step = one HTTP request served.
#[derive(Debug)]
pub struct ApacheBench {
    rng: SmallRng,
    /// Requests served.
    pub requests: u64,
}

impl ApacheBench {
    /// Creates the workload with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        ApacheBench {
            rng: SmallRng::seed_from_u64(seed),
            requests: 0,
        }
    }
}

impl Workload for ApacheBench {
    fn name(&self) -> &str {
        "apachebench"
    }

    fn step(&mut self, kernel: &mut Kernel, cpu: CpuId) -> Result<StepStats, KernelError> {
        let mut stats = StepStats::default();
        // Client connect arrives (loopback: softirq delivers SYN/request).
        stats.absorb(kernel.run_op(cpu, KernelOp::SoftirqNetRx { packets: 2 })?);
        stats.absorb(kernel.run_op(cpu, KernelOp::Accept)?);
        stats.absorb(kernel.run_op(cpu, KernelOp::TcpRecv { bytes: 380 })?);
        // httpd parses the request in user mode.
        let user = Nanos::from_micros(self.rng.random_range(18..=30));
        stats.absorb(kernel.run_user_time(cpu, user)?);
        stats.user_time += user;
        // Serve the 1400-byte file.
        stats.absorb(kernel.run_op(cpu, KernelOp::Stat { components: 3 })?);
        stats.absorb(kernel.run_op(cpu, KernelOp::Open { components: 3 })?);
        stats.absorb(kernel.run_op(cpu, KernelOp::Fstat)?);
        stats.absorb(kernel.run_op(cpu, KernelOp::Sendfile { bytes: 1400 })?);
        stats.absorb(kernel.run_op(cpu, KernelOp::Close)?);
        // Connection teardown + poll loop bookkeeping.
        stats.absorb(kernel.run_op(cpu, KernelOp::TcpSend { bytes: 60 })?);
        // ab holds 512 concurrent connections: the event loop scans a
        // large fd set every request.
        stats.absorb(kernel.run_op(
            cpu,
            KernelOp::Select {
                nfds: 48,
                tcp: true,
            },
        )?);
        if self.rng.random::<f32>() < 0.3 {
            stats.absorb(kernel.run_op(cpu, KernelOp::ContextSwitch)?);
        }
        self.requests += 1;
        Ok(stats)
    }
}

/// The Netperf TCP stream *receiver* of the Table 5 experiment: the
/// instrumented machine receives a 10 Gbps stream through a myri10ge
/// driver variant. One step = one interrupt batch of packets.
///
/// The driver module must be loaded before stepping (use
/// [`fmeter_kernel_sim::modules`]); the driver's own functions are never
/// traced — its behaviour reaches signatures only through the core-kernel
/// functions it calls, which is the entire point of the experiment.
#[derive(Debug)]
pub struct NetperfReceive {
    rng: SmallRng,
    module: String,
    batch: u32,
    /// Packets received so far.
    pub packets: u64,
}

impl NetperfReceive {
    /// Creates the workload; `module` names the loaded NIC driver.
    pub fn new(seed: u64, module: impl Into<String>) -> Self {
        NetperfReceive {
            rng: SmallRng::seed_from_u64(seed),
            module: module.into(),
            batch: 32,
            packets: 0,
        }
    }

    /// Overrides the per-interrupt packet batch size (default 32).
    pub fn batch(mut self, batch: u32) -> Self {
        self.batch = batch.max(1);
        self
    }
}

impl Workload for NetperfReceive {
    fn name(&self) -> &str {
        "netperf"
    }

    fn step(&mut self, kernel: &mut Kernel, cpu: CpuId) -> Result<StepStats, KernelError> {
        let mut stats = StepStats::default();
        let batch = self.batch + self.rng.random_range(0..=8u32);
        // NIC interrupt fires; driver pulls packets and feeds the stack.
        stats.absorb(kernel.run_module_op(cpu, &self.module, ModuleOp::NicInterrupt, 1)?);
        stats.absorb(kernel.run_module_op(cpu, &self.module, ModuleOp::NicReceive, batch)?);
        // netperf's recv loop drains the socket.
        stats.absorb(kernel.run_op(
            cpu,
            KernelOp::TcpRecv {
                bytes: batch * 1448,
            },
        )?);
        // ACK transmissions go back out through the driver.
        let acks = batch.div_ceil(4);
        stats.absorb(kernel.run_module_op(cpu, &self.module, ModuleOp::NicTransmit, acks)?);
        self.packets += batch as u64;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmeter_kernel_sim::{modules, KernelConfig};

    fn kernel() -> Kernel {
        Kernel::new(KernelConfig {
            num_cpus: 4,
            seed: 9,
            timer_hz: 1000,
            image_seed: 0x2628,
        })
        .unwrap()
    }

    #[test]
    fn kcompile_is_user_dominated() {
        let mut k = kernel();
        let mut w = KCompile::new(1);
        let total = w.run_steps(&mut k, &[CpuId(0), CpuId(1)], 20).unwrap();
        assert_eq!(w.files_compiled, 20);
        assert!(total.user_time > total.sys_time, "cc1 should dominate");
        assert!(total.kernel_calls > 1000);
    }

    #[test]
    fn dbench_is_sys_dominated() {
        let mut k = kernel();
        let mut w = Dbench::new(2);
        let total = w.run_steps(&mut k, &[CpuId(0)], 50).unwrap();
        assert!(
            total.sys_time > total.user_time,
            "dbench lives in the kernel"
        );
        assert_eq!(w.transactions, 50);
    }

    #[test]
    fn scp_tracks_bytes() {
        let mut k = kernel();
        let mut w = Scp::new(3);
        w.run_steps(&mut k, &[CpuId(0)], 10).unwrap();
        assert_eq!(w.bytes_sent, 10 * 64 * 1024);
    }

    #[test]
    fn apachebench_counts_requests() {
        let mut k = kernel();
        let mut w = ApacheBench::new(4);
        let total = w
            .run_steps(&mut k, &[CpuId(0), CpuId(1), CpuId(2)], 30)
            .unwrap();
        assert_eq!(w.requests, 30);
        assert!(
            total.kernel_calls > 30 * 50,
            "each request is syscall-heavy"
        );
    }

    #[test]
    fn netperf_requires_module() {
        let mut k = kernel();
        let mut w = NetperfReceive::new(5, "myri10ge");
        assert!(w.step(&mut k, CpuId(0)).is_err(), "no module loaded yet");
        k.load_module(modules::myri10ge_v151()).unwrap();
        let stats = w.step(&mut k, CpuId(0)).unwrap();
        assert!(stats.kernel_calls > 0);
        assert!(w.packets >= 32);
    }

    #[test]
    fn workload_names_are_class_labels() {
        assert_eq!(KCompile::new(0).name(), "kcompile");
        assert_eq!(Scp::new(0).name(), "scp");
        assert_eq!(Dbench::new(0).name(), "dbench");
        assert_eq!(ApacheBench::new(0).name(), "apachebench");
        assert_eq!(NetperfReceive::new(0, "m").name(), "netperf");
    }

    #[test]
    fn same_seed_same_behaviour() {
        let mut k1 = kernel();
        let mut k2 = kernel();
        let mut w1 = Dbench::new(42);
        let mut w2 = Dbench::new(42);
        let s1 = w1.run_steps(&mut k1, &[CpuId(0)], 10).unwrap();
        let s2 = w2.run_steps(&mut k2, &[CpuId(0)], 10).unwrap();
        assert_eq!(s1, s2);
    }
}
