//! The lmbench micro-benchmark suite (Table 1).
//!
//! Each [`LmbenchTest`] variant is one row of the paper's Table 1. A test
//! iteration issues the kernel-operation sequence the real lmbench test
//! exercises in its busy-loop; the reported latency is simulated time per
//! iteration, averaged with the standard error of the mean — the same
//! statistics the paper's table reports.

use fmeter_kernel_sim::{CpuId, ExecStats, Kernel, KernelError, KernelOp};
use serde::{Deserialize, Serialize};

/// One lmbench latency test — one row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LmbenchTest {
    /// `AF_UNIX sock stream latency`: 1-byte ping-pong over a Unix socket.
    AfUnixSockStream,
    /// `Fcntl lock latency`: acquire+release a POSIX lock.
    FcntlLock,
    /// `Memory map linux.tar.bz2`: map a large file and touch its pages.
    MemoryMap,
    /// `Pagefaults on linux.tar.bz2`: fault mapped file pages.
    Pagefault,
    /// `Pipe latency`: 1-byte ping-pong through pipes (two switches).
    Pipe,
    /// `Process fork+/bin/sh -c`: fork, exec /bin/sh, which execs the
    /// target, then exit+reap.
    ForkSh,
    /// `Process fork+execve`: fork then exec a trivial program.
    ForkExecve,
    /// `Process fork+exit`: fork a child that exits immediately.
    ForkExit,
    /// `Protection fault`: write to a read-only page.
    ProtectionFault,
    /// `Select on 10 fd's` (pipes).
    Select10,
    /// `Select on 10 tcp fd's`.
    Select10Tcp,
    /// `Select on 100 fd's` (pipes).
    Select100,
    /// `Select on 100 tcp fd's`.
    Select100Tcp,
    /// `Semaphore latency`: System-V semop round trip.
    Semaphore,
    /// `Signal handler installation`: sigaction().
    SignalInstall,
    /// `Signal handler overhead`: deliver + run a handler.
    SignalOverhead,
    /// `Simple fstat`.
    SimpleFstat,
    /// `Simple open/close`.
    SimpleOpenClose,
    /// `Simple read`: 1 byte from /dev/zero.
    SimpleRead,
    /// `Simple stat`.
    SimpleStat,
    /// `Simple syscall`: getppid().
    SimpleSyscall,
    /// `Simple write`: 1 byte to /dev/null.
    SimpleWrite,
    /// `UNIX connection cost`: socket + connect + accept + teardown.
    UnixConnection,
}

/// Latency statistics for one test under one kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Mean latency per iteration, microseconds.
    pub mean_us: f64,
    /// Standard error of the mean, microseconds.
    pub sem_us: f64,
    /// Mean instrumented kernel calls per iteration.
    pub mean_calls: f64,
    /// Iterations measured.
    pub iterations: usize,
}

impl LmbenchTest {
    /// All 23 tests in the paper's Table 1 row order.
    pub const ALL: [LmbenchTest; 23] = [
        LmbenchTest::AfUnixSockStream,
        LmbenchTest::FcntlLock,
        LmbenchTest::MemoryMap,
        LmbenchTest::Pagefault,
        LmbenchTest::Pipe,
        LmbenchTest::ForkSh,
        LmbenchTest::ForkExecve,
        LmbenchTest::ForkExit,
        LmbenchTest::ProtectionFault,
        LmbenchTest::Select10,
        LmbenchTest::Select10Tcp,
        LmbenchTest::Select100,
        LmbenchTest::Select100Tcp,
        LmbenchTest::Semaphore,
        LmbenchTest::SignalInstall,
        LmbenchTest::SignalOverhead,
        LmbenchTest::SimpleFstat,
        LmbenchTest::SimpleOpenClose,
        LmbenchTest::SimpleRead,
        LmbenchTest::SimpleStat,
        LmbenchTest::SimpleSyscall,
        LmbenchTest::SimpleWrite,
        LmbenchTest::UnixConnection,
    ];

    /// The row label exactly as printed in Table 1.
    pub fn label(&self) -> &'static str {
        match self {
            LmbenchTest::AfUnixSockStream => "AF_UNIX sock stream latency",
            LmbenchTest::FcntlLock => "Fcntl lock latency",
            LmbenchTest::MemoryMap => "Memory map linux.tar.bz2",
            LmbenchTest::Pagefault => "Pagefaults on linux.tar.bz2",
            LmbenchTest::Pipe => "Pipe latency",
            LmbenchTest::ForkSh => "Process fork+/bin/sh -c",
            LmbenchTest::ForkExecve => "Process fork+execve",
            LmbenchTest::ForkExit => "Process fork+exit",
            LmbenchTest::ProtectionFault => "Protection fault",
            LmbenchTest::Select10 => "Select on 10 fd's",
            LmbenchTest::Select10Tcp => "Select on 10 tcp fd's",
            LmbenchTest::Select100 => "Select on 100 fd's",
            LmbenchTest::Select100Tcp => "Select on 100 tcp fd's",
            LmbenchTest::Semaphore => "Semaphore latency",
            LmbenchTest::SignalInstall => "Signal handler installation",
            LmbenchTest::SignalOverhead => "Signal handler overhead",
            LmbenchTest::SimpleFstat => "Simple fstat",
            LmbenchTest::SimpleOpenClose => "Simple open/close",
            LmbenchTest::SimpleRead => "Simple read",
            LmbenchTest::SimpleStat => "Simple stat",
            LmbenchTest::SimpleSyscall => "Simple syscall",
            LmbenchTest::SimpleWrite => "Simple write",
            LmbenchTest::UnixConnection => "UNIX connection cost",
        }
    }

    /// The kernel operations one iteration of the test's busy-loop issues.
    pub fn ops(&self) -> Vec<KernelOp> {
        use KernelOp::*;
        match self {
            LmbenchTest::AfUnixSockStream => vec![
                UnixSend { bytes: 1 },
                ContextSwitch,
                UnixRecv { bytes: 1 },
                ContextSwitch,
            ],
            LmbenchTest::FcntlLock => vec![FcntlLock],
            LmbenchTest::MemoryMap => vec![Mmap { pages: 220 }, Munmap { pages: 220 }],
            LmbenchTest::Pagefault => vec![PageFault { major: false }],
            LmbenchTest::Pipe => vec![
                PipeWrite { bytes: 1 },
                ContextSwitch,
                PipeRead { bytes: 1 },
                ContextSwitch,
            ],
            LmbenchTest::ForkSh => vec![
                Fork { pages: 220 },
                Execve { pages: 120 },
                Fork { pages: 160 },
                Execve { pages: 90 },
                Exit { pages: 90 },
                Wait,
                Exit { pages: 120 },
                Wait,
            ],
            LmbenchTest::ForkExecve => vec![
                Fork { pages: 220 },
                Execve { pages: 120 },
                Exit { pages: 120 },
                Wait,
            ],
            LmbenchTest::ForkExit => vec![Fork { pages: 220 }, Exit { pages: 60 }, Wait],
            LmbenchTest::ProtectionFault => vec![ProtectionFault],
            LmbenchTest::Select10 => vec![Select {
                nfds: 10,
                tcp: false,
            }],
            LmbenchTest::Select10Tcp => vec![Select {
                nfds: 10,
                tcp: true,
            }],
            LmbenchTest::Select100 => vec![Select {
                nfds: 100,
                tcp: false,
            }],
            LmbenchTest::Select100Tcp => vec![Select {
                nfds: 100,
                tcp: true,
            }],
            // lat_sem ping-pongs between two processes: each round trip is
            // two semops and two context switches.
            LmbenchTest::Semaphore => vec![SemOp, ContextSwitch, SemOp, ContextSwitch],
            LmbenchTest::SignalInstall => vec![SignalInstall],
            LmbenchTest::SignalOverhead => vec![SignalDeliver],
            LmbenchTest::SimpleFstat => vec![Fstat],
            LmbenchTest::SimpleOpenClose => vec![Open { components: 2 }, Close],
            LmbenchTest::SimpleRead => vec![ReadZero],
            LmbenchTest::SimpleStat => vec![Stat { components: 2 }],
            LmbenchTest::SimpleSyscall => vec![SyscallNull],
            LmbenchTest::SimpleWrite => vec![WriteNull],
            LmbenchTest::UnixConnection => vec![
                UnixConnect,
                UnixSend { bytes: 16 },
                UnixRecv { bytes: 16 },
                Close,
                Close,
            ],
        }
    }

    /// Runs the test for `iterations` iterations on `cpu` and reports the
    /// mean ± SEM latency, exactly as Table 1 does.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (all ops resolve on standard images).
    pub fn run(
        &self,
        kernel: &mut Kernel,
        cpu: CpuId,
        iterations: usize,
    ) -> Result<LatencyStats, KernelError> {
        assert!(iterations > 0, "need at least one iteration");
        let mut latencies_us = Vec::with_capacity(iterations);
        let mut total_calls = 0u64;
        for _ in 0..iterations {
            let mut stats = ExecStats::default();
            for op in self.ops() {
                stats += kernel.run_op(cpu, op)?;
            }
            latencies_us.push(stats.time.as_micros_f64());
            total_calls += stats.calls;
        }
        let n = latencies_us.len() as f64;
        let mean = latencies_us.iter().sum::<f64>() / n;
        let sem = if latencies_us.len() < 2 {
            0.0
        } else {
            let var = latencies_us.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            (var / n).sqrt()
        };
        Ok(LatencyStats {
            mean_us: mean,
            sem_us: sem,
            mean_calls: total_calls as f64 / n,
            iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmeter_kernel_sim::KernelConfig;

    fn kernel() -> Kernel {
        Kernel::new(KernelConfig {
            num_cpus: 1,
            seed: 11,
            timer_hz: 0,
            image_seed: 0x2628,
        })
        .unwrap()
    }

    #[test]
    fn all_tests_run_and_report() {
        let mut k = kernel();
        for test in LmbenchTest::ALL {
            let stats = test.run(&mut k, CpuId(0), 10).unwrap();
            assert!(stats.mean_us > 0.0, "{}: zero latency", test.label());
            assert!(stats.mean_calls >= 1.0);
            assert_eq!(stats.iterations, 10);
        }
    }

    #[test]
    fn labels_match_paper_rows() {
        assert_eq!(LmbenchTest::ALL.len(), 23);
        assert_eq!(LmbenchTest::SimpleSyscall.label(), "Simple syscall");
        assert_eq!(
            LmbenchTest::AfUnixSockStream.label(),
            "AF_UNIX sock stream latency"
        );
        // Labels are unique.
        let mut labels: Vec<_> = LmbenchTest::ALL.iter().map(|t| t.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 23);
    }

    #[test]
    fn latency_ordering_is_sane() {
        // Fork tests must dwarf the simple syscall; select 100 > select 10.
        let mut k = kernel();
        let syscall = LmbenchTest::SimpleSyscall
            .run(&mut k, CpuId(0), 30)
            .unwrap();
        let fork = LmbenchTest::ForkExit.run(&mut k, CpuId(0), 10).unwrap();
        let s10 = LmbenchTest::Select10.run(&mut k, CpuId(0), 30).unwrap();
        let s100 = LmbenchTest::Select100.run(&mut k, CpuId(0), 30).unwrap();
        assert!(fork.mean_us > 50.0 * syscall.mean_us);
        assert!(s100.mean_us > 3.0 * s10.mean_us);
    }

    #[test]
    fn select_tcp_differs_from_pipe_select() {
        let mut k = kernel();
        let tcp = LmbenchTest::Select100Tcp.run(&mut k, CpuId(0), 20).unwrap();
        let pipe = LmbenchTest::Select100.run(&mut k, CpuId(0), 20).unwrap();
        // TCP poll path does strictly more work.
        assert!(tcp.mean_us > pipe.mean_us);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panics() {
        let mut k = kernel();
        let _ = LmbenchTest::SimpleSyscall.run(&mut k, CpuId(0), 0);
    }
}
