//! Rolling multi-phase workloads for streaming-ingest scenarios.
//!
//! A production machine monitored around the clock does not run one
//! workload forever: services rotate, batch jobs come and go, and the
//! ambient daemon noise drifts underneath all of them. [`RollingMix`]
//! models that: it cycles through a seeded schedule of phases, each
//! running one primary workload (blended with drifting background noise)
//! for a stretch of steps, exposing the current phase's label so a
//! logging daemon can tag the intervals it collects — the
//! insert/search/refit interleave an incremental signature database
//! ingests.

use fmeter_kernel_sim::{CpuId, Kernel, KernelError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{ApacheBench, Dbench, KCompile, Scp, StepStats, WithBackground, Workload};

/// One phase of a rolling schedule: a named workload and how long it
/// holds the machine.
struct Phase {
    workload: WithBackground<Box<dyn Workload>>,
    steps_left: u64,
}

/// A workload that rotates through primary workloads phase by phase,
/// with drifting background noise blended into every phase.
///
/// Phases are drawn from a fixed roster in seeded random order and hold
/// for a seeded random number of steps in `steps_per_phase`; the
/// workload never ends — when a phase expires the next one starts. The
/// reported [`name`](Workload::name) is always the *current* phase's
/// primary label, so interval collectors observe the label changing
/// mid-stream exactly as a re-deployed machine would.
///
/// # Examples
///
/// ```
/// use fmeter_kernel_sim::{CpuId, Kernel, KernelConfig};
/// use fmeter_workloads::{RollingMix, Workload};
///
/// let mut kernel = Kernel::new(KernelConfig::default())?;
/// let mut mix = RollingMix::standard(7, 200..=400);
/// let first = mix.name().to_string();
/// for _ in 0..2_000 {
///     mix.step(&mut kernel, CpuId(0))?;
/// }
/// // Long runs cross phase boundaries; the label follows the phase.
/// assert!(!first.is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct RollingMix {
    rng: SmallRng,
    seed: u64,
    steps_per_phase: std::ops::RangeInclusive<u64>,
    roster: Vec<&'static str>,
    current: Phase,
    phases_started: u64,
}

impl std::fmt::Debug for RollingMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RollingMix")
            .field("seed", &self.seed)
            .field("steps_per_phase", &self.steps_per_phase)
            .field("current", &self.current.workload.name())
            .field("phases_started", &self.phases_started)
            .finish()
    }
}

impl RollingMix {
    /// The standard rotation over the paper's four macro workloads
    /// (kcompile, scp, dbench, apachebench).
    pub fn standard(seed: u64, steps_per_phase: std::ops::RangeInclusive<u64>) -> Self {
        Self::new(
            seed,
            steps_per_phase,
            vec!["kcompile", "scp", "dbench", "apachebench"],
        )
    }

    /// Builds a rolling mix cycling over `roster` (any subset of the
    /// standard labels), holding each phase for a seeded random number
    /// of steps drawn from `steps_per_phase`.
    ///
    /// # Panics
    ///
    /// Panics when `roster` is empty, contains an unknown label, or
    /// `steps_per_phase` is empty or starts at zero.
    pub fn new(
        seed: u64,
        steps_per_phase: std::ops::RangeInclusive<u64>,
        roster: Vec<&'static str>,
    ) -> Self {
        assert!(!roster.is_empty(), "a rolling mix needs at least one phase");
        assert!(
            *steps_per_phase.start() > 0 && steps_per_phase.start() <= steps_per_phase.end(),
            "phase length range must be non-empty and positive"
        );
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5712ea);
        let current = Self::spawn_phase(&mut rng, seed, &roster, &steps_per_phase, 0);
        RollingMix {
            rng,
            seed,
            steps_per_phase,
            roster,
            current,
            phases_started: 1,
        }
    }

    fn spawn_phase(
        rng: &mut SmallRng,
        seed: u64,
        roster: &[&'static str],
        steps_per_phase: &std::ops::RangeInclusive<u64>,
        ordinal: u64,
    ) -> Phase {
        let label = roster[rng.random_range(0..roster.len())];
        let wseed = seed ^ (ordinal << 8) ^ 0x90b;
        let primary: Box<dyn Workload> = match label {
            "kcompile" => Box::new(KCompile::new(wseed)),
            "scp" => Box::new(Scp::new(wseed)),
            "dbench" => Box::new(Dbench::new(wseed)),
            "apachebench" => Box::new(ApacheBench::new(wseed)),
            other => panic!("unknown workload label {other:?} in rolling mix roster"),
        };
        Phase {
            workload: WithBackground::new(primary, wseed, 0.05, 0.45),
            steps_left: rng.random_range(steps_per_phase.clone()),
        }
    }

    /// Number of phases started so far (including the current one).
    pub fn phases_started(&self) -> u64 {
        self.phases_started
    }

    /// Steps remaining before the current phase rotates out.
    pub fn steps_left_in_phase(&self) -> u64 {
        self.current.steps_left
    }
}

impl Workload for RollingMix {
    /// The current phase's primary label ("kcompile", "scp", ...).
    fn name(&self) -> &str {
        self.current.workload.name()
    }

    fn step(&mut self, kernel: &mut Kernel, cpu: CpuId) -> Result<StepStats, KernelError> {
        if self.current.steps_left == 0 {
            self.current = Self::spawn_phase(
                &mut self.rng,
                self.seed,
                &self.roster,
                &self.steps_per_phase,
                self.phases_started,
            );
            self.phases_started += 1;
        }
        self.current.steps_left -= 1;
        self.current.workload.step(kernel, cpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmeter_kernel_sim::KernelConfig;

    fn kernel() -> Kernel {
        Kernel::new(KernelConfig {
            num_cpus: 2,
            seed: 11,
            timer_hz: 1000,
            image_seed: 0x2628,
        })
        .unwrap()
    }

    #[test]
    fn phases_rotate_and_labels_follow() {
        let mut k = kernel();
        let mut mix = RollingMix::standard(3, 50..=80);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2_000 {
            seen.insert(mix.name().to_string());
            mix.step(&mut k, CpuId(0)).unwrap();
        }
        assert!(mix.phases_started() > 5, "phases must rotate");
        assert!(
            seen.len() >= 2,
            "labels must change across phases: {seen:?}"
        );
        for label in &seen {
            assert!(["kcompile", "scp", "dbench", "apachebench"].contains(&label.as_str()));
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = RollingMix::standard(9, 30..=60);
        let mut b = RollingMix::standard(9, 30..=60);
        let (mut ka, mut kb) = (kernel(), kernel());
        for _ in 0..500 {
            let sa = a.step(&mut ka, CpuId(0)).unwrap();
            let sb = b.step(&mut kb, CpuId(0)).unwrap();
            assert_eq!(sa, sb);
            assert_eq!(a.name(), b.name());
        }
        assert_eq!(a.phases_started(), b.phases_started());
    }

    #[test]
    fn restricted_roster_only_runs_listed_workloads() {
        let mut k = kernel();
        let mut mix = RollingMix::new(5, 20..=30, vec!["scp", "dbench"]);
        for _ in 0..500 {
            assert!(["scp", "dbench"].contains(&mix.name()));
            mix.step(&mut k, CpuId(0)).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_roster_panics() {
        let _ = RollingMix::new(1, 10..=20, vec![]);
    }

    #[test]
    #[should_panic(expected = "unknown workload label")]
    fn unknown_label_panics() {
        let _ = RollingMix::new(1, 1..=1, vec!["nonsense"]);
    }
}
