//! Benchmarks the statistical analysis stage: K-means, hierarchical
//! clustering, and SVM training at the paper's data scale (hundreds of
//! signatures in a ~3815-dimensional space).

use criterion::{criterion_group, criterion_main, Criterion};
use fmeter_ir::{AnnGraph, SparseVec};
use fmeter_kernel_sim::NUM_KERNEL_FUNCTIONS;
use fmeter_ml::{Agglomerative, KMeans, Kernel, Label, Linkage, SnnParams, SvmTrainer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const DIM: usize = NUM_KERNEL_FUNCTIONS;

/// Two-class synthetic signature set: each class concentrates its mass
/// on a different band of the space, with shared hot dimensions.
fn dataset(n_per_class: usize, seed: u64) -> (Vec<SparseVec>, Vec<Label>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for class in 0..2usize {
        let base = class * 800;
        for _ in 0..n_per_class {
            let mut pairs = Vec::new();
            for k in 0..300 {
                let term = (base + (k * 7) % 800) as u32;
                pairs.push((term, rng.random::<f64>()));
            }
            // Shared "stop-word" band.
            for term in 3000..3040u32 {
                pairs.push((term, 0.5 + rng.random::<f64>()));
            }
            xs.push(SparseVec::from_pairs(DIM, pairs).unwrap().l2_normalized());
            ys.push(if class == 0 { 1 } else { -1 });
        }
    }
    (xs, ys)
}

fn bench_kmeans(c: &mut Criterion) {
    let (xs, _) = dataset(150, 5);
    let large = fmeter_bench::synthetic_points(1000, 5000, 128, 9);
    let ten_k = fmeter_bench::synthetic_points(10_000, 2000, 64, 12);
    let mut group = c.benchmark_group("kmeans");
    group.sample_size(10);
    group.bench_function("k3_300pts_3815d", |b| {
        b.iter(|| KMeans::new(3).seed(1).run(&xs).unwrap())
    });
    group.bench_function("fit_k4_1000pts_5000d", |b| {
        b.iter(|| KMeans::new(4).seed(1).run(&large).unwrap())
    });
    // Thread-parallel assignment (worker pool) vs the forced-sequential
    // path over the same 10k-point corpus.
    group.bench_function("sequential_10k", |b| {
        b.iter(|| {
            KMeans::new(8)
                .seed(1)
                .max_iters(20)
                .threads(1)
                .run(&ten_k)
                .unwrap()
        })
    });
    group.bench_function("parallel_10k", |b| {
        b.iter(|| KMeans::new(8).seed(1).max_iters(20).run(&ten_k).unwrap())
    });
    group.finish();

    // Warm-started recluster after streaming churn: converge cold once,
    // replace 64 points, and refit from the surviving assignment — the
    // per-maintenance-cycle cost of `SignatureDb::recluster`. The cold
    // prime mirrors the db's cold path (seeded, 3 restarts) on a corpus
    // with real cluster structure so convergence speed is meaningful.
    let warm_pts = fmeter_bench::synthetic_clustered_points(10_000, 8, 48, 24, 12);
    let cold = KMeans::new(8).seed(7).restarts(3).run(&warm_pts).unwrap();
    let mut churned = warm_pts.clone();
    let fresh = fmeter_bench::synthetic_clustered_points(64, 8, 48, 24, 13);
    let stride = churned.len() / 64;
    for (i, p) in fresh.into_iter().enumerate() {
        churned[i * stride] = p;
    }
    let mut group = c.benchmark_group("cluster");
    group.sample_size(10);
    group.bench_function("kmeans_warm_vs_cold_10k", |b| {
        b.iter(|| {
            KMeans::new(8)
                .seed(7)
                .fit_warm(&churned, &cold.assignments)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_hierarchical(c: &mut Criterion) {
    let (xs, _) = dataset(60, 6);
    let large = fmeter_bench::synthetic_points(1000, 5000, 128, 10);
    let ten_k = fmeter_bench::synthetic_points(10_000, 2000, 32, 11);
    let mut group = c.benchmark_group("hierarchical");
    group.sample_size(10);
    group.bench_function("single_linkage_120pts", |b| {
        b.iter(|| Agglomerative::new(Linkage::Single).fit(&xs).unwrap())
    });
    group.bench_function("average_linkage_120pts", |b| {
        b.iter(|| Agglomerative::new(Linkage::Average).fit(&xs).unwrap())
    });
    group.bench_function("fit_single_1000pts_5000d", |b| {
        b.iter(|| Agglomerative::new(Linkage::Single).fit(&large).unwrap())
    });
    // The O(n³) reference the NN-chain replaced, at the same 1k scale.
    group.bench_function("brute_force_1000pts_5000d", |b| {
        b.iter(|| {
            Agglomerative::new(Linkage::Single)
                .fit_brute_force(&large)
                .unwrap()
        })
    });
    // NN-chain at fleet scale: O(n²) over the condensed matrix.
    group.bench_function("nn_chain_10k", |b| {
        b.iter(|| Agglomerative::new(Linkage::Single).fit(&ten_k).unwrap())
    });
    group.finish();

    // The sub-quadratic tier at the same 10k scale, on a corpus with
    // planted class structure (50 classes) so the ANN graph's locality
    // pruning has real neighbourhoods to preserve: bulk graph
    // construction, then SNN-pruned agglomeration off its k-NN lists.
    let ann_pts = fmeter_bench::synthetic_clustered_points(10_000, 50, 12, 8, 11);
    let ann_dim = ann_pts[0].dim();
    let mut group = c.benchmark_group("ann");
    group.sample_size(10);
    group.bench_function("knn_build_10k", |b| {
        b.iter(|| AnnGraph::build(ann_dim, &ann_pts).unwrap())
    });
    group.finish();
    let mut group = c.benchmark_group("cluster");
    group.sample_size(10);
    group.bench_function("snn_agglomerative_10k", |b| {
        b.iter(|| {
            Agglomerative::new(Linkage::Single)
                .fit_snn(&ann_pts, &SnnParams::default())
                .unwrap()
        })
    });
    group.finish();
}

fn bench_svm(c: &mut Criterion) {
    let (xs, ys) = dataset(100, 7);
    let mut group = c.benchmark_group("svm");
    group.sample_size(10);
    group.bench_function("train_poly_200pts", |b| {
        b.iter(|| SvmTrainer::new().train(&xs, &ys).unwrap())
    });
    group.bench_function("train_linear_200pts", |b| {
        b.iter(|| {
            SvmTrainer::new()
                .kernel(Kernel::Linear)
                .train(&xs, &ys)
                .unwrap()
        })
    });
    let model = SvmTrainer::new().train(&xs, &ys).unwrap();
    group.bench_function("predict_one", |b| b.iter(|| model.predict(&xs[0])));
    group.finish();
}

criterion_group!(benches, bench_kmeans, bench_hierarchical, bench_svm);
criterion_main!(benches);
