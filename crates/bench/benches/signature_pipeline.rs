//! Benchmarks the signature pipeline: snapshot deltas, tf-idf fitting and
//! transformation, and inverted-index search — the operations the paper
//! claims are cheap enough to run "continuously over long periods of
//! time, in real-time".

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fmeter_ir::{Corpus, InvertedIndex, SearchScratch, SparseVec, TermCounts, TfIdfModel};
use fmeter_kernel_sim::{Nanos, NUM_KERNEL_FUNCTIONS};
use fmeter_trace::CounterSnapshot;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const DIM: usize = NUM_KERNEL_FUNCTIONS;

/// Synthetic interval counts shaped like real signatures: ~20% of
/// functions active, power-law-ish counts.
fn synthetic_counts(rng: &mut SmallRng) -> Vec<u64> {
    let mut counts = vec![0u64; DIM];
    for (i, c) in counts.iter_mut().enumerate() {
        if rng.random::<f32>() < 0.2 {
            let hot = 1.0 / (1.0 + (i % 997) as f64);
            *c = 1 + (rng.random::<f64>() * hot * 100_000.0) as u64;
        }
    }
    counts
}

fn corpus_of(n: usize, seed: u64) -> Corpus {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut corpus = Corpus::new(DIM);
    for _ in 0..n {
        corpus.push(TermCounts::from_dense(&synthetic_counts(&mut rng)));
    }
    corpus
}

fn bench_snapshot_delta(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let a = CounterSnapshot::new(synthetic_counts(&mut rng), Nanos(0));
    let mut later = a.counts().to_vec();
    for v in later.iter_mut() {
        *v += 17;
    }
    let b = CounterSnapshot::new(later, Nanos(1_000_000));
    let mut group = c.benchmark_group("daemon");
    group.throughput(Throughput::Elements(DIM as u64));
    group.bench_function("snapshot_delta_3815", |bch| bch.iter(|| a.delta(&b)));
    group.finish();
}

fn bench_tfidf(c: &mut Criterion) {
    let corpus = corpus_of(500, 2);
    let model = TfIdfModel::fit(&corpus).expect("non-empty corpus");
    let doc = corpus.doc(0).expect("doc 0 exists").clone();
    let mut group = c.benchmark_group("tfidf");
    group.sample_size(30);
    group.bench_function("fit_500_docs", |b| {
        b.iter(|| TfIdfModel::fit(&corpus).unwrap())
    });
    group.bench_function("transform_one", |b| b.iter(|| model.transform(&doc)));
    group.bench_function("transform_corpus_csr_500", |b| {
        b.iter(|| model.transform_corpus_csr(&corpus))
    });
    group.finish();
}

fn bench_index(c: &mut Criterion) {
    let corpus = corpus_of(500, 3);
    let (model, vectors) = TfIdfModel::fit_transform(&corpus).expect("non-empty corpus");
    let mut index = InvertedIndex::new(DIM);
    for v in &vectors {
        index.insert(v.clone()).expect("dimensions match");
    }
    index.optimize();
    let query: SparseVec = model.transform(corpus.doc(250).expect("doc 250 exists"));
    let mut group = c.benchmark_group("search");
    group.sample_size(30);
    group.bench_function("top10_of_500", |b| {
        b.iter(|| index.search(&query, 10).unwrap())
    });
    let mut scratch = SearchScratch::new();
    group.bench_function("top10_of_500_scratch_reuse", |b| {
        b.iter(|| index.search_with(&query, 10, &mut scratch).unwrap())
    });
    // Corpus scale: 1k docs in a 5k-dim space.
    let large = fmeter_bench::synthetic_corpus(1000, 5000, 160, 4);
    let (model, vectors) = TfIdfModel::fit_transform(&large).expect("non-empty corpus");
    let mut index = InvertedIndex::new(5000);
    for v in &vectors {
        index.insert(v.clone()).expect("dimensions match");
    }
    index.optimize();
    let query: SparseVec = model.transform(large.doc(500).expect("doc 500 exists"));
    let mut scratch = SearchScratch::new();
    group.bench_function("top10_of_1000_5000d", |b| {
        b.iter(|| index.search_with(&query, 10, &mut scratch).unwrap())
    });
    // WAND early-exit vs exhaustive scoring over a 10k-signature corpus
    // with fleet-realistic idf skew (50 behaviour classes).
    let class_corpus = fmeter_bench::synthetic_class_corpus(10_000, 50, DIM, 13);
    let (model, vectors) = TfIdfModel::fit_transform(&class_corpus).expect("non-empty corpus");
    let mut index = InvertedIndex::new(DIM);
    for v in &vectors {
        index.insert(v.clone()).expect("dimensions match");
    }
    index.optimize();
    let query: SparseVec = model.transform(class_corpus.doc(5000).expect("doc 5000 exists"));
    let mut scratch = SearchScratch::new();
    group.bench_function("top10_of_10k_exhaustive", |b| {
        b.iter(|| index.search_exhaustive(&query, 10, &mut scratch).unwrap())
    });
    group.bench_function("top10_of_10k_wand", |b| {
        b.iter(|| index.search_wand(&query, 10, &mut scratch).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_snapshot_delta, bench_tfidf, bench_index);
criterion_main!(benches);
