//! Measures the *real* per-call cost of the two instrumentation fast
//! paths — the systems claim behind Tables 1–3: an Fmeter counter bump is
//! an order of magnitude cheaper than an Ftrace ring-buffer append.
//!
//! Also benchmarks the design alternatives DESIGN.md calls out: a single
//! global atomic counter array (contended) versus Fmeter's per-CPU
//! indices, and the drain path of the ring buffer.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use fmeter_kernel_sim::{
    CountingTracer, CpuId, FunctionId, FunctionTracer, KernelImageBuilder, NullTracer,
};
use fmeter_trace::{FmeterTracer, FtraceTracer, HotSetTracer, LockFreeFtraceTracer};

fn spread(num_functions: usize) -> Vec<FunctionId> {
    (0..256)
        .map(|i| FunctionId((i * num_functions / 256) as u32))
        .collect()
}

fn bench_fast_paths(c: &mut Criterion) {
    let image = KernelImageBuilder::new().build().expect("image builds");
    let functions = spread(image.symbols.len());
    let mut group = c.benchmark_group("tracer_fast_path");
    group.throughput(Throughput::Elements(functions.len() as u64));

    let null = NullTracer;
    group.bench_function("null", |b| {
        b.iter(|| {
            for &f in &functions {
                null.on_function_call(CpuId(0), f);
            }
        })
    });

    let fmeter = FmeterTracer::with_cpus(&image.symbols, 16);
    group.bench_function("fmeter_increment", |b| {
        b.iter(|| {
            for &f in &functions {
                fmeter.on_function_call(CpuId(0), f);
            }
        })
    });

    let global = CountingTracer::new(image.symbols.len());
    group.bench_function("global_atomic_counter", |b| {
        b.iter(|| {
            for &f in &functions {
                global.on_function_call(CpuId(0), f);
            }
        })
    });

    let ftrace = FtraceTracer::new(&image.symbols, 16, 1 << 22);
    group.bench_function("ftrace_append", |b| {
        b.iter(|| {
            for &f in &functions {
                ftrace.on_function_call(CpuId(0), f);
            }
        })
    });

    // §3's "wait-free alternative" direction: lock-free queue append.
    let lockfree = LockFreeFtraceTracer::new(&image.symbols, 16, 1 << 16);
    group.bench_function("ftrace_lockfree_append", |b| {
        b.iter(|| {
            for &f in &functions {
                lockfree.on_function_call(CpuId(0), f);
            }
            // Keep the queue from saturating into the cheap drop path.
            let _ = lockfree.drain(CpuId(0));
        })
    });

    // §6's hot-set cache: increments into a tiny dense array.
    let profile: Vec<u64> = (0..image.symbols.len() as u64).map(|i| i % 256).collect();
    let hot = HotSetTracer::from_profile(&image.symbols, 16, &profile, 64);
    group.bench_function("fmeter_hotset_increment", |b| {
        b.iter(|| {
            for &f in &functions {
                hot.on_function_call(CpuId(0), f);
            }
        })
    });
    group.finish();
}

fn bench_contended(c: &mut Criterion) {
    let image = KernelImageBuilder::new().build().expect("image builds");
    let functions = Arc::new(spread(image.symbols.len()));
    let mut group = c.benchmark_group("tracer_4_threads");
    group.throughput(Throughput::Elements((4 * ROUNDS * functions.len()) as u64));
    group.sample_size(20);

    // Per-CPU counters: each thread owns its index — no cache-line fights.
    let fmeter = Arc::new(FmeterTracer::with_cpus(&image.symbols, 4));
    group.bench_function("fmeter_per_cpu", |b| {
        b.iter(|| run_threads(4, &functions, |cpu, f| fmeter.on_function_call(cpu, f)))
    });

    // One shared atomic array: every increment contends.
    let global = Arc::new(CountingTracer::new(image.symbols.len()));
    group.bench_function("global_atomic", |b| {
        b.iter(|| run_threads(4, &functions, |cpu, f| global.on_function_call(cpu, f)))
    });

    // Ring buffers: per-CPU but lock-guarded, with record encoding.
    let ftrace = Arc::new(FtraceTracer::new(&image.symbols, 4, 1 << 22));
    group.bench_function("ftrace_ring", |b| {
        b.iter(|| run_threads(4, &functions, |cpu, f| ftrace.on_function_call(cpu, f)))
    });
    group.finish();
}

/// Rounds per thread: enough work that recording dominates thread spawn.
const ROUNDS: usize = 64;

fn run_threads(
    threads: usize,
    functions: &Arc<Vec<FunctionId>>,
    record: impl Fn(CpuId, FunctionId) + Send + Sync,
) {
    std::thread::scope(|scope| {
        for t in 0..threads {
            let functions = Arc::clone(functions);
            let record = &record;
            scope.spawn(move || {
                for _ in 0..ROUNDS {
                    for &f in functions.iter() {
                        record(CpuId(t), f);
                    }
                }
            });
        }
    });
}

fn bench_drain(c: &mut Criterion) {
    let image = KernelImageBuilder::new().build().expect("image builds");
    let functions = spread(image.symbols.len());
    let mut group = c.benchmark_group("consumer");

    group.bench_function("ftrace_drain_4096_events", |b| {
        b.iter_batched(
            || {
                let t = FtraceTracer::new(&image.symbols, 1, 1 << 20);
                for i in 0..4096u32 {
                    t.on_function_call(CpuId(0), functions[(i % 256) as usize]);
                }
                t
            },
            |t| t.drain(CpuId(0)),
            BatchSize::LargeInput,
        )
    });

    let fmeter = FmeterTracer::with_cpus(&image.symbols, 16);
    for i in 0..4096u32 {
        fmeter.on_function_call(CpuId((i % 16) as usize), functions[(i % 256) as usize]);
    }
    group.bench_function("fmeter_snapshot_3815_fns_16_cpus", |b| {
        b.iter(|| fmeter.snapshot(fmeter_kernel_sim::Nanos(0)))
    });
    group.finish();
}

criterion_group!(benches, bench_fast_paths, bench_contended, bench_drain);
criterion_main!(benches);
