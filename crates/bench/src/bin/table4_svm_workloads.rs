//! Regenerates **Table 4**: SVM performance distinguishing the three
//! workloads (kcompile / scp / dbench) over all six signature groupings,
//! with 10-fold cross-validation.
//!
//! ```text
//! cargo run --release -p fmeter-bench --bin table4_svm_workloads
//! ```
//!
//! Expected shape: accuracies ≥ 99% (the paper reports 99.4–100%),
//! crushing the majority baselines (~51% pairwise, ~66% one-vs-rest).
//!
//! Set `FMETER_SIGS` to shrink the per-class signature count for a quick
//! run (default ≈250, as in the paper).

use fmeter_bench::{binary_dataset, collect_signatures, render_table, SignatureWorkload};
use fmeter_core::RawSignature;
use fmeter_kernel_sim::Nanos;
use fmeter_ml::metrics::majority_baseline;
use fmeter_ml::CrossValidation;

fn sig_count(default: usize) -> usize {
    std::env::var("FMETER_SIGS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let interval = Nanos::from_millis(10);
    // "For every workload type we retrieved roughly 250 distinct
    // signatures": the exact counts differ slightly, which is where the
    // paper's 51.797% / 50.619% baselines come from.
    let n = sig_count(250);
    let n_kcompile = n + n / 25;
    let n_dbench = n + n / 80;
    let n_scp = n.saturating_sub(n / 50).max(3);

    eprintln!("collecting {n_kcompile} kcompile signatures...");
    let kcompile =
        collect_signatures(SignatureWorkload::KCompile, n_kcompile, interval, 11).unwrap();
    eprintln!("collecting {n_scp} scp signatures...");
    let scp = collect_signatures(SignatureWorkload::Scp, n_scp, interval, 12).unwrap();
    eprintln!("collecting {n_dbench} dbench signatures...");
    let dbench = collect_signatures(SignatureWorkload::Dbench, n_dbench, interval, 13).unwrap();

    let union = |a: &[RawSignature], b: &[RawSignature]| -> Vec<RawSignature> {
        let mut out = a.to_vec();
        out.extend_from_slice(b);
        out
    };

    let groupings: Vec<(String, Vec<RawSignature>, Vec<RawSignature>)> = vec![
        (
            "dbench(+1), kcompile(-1)".into(),
            dbench.clone(),
            kcompile.clone(),
        ),
        (
            "scp(+1), kcompile(-1)".into(),
            scp.clone(),
            kcompile.clone(),
        ),
        ("scp(+1), dbench(-1)".into(), scp.clone(), dbench.clone()),
        (
            "dbench(+1), kcompile U scp(-1)".into(),
            dbench.clone(),
            union(&kcompile, &scp),
        ),
        (
            "scp(+1), kcompile U dbench(-1)".into(),
            scp.clone(),
            union(&kcompile, &dbench),
        ),
        (
            "kcompile(+1), scp U dbench(-1)".into(),
            kcompile.clone(),
            union(&scp, &dbench),
        ),
    ];

    let mut rows = Vec::new();
    for (name, pos, neg) in &groupings {
        eprintln!("running 10-fold CV: {name}");
        let (xs, ys) = binary_dataset(pos, neg).unwrap();
        let baseline = majority_baseline(&ys).unwrap();
        let report = CrossValidation::new(10).seed(5).run(&xs, &ys).unwrap();
        let (acc, acc_sd) = report.mean_accuracy();
        let (prec, prec_sd) = report.mean_precision();
        let (rec, rec_sd) = report.mean_recall();
        rows.push(vec![
            name.clone(),
            format!("{:.3}", baseline * 100.0),
            format!("{:.2}±{:.2}", acc * 100.0, acc_sd * 100.0),
            format!("{:.2}±{:.2}", prec * 100.0, prec_sd * 100.0),
            format!("{:.2}±{:.2}", rec * 100.0, rec_sd * 100.0),
        ]);
        assert!(
            acc > 0.95,
            "{name}: accuracy {acc} collapsed (paper reports >= 99.39%)"
        );
        assert!(acc > baseline + 0.2, "{name}: no lift over baseline");
    }
    println!("\nTable 4: SVM on workload signatures, 10-fold CV (all values %)\n");
    println!(
        "{}",
        render_table(
            &[
                "Signature grouping",
                "Baseline acc",
                "Accuracy",
                "Precision",
                "Recall"
            ],
            &rows,
        )
    );
    println!("(paper: accuracies 99.39-100.00, baselines 50.6-68.0)");
}
