//! Regenerates **Table 5**: SVM distinguishing the three myri10ge driver
//! variants (1.4.3, 1.5.1, 1.5.1-LRO-off) from netperf-receive signatures,
//! with 8-fold cross-validation.
//!
//! ```text
//! cargo run --release -p fmeter-bench --bin table5_svm_myri10ge
//! ```
//!
//! The drivers live in an *un-instrumented* module; their behaviour is
//! visible only through the core-kernel functions they call. The paper
//! reports perfect accuracy/precision/recall on all three pairings.
//!
//! Set `FMETER_SIGS` for a quick run (default ≈250 per variant).

use fmeter_bench::{
    binary_dataset, collect_signatures, render_table, Myri10geVariant, SignatureWorkload,
};
use fmeter_kernel_sim::Nanos;
use fmeter_ml::metrics::majority_baseline;
use fmeter_ml::CrossValidation;

fn sig_count(default: usize) -> usize {
    std::env::var("FMETER_SIGS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let interval = Nanos::from_millis(10);
    let n = sig_count(250);
    // Slightly different run lengths per variant, like the paper's
    // near-but-not-exactly-50% baselines.
    let counts = [n + n / 60, n, n.saturating_sub(n / 100).max(3)];

    let mut sets = Vec::new();
    for (variant, count) in Myri10geVariant::ALL.into_iter().zip(counts) {
        eprintln!("collecting {count} signatures with {}...", variant.label());
        let sigs = collect_signatures(
            SignatureWorkload::Netperf(variant),
            count,
            interval,
            31 + variant as u64,
        )
        .unwrap();
        sets.push((variant, sigs));
    }
    let v151 = &sets[0].1;
    let v143 = &sets[1].1;
    let nolro = &sets[2].1;

    let pairings = vec![
        (
            "myri10ge 1.4.3 (+1), 1.5.1 (-1)",
            v143.clone(),
            v151.clone(),
        ),
        (
            "myri10ge 1.5.1 (+1), 1.5.1 LRO disabled (-1)",
            v151.clone(),
            nolro.clone(),
        ),
        (
            "myri10ge 1.4.3 (+1), 1.5.1 LRO disabled (-1)",
            v143.clone(),
            nolro.clone(),
        ),
    ];

    let mut rows = Vec::new();
    for (name, pos, neg) in &pairings {
        eprintln!("running 8-fold CV: {name}");
        let (xs, ys) = binary_dataset(pos, neg).unwrap();
        let baseline = majority_baseline(&ys).unwrap();
        let report = CrossValidation::new(8).seed(9).run(&xs, &ys).unwrap();
        let (acc, acc_sd) = report.mean_accuracy();
        let (prec, prec_sd) = report.mean_precision();
        let (rec, rec_sd) = report.mean_recall();
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", baseline * 100.0),
            format!("{:.2}±{:.2}", acc * 100.0, acc_sd * 100.0),
            format!("{:.2}±{:.2}", prec * 100.0, prec_sd * 100.0),
            format!("{:.2}±{:.2}", rec * 100.0, rec_sd * 100.0),
        ]);
        assert!(acc > 0.97, "{name}: accuracy {acc} (paper reports 100.00)");
    }
    println!("\nTable 5: SVM on myri10ge driver variants, 8-fold CV (all values %)\n");
    println!(
        "{}",
        render_table(
            &[
                "Signature comparison",
                "Baseline acc",
                "Accuracy",
                "Precision",
                "Recall"
            ],
            &rows,
        )
    );
    println!("(paper: 100.00±0.00 everywhere, baselines 50.25-51.02)");
}
