//! Regenerates **Table 2**: apachebench requests/second under the three
//! kernel configurations, with slowdown percentages.
//!
//! ```text
//! cargo run --release -p fmeter-bench --bin table2_apachebench
//! ```
//!
//! The paper ran 512 concurrent closed-loop connections against httpd
//! serving one 1400-byte file, 16 repetitions per configuration, and
//! reports mean requests/second ± SEM. We run the same request mix with
//! 16 repetitions of a fixed request batch and compute simulated
//! throughput.

use std::sync::Arc;

use fmeter_bench::{render_table, PAPER_IMAGE_SEED};
use fmeter_kernel_sim::{CpuId, Kernel, KernelConfig};
use fmeter_ml::metrics::mean_sem;
use fmeter_trace::{FmeterTracer, FtraceTracer};
use fmeter_workloads::{ApacheBench, Workload};

const REPETITIONS: usize = 16;
const REQUESTS_PER_REP: usize = 1500;

fn throughput(config: &str, repetition: usize) -> f64 {
    let mut kernel = Kernel::new(KernelConfig {
        num_cpus: 16,
        seed: 0xab << 8 | repetition as u64,
        timer_hz: 1000,
        image_seed: PAPER_IMAGE_SEED,
    })
    .expect("standard image builds");
    match config {
        "vanilla" => {}
        "ftrace" => {
            let t = Arc::new(FtraceTracer::new(kernel.symbols(), 16, 1 << 20));
            kernel.set_tracer(t);
        }
        "fmeter" => {
            let t = Arc::new(FmeterTracer::with_cpus(kernel.symbols(), 16));
            kernel.set_tracer(t);
        }
        other => unreachable!("unknown config {other}"),
    }
    let mut ab = ApacheBench::new(97 + repetition as u64);
    // httpd workers spread over 8 CPUs (the benchmark client ran on the
    // same box in the paper; its cost is the user time in each step).
    let cpus: Vec<CpuId> = (0..8).map(CpuId).collect();
    let start = kernel.now();
    ab.run_steps(&mut kernel, &cpus, REQUESTS_PER_REP)
        .expect("requests run");
    let elapsed = (kernel.now() - start).as_secs_f64();
    // Requests were served round-robin across 8 CPUs; the simulated clock
    // accumulated their total busy time, so wall-clock throughput is the
    // per-CPU rate times the worker count.
    REQUESTS_PER_REP as f64 / elapsed * cpus.len() as f64
}

fn main() {
    println!(
        "Table 2: apachebench ({} reps x {} requests, 1400-byte file)\n",
        REPETITIONS, REQUESTS_PER_REP
    );
    let mut results: Vec<(String, f64, f64)> = Vec::new();
    for config in ["vanilla", "fmeter", "ftrace"] {
        let samples: Vec<f64> = (0..REPETITIONS)
            .map(|rep| throughput(config, rep))
            .collect();
        let (mean, sem) = mean_sem(&samples);
        results.push((config.to_string(), mean, sem));
    }
    let vanilla_mean = results[0].1;
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(config, mean, sem)| {
            let slowdown = (1.0 - mean / vanilla_mean) * 100.0;
            vec![
                config.clone(),
                format!("{mean:.1}±{sem:.1}"),
                format!("{slowdown:.2} %"),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Configuration", "Requests per second", "Slowdown"], &rows)
    );
    println!("(paper: vanilla 14215±70 / 0%, fmeter 10793±78 / 24.07%, ftrace 5525±33 / 61.13%)");

    let fmeter_slow = 1.0 - results[1].1 / vanilla_mean;
    let ftrace_slow = 1.0 - results[2].1 / vanilla_mean;
    assert!(
        fmeter_slow > 0.03 && fmeter_slow < 0.45,
        "fmeter slowdown off: {fmeter_slow}"
    );
    assert!(ftrace_slow > 0.40, "ftrace slowdown off: {ftrace_slow}");
    assert!(ftrace_slow > fmeter_slow * 2.0, "ordering collapsed");
}
