//! Ablation: logging-interval sensitivity (DESIGN.md §5.3).
//!
//! ```text
//! cargo run --release -p fmeter-bench --bin ablation_interval
//! ```
//!
//! The paper's daemon samples every 2–10 s and argues that the normalised
//! term frequency makes the interval choice benign. This ablation sweeps
//! the interval across a 16x range and re-runs the scp-vs-kcompile
//! classification: accuracy should stay flat.

use fmeter_bench::{binary_dataset, collect_signatures, render_table, SignatureWorkload};
use fmeter_kernel_sim::Nanos;
use fmeter_ml::CrossValidation;

fn sig_count(default: usize) -> usize {
    std::env::var("FMETER_SIGS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n = sig_count(60);
    let intervals_ms = [2u64, 5, 10, 20, 32];
    let mut rows = Vec::new();
    for (i, &ms) in intervals_ms.iter().enumerate() {
        let interval = Nanos::from_millis(ms);
        eprintln!("interval {ms}ms: collecting 2 x {n} signatures...");
        let scp = collect_signatures(SignatureWorkload::Scp, n, interval, 80 + i as u64).unwrap();
        let kcompile =
            collect_signatures(SignatureWorkload::KCompile, n, interval, 90 + i as u64).unwrap();
        let (xs, ys) = binary_dataset(&scp, &kcompile).unwrap();
        let report = CrossValidation::new(5).seed(3).run(&xs, &ys).unwrap();
        let (acc, sd) = report.mean_accuracy();
        let mean_calls = scp
            .iter()
            .chain(&kcompile)
            .map(|s| s.total_calls())
            .sum::<u64>() as f64
            / (2 * n) as f64;
        rows.push(vec![
            format!("{ms} ms"),
            format!("{:.0}", mean_calls),
            format!("{:.2}±{:.2}", acc * 100.0, sd * 100.0),
        ]);
        assert!(
            acc > 0.95,
            "interval {ms}ms: accuracy {acc} should stay high"
        );
    }
    println!("\nAblation: logging interval (scp vs kcompile, 5-fold SVM)\n");
    println!(
        "{}",
        render_table(
            &["Interval", "Mean calls/signature", "SVM accuracy %"],
            &rows
        )
    );
    println!("(expected: accuracy flat across the sweep — tf normalisation at work)");
}
