//! Regenerates **Figure 6**: K-means purity for `scp` + `dbench`
//! signatures (2 actual classes) as the number of *target* clusters K
//! grows from 2 to 20, for 60 / 140 / 220 sampled vectors.
//!
//! ```text
//! cargo run --release -p fmeter-bench --bin fig6_purity_vs_k
//! ```
//!
//! Expected shape: purity converges rapidly to 1.0 as K exceeds the true
//! class count (a few extra clusters absorb the boundary mistakes), with
//! shrinking error bars.

use fmeter_bench::{collect_signatures, tfidf_vectors, SignatureWorkload};
use fmeter_core::RawSignature;
use fmeter_ir::SparseVec;
use fmeter_kernel_sim::Nanos;
use fmeter_ml::metrics::{mean_sem, purity};
use fmeter_ml::{KMeans, KMeansInit};
use rand::rngs::SmallRng;
use rand::seq::index::sample;
use rand::SeedableRng;

const RUNS: usize = 12;

fn sig_count(default: usize) -> usize {
    std::env::var("FMETER_SIGS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let interval = Nanos::from_millis(10);
    let pool = sig_count(230);
    eprintln!("collecting {pool} signatures per workload...");
    let scp = collect_signatures(SignatureWorkload::Scp, pool, interval, 61).unwrap();
    let dbench = collect_signatures(SignatureWorkload::Dbench, pool, interval, 62).unwrap();

    let mut all: Vec<RawSignature> = Vec::new();
    all.extend_from_slice(&scp);
    all.extend_from_slice(&dbench);
    let vectors: Vec<SparseVec> = tfidf_vectors(&all)
        .unwrap()
        .into_iter()
        .map(|v| v.l2_normalized())
        .collect();
    let scp_v = &vectors[0..pool];
    let db_v = &vectors[pool..2 * pool];

    let sample_sizes: Vec<usize> = [220usize, 140, 60]
        .iter()
        .copied()
        .filter(|&s| s <= pool)
        .collect();
    println!("# Figure 6: K-means purity vs target clusters (2 actual classes)");
    println!("# columns: K, then per sample size: mean sem");
    println!(
        "# sample sizes: {}",
        sample_sizes
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(" | ")
    );
    // Per paper: the same number of vectors sampled from each class; the
    // plot varies K from 2 to 20.
    for k in 2..=20usize {
        let mut line = format!("{k}");
        for &per_class in &sample_sizes {
            let purities: Vec<f64> = (0..RUNS)
                .map(|run| {
                    let mut rng = SmallRng::seed_from_u64(
                        run as u64 * 977 + k as u64 * 13 + per_class as u64,
                    );
                    let mut points = Vec::new();
                    let mut truth = Vec::new();
                    for (class_id, class) in [scp_v, db_v].iter().enumerate() {
                        for idx in sample(&mut rng, class.len(), per_class).iter() {
                            points.push(class[idx].clone());
                            truth.push(class_id);
                        }
                    }
                    // Random-init single-run Lloyd's (see fig5): extra
                    // target clusters absorb the local-minimum mistakes.
                    let result = KMeans::new(k)
                        .init(KMeansInit::Random)
                        .seed(run as u64)
                        .run(&points)
                        .expect("clustering runs");
                    purity(&result.assignments, &truth).expect("aligned inputs")
                })
                .collect();
            let (mean, sem) = mean_sem(&purities);
            line.push_str(&format!(" {mean:.4} {sem:.4}"));
        }
        println!("{line}");
    }
    println!("# (paper: purity -> 1.0 within a few extra clusters, SEM shrinking)");
}
