//! Regenerates **Figure 1**: kernel function call counts vs. rank during
//! boot-up, the power-law that motivates the tf-idf embedding.
//!
//! ```text
//! cargo run --release -p fmeter-bench --bin fig1_boot_powerlaw
//! ```
//!
//! Prints `(rank, count)` pairs for a log-log plot, plus a least-squares
//! slope over the mid range. The paper's figure spans ranks 1..3815 with
//! counts from 1 to ~10^7; the reproduced curve must span several decades
//! and be monotonically decreasing.

use std::sync::Arc;

use fmeter_bench::PAPER_IMAGE_SEED;
use fmeter_kernel_sim::{Kernel, KernelConfig};
use fmeter_trace::FmeterTracer;

fn main() {
    let mut kernel = Kernel::new(KernelConfig {
        num_cpus: 16,
        seed: 0xb007,
        timer_hz: 1000,
        image_seed: PAPER_IMAGE_SEED,
    })
    .expect("standard image builds");
    let tracer = Arc::new(FmeterTracer::with_cpus(kernel.symbols(), 16));
    kernel.set_tracer(tracer.clone());

    let report = kernel.boot().expect("boot runs");
    eprintln!(
        "boot: {} functions, {} total calls, {} simulated",
        report.functions, report.total_calls, report.duration
    );

    let mut counts = tracer.snapshot(kernel.now()).counts().to_vec();
    counts.sort_unstable_by(|a, b| b.cmp(a));

    println!("# Figure 1: kernel function call count vs rank during boot-up");
    println!("# rank count");
    for (rank, count) in counts.iter().enumerate() {
        println!("{} {}", rank + 1, count);
    }

    // Straight-line fit on log-log over the mid-range (the paper's curve
    // is roughly linear between the flat head and the init-only tail).
    let lo = counts.len() / 100;
    let hi = counts.len() * 3 / 4;
    let points: Vec<(f64, f64)> = (lo..hi)
        .filter(|&i| counts[i] > 0)
        .map(|i| (((i + 1) as f64).ln(), (counts[i] as f64).ln()))
        .collect();
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let decades = (counts[0] as f64 / counts[counts.len() - 1].max(1) as f64).log10();
    eprintln!("power-law fit slope (log-log, mid-range): {slope:.2}");
    eprintln!("dynamic range: {decades:.1} decades (paper: ~7)");

    assert!(counts.windows(2).all(|w| w[0] >= w[1]));
    assert!(slope < -0.5, "rank/count curve too flat: slope {slope}");
    assert!(decades >= 3.5, "dynamic range too narrow: {decades}");
}
