//! Extension: evaluates the paper's §6 proposed optimisation — a fast
//! cache holding call counts for the top-N hottest functions.
//!
//! ```text
//! cargo run --release -p fmeter-bench --bin extension_hotcache
//! ```
//!
//! Procedure, following §6: profile a boot to rank functions, size the
//! hot set experimentally (the sweep below), then measure (a) what
//! fraction of increments the hot array absorbs under real workloads and
//! (b) the simulated lmbench impact with the cheaper stub.

use std::sync::Arc;

use fmeter_bench::{render_table, PAPER_IMAGE_SEED};
use fmeter_kernel_sim::{CpuId, Kernel, KernelConfig};
use fmeter_trace::{FmeterTracer, HotSetTracer};
use fmeter_workloads::{ApacheBench, Dbench, LmbenchTest, Workload};

fn kernel(seed: u64) -> Kernel {
    Kernel::new(KernelConfig {
        num_cpus: 4,
        seed,
        timer_hz: 1000,
        image_seed: PAPER_IMAGE_SEED,
    })
    .expect("standard image builds")
}

fn main() {
    // 1. Profile boot to rank functions (the §6 selection input).
    let mut profiling_kernel = kernel(1);
    let profiler = Arc::new(FmeterTracer::with_cpus(profiling_kernel.symbols(), 4));
    profiling_kernel.set_tracer(profiler.clone());
    profiling_kernel.boot().expect("boot runs");
    let profile = profiler.snapshot(profiling_kernel.now()).counts().to_vec();

    // 2. Hit-rate sweep over hot-set sizes, under two workloads the
    //    profile did not see.
    println!("Hot-set hit rate by size (boot-profile ranking):\n");
    let mut rows = Vec::new();
    for n in [8usize, 16, 32, 64, 128, 256] {
        let mut hits = Vec::new();
        for workload in 0..2 {
            let mut k = kernel(50 + workload);
            let tracer =
                Arc::new(HotSetTracer::from_profile(k.symbols(), 4, &profile, n).with_stats());
            k.set_tracer(tracer.clone());
            match workload {
                0 => {
                    let mut w = Dbench::new(3);
                    w.run_steps(&mut k, &[CpuId(0)], 300).expect("runs");
                }
                _ => {
                    let mut w = ApacheBench::new(4);
                    w.run_steps(&mut k, &[CpuId(0)], 300).expect("runs");
                }
            }
            hits.push(tracer.hit_rate());
        }
        rows.push(vec![
            n.to_string(),
            format!("{:.1}%", hits[0] * 100.0),
            format!("{:.1}%", hits[1] * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(&["N", "dbench hit rate", "apachebench hit rate"], &rows)
    );

    // 3. Simulated latency impact: standard Fmeter stub vs hot-set stub
    //    on a few lmbench rows.
    println!("\nSimulated lmbench latency, Fmeter vs Fmeter+hot-set (us):\n");
    let mut rows = Vec::new();
    for test in [
        LmbenchTest::SimpleRead,
        LmbenchTest::Select100Tcp,
        LmbenchTest::ForkExit,
    ] {
        let mut standard_kernel_ = kernel(7);
        standard_kernel_.set_tracer(Arc::new(FmeterTracer::with_cpus(
            standard_kernel_.symbols(),
            4,
        )));
        let standard = test
            .run(&mut standard_kernel_, CpuId(0), 100)
            .expect("runs");

        let mut hot_kernel = kernel(7);
        hot_kernel.set_tracer(Arc::new(HotSetTracer::from_profile(
            hot_kernel.symbols(),
            4,
            &profile,
            64,
        )));
        let hot = test.run(&mut hot_kernel, CpuId(0), 100).expect("runs");
        rows.push(vec![
            test.label().to_string(),
            format!("{:.3}", standard.mean_us),
            format!("{:.3}", hot.mean_us),
            format!("{:.1}%", (1.0 - hot.mean_us / standard.mean_us) * 100.0),
        ]);
        assert!(
            hot.mean_us < standard.mean_us,
            "hot set must not slow tracing down"
        );
    }
    println!(
        "{}",
        render_table(&["Test", "Fmeter", "Fmeter+hot64", "saved"], &rows)
    );
    println!("\n(§6: \"a fast cache that holds the call counts for the top N hottest functions\")");
}
