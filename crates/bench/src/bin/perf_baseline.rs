//! Machine-readable perf baseline for the compare/cluster/search hot path.
//!
//! Times the fused distance kernels, the CSR batch kernel, K-means fit,
//! hierarchical fit, and inverted-index search with plain wall-clock
//! loops, and writes the results as JSON (default `BENCH_ir.json`) so
//! successive PRs accumulate a perf trajectory that scripts can diff.
//!
//! Usage:
//!   perf_baseline [--quick] [--out PATH]
//!
//! `--quick` shrinks the corpora and the per-case time budget for CI; the
//! full mode matches the criterion benches' scales (300–1000 points,
//! 3815–5000 dims).

use std::time::Instant;

use fmeter_bench::{synthetic_corpus, synthetic_points};
use fmeter_ir::{CsrMatrix, InvertedIndex, Metric, SearchScratch, TfIdfModel};
use fmeter_ml::{Agglomerative, KMeans, Linkage};
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    schema: &'static str,
    mode: &'static str,
    /// Historical criterion measurements pinned at refactor boundaries so
    /// the trajectory has fixed reference points alongside the live runs.
    reference: Vec<Reference>,
    cases: Vec<Case>,
}

#[derive(Serialize)]
struct Reference {
    name: &'static str,
    note: &'static str,
    ns_per_iter: f64,
}

/// Criterion numbers recorded on the CI reference container around the
/// zero-allocation hot-path refactor (fused kernels + CSR + dense
/// centroids + flat postings).
const REFERENCES: [Reference; 5] = [
    Reference {
        name: "kmeans/k3_300pts_3815d",
        note: "pre-refactor (sub()-allocating kernels)",
        ns_per_iter: 33_764_364.0,
    },
    Reference {
        name: "kmeans/k3_300pts_3815d",
        note: "post-refactor (7.8x)",
        ns_per_iter: 4_316_226.0,
    },
    Reference {
        name: "search/top10_of_500",
        note: "pre-refactor (per-query score vec, AoS postings)",
        ns_per_iter: 281_621.0,
    },
    Reference {
        name: "search/top10_of_500",
        note: "post-refactor (1.9x)",
        ns_per_iter: 145_764.0,
    },
    Reference {
        name: "search/top10_of_500_scratch_reuse",
        note: "post-refactor, SearchScratch reuse (2.3x vs pre)",
        ns_per_iter: 121_629.0,
    },
];

#[derive(Serialize)]
struct Case {
    name: String,
    params: String,
    iters: u64,
    ns_per_iter: f64,
}

/// Times `f` until the budget is spent (at least `min_iters` runs after a
/// single warm-up call) and reports the mean ns/iteration.
fn time_case<O>(budget_ms: u64, min_iters: u64, mut f: impl FnMut() -> O) -> (u64, f64) {
    std::hint::black_box(f()); // warm-up
    let budget = std::time::Duration::from_millis(budget_ms);
    let start = Instant::now();
    let mut iters = 0u64;
    while iters < min_iters || start.elapsed() < budget {
        std::hint::black_box(f());
        iters += 1;
    }
    let ns = start.elapsed().as_nanos() as f64 / iters as f64;
    (iters, ns)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_ir.json".to_string());

    let (budget_ms, kmeans_n, hier_n, search_n, dim) = if quick {
        (120, 200, 80, 300, 2000)
    } else {
        (400, 1000, 300, 1000, 5000)
    };
    let mut cases = Vec::new();
    let mut push = |name: &str, params: String, iters: u64, ns: f64| {
        println!("{name:<44} {ns:>14.1} ns/iter  [{iters} iters]");
        cases.push(Case {
            name: name.to_string(),
            params,
            iters,
            ns_per_iter: ns,
        });
    };

    // Fused distance kernels over a realistic signature pair.
    let pair = synthetic_points(2, 3815, 300, 1);
    let (a, b) = (&pair[0], &pair[1]);
    for (name, metric) in [
        ("distance/euclidean_3815d", Metric::Euclidean),
        ("distance/cosine_3815d", Metric::Cosine),
        ("distance/manhattan_3815d", Metric::Manhattan),
    ] {
        let (iters, ns) = time_case(budget_ms, 100, || metric.distance(a, b).unwrap());
        push(name, "nnz=300".into(), iters, ns);
    }
    let (iters, ns) = time_case(budget_ms, 100, || {
        Metric::Euclidean.distance_sq(a, b).unwrap()
    });
    push("distance/euclidean_sq_3815d", "nnz=300".into(), iters, ns);

    // CSR batch pairwise kernel.
    let pts = synthetic_points(hier_n, dim, 128, 2);
    let csr = CsrMatrix::from_rows(&pts).unwrap();
    let mut cond = Vec::new();
    let (iters, ns) = time_case(budget_ms, 2, || {
        csr.pairwise_condensed_into(Metric::Euclidean, &mut cond)
            .unwrap()
    });
    push(
        "csr/pairwise_euclidean",
        format!("n={hier_n} dim={dim} nnz=128"),
        iters,
        ns,
    );

    // K-means fit (the paper-scale case mirrors criterion's
    // kmeans/k3_300pts_3815d so trajectories line up).
    let paper_pts = synthetic_points(300, 3815, 300, 5);
    let (iters, ns) = time_case(budget_ms, 2, || {
        KMeans::new(3).seed(1).run(&paper_pts).unwrap()
    });
    push(
        "kmeans/fit_k3_300pts_3815d",
        "k=3 n=300 dim=3815".into(),
        iters,
        ns,
    );
    let kmeans_pts = synthetic_points(kmeans_n, dim, 128, 6);
    let (iters, ns) = time_case(budget_ms, 2, || {
        KMeans::new(4).seed(1).run(&kmeans_pts).unwrap()
    });
    push(
        "kmeans/fit_k4_large",
        format!("k=4 n={kmeans_n} dim={dim}"),
        iters,
        ns,
    );

    // Hierarchical fit (parallel CSR matrix + Lance-Williams merges).
    let (iters, ns) = time_case(budget_ms, 2, || {
        Agglomerative::new(Linkage::Single).fit(&pts).unwrap()
    });
    push(
        "hierarchical/fit_single_large",
        format!("n={hier_n} dim={dim}"),
        iters,
        ns,
    );

    // Inverted-index search, fresh allocation vs scratch reuse.
    let corpus = synthetic_corpus(search_n, dim, 160, 3);
    let (model, vectors) = TfIdfModel::fit_transform(&corpus).unwrap();
    let mut index = InvertedIndex::new(dim);
    for v in &vectors {
        index.insert(v.clone()).unwrap();
    }
    index.optimize();
    let query = model.transform(corpus.doc(search_n / 2).unwrap());
    let (iters, ns) = time_case(budget_ms, 20, || index.search(&query, 10).unwrap());
    push(
        "search/top10_alloc",
        format!("n={search_n} dim={dim}"),
        iters,
        ns,
    );
    let mut scratch = SearchScratch::new();
    let (iters, ns) = time_case(budget_ms, 20, || {
        index.search_with(&query, 10, &mut scratch).unwrap()
    });
    push(
        "search/top10_scratch_reuse",
        format!("n={search_n} dim={dim}"),
        iters,
        ns,
    );

    // tf-idf corpus transform straight into CSR.
    let (iters, ns) = time_case(budget_ms, 2, || model.transform_corpus_csr(&corpus));
    push(
        "tfidf/transform_corpus_csr",
        format!("n={search_n} dim={dim}"),
        iters,
        ns,
    );

    let report = Report {
        schema: "fmeter-perf-baseline/v1",
        mode: if quick { "quick" } else { "full" },
        reference: REFERENCES.into_iter().collect(),
        cases,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("write baseline JSON");
    println!("wrote {out_path}");
}
