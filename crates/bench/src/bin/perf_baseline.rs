//! Machine-readable perf baseline for the compare/cluster/search hot path.
//!
//! Times the fused distance kernels, the CSR batch kernel, K-means fit,
//! hierarchical fit, and inverted-index search with plain wall-clock
//! loops, and writes the results as JSON (default `BENCH_ir.json`) so
//! successive PRs accumulate a perf trajectory that scripts can diff.
//!
//! Usage:
//!   perf_baseline [--quick] [--out PATH] [--compare PATH] [--summary PATH]
//!
//! `--quick` shrinks the corpora and the per-case time budget for CI; the
//! full mode matches the criterion benches' scales (300–10000 points,
//! 2000–5000 dims).
//!
//! `--compare PATH` diffs the fresh run against a previously committed
//! baseline (matching cases by name *and* params, so quick-mode runs
//! only gate against the size-independent cases) and exits non-zero when
//! any shared case regressed by more than [`REGRESSION_FACTOR`] — the CI
//! perf-trajectory gate.
//!
//! `--summary PATH` appends a GitHub-flavoured markdown table of the run
//! (and, with `--compare`, the per-case delta table) to PATH — the
//! nightly workflow points this at `$GITHUB_STEP_SUMMARY` so trajectory
//! drift is readable straight from the run page.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use fmeter_bench::{
    synthetic_class_corpus, synthetic_clustered_points, synthetic_corpus, synthetic_points,
    synthetic_raw_signatures,
};
use fmeter_core::{
    CheckpointPolicy, DurableLog, DurableOptions, RefitPolicy, SignatureDb, SignatureService,
    SyncPolicy, WalOp,
};
use fmeter_ir::{AnnGraph, CsrMatrix, InvertedIndex, Metric, SearchScratch, TfIdfModel};
use fmeter_ml::{Agglomerative, KMeans, Linkage, SnnParams};
use serde::{Deserialize, Serialize};

/// A shared case fails the trajectory gate when it runs more than this
/// many times slower than the committed baseline.
const REGRESSION_FACTOR: f64 = 2.0;

#[derive(Serialize)]
struct Report {
    schema: &'static str,
    mode: &'static str,
    /// Historical criterion measurements pinned at refactor boundaries so
    /// the trajectory has fixed reference points alongside the live runs.
    reference: Vec<Reference>,
    cases: Vec<Case>,
}

#[derive(Serialize)]
struct Reference {
    name: &'static str,
    note: &'static str,
    ns_per_iter: f64,
}

/// Numbers recorded on the CI reference container around the
/// zero-allocation hot-path refactor (fused kernels + CSR + dense
/// centroids + flat postings), the corpus-scale refactor (NN-chain
/// agglomeration, scatter/gather pairwise kernel, worker-pool K-means,
/// WAND/MaxScore early-exit top-k), and the durability refactor
/// (versioned persistence envelope + vacuum compaction), and the
/// sharded-service refactor (renumber-in-place vacuum, snapshot-
/// published concurrent search), and the crash-consistency refactor
/// (write-ahead log + atomic checkpoints + torn-tail recovery), and
/// the binary-codec refactor (v5 per-section binary envelope, binary
/// WAL payloads into a reused append buffer, slice-by-8 CRC32), and
/// the block-max refactor (blocked postings with per-block maxima,
/// galloping block-aligned seek, opt-in 8-bit quantized impacts), and
/// the sub-quadratic clustering tier (term-blocked bulk ANN graph
/// build, SNN-pruned agglomeration, warm-started recluster).
const REFERENCES: [Reference; 27] = [
    Reference {
        name: "kmeans/k3_300pts_3815d",
        note: "pre-refactor (sub()-allocating kernels)",
        ns_per_iter: 33_764_364.0,
    },
    Reference {
        name: "kmeans/k3_300pts_3815d",
        note: "post-refactor (7.8x)",
        ns_per_iter: 4_316_226.0,
    },
    Reference {
        name: "search/top10_of_500",
        note: "pre-refactor (per-query score vec, AoS postings)",
        ns_per_iter: 281_621.0,
    },
    Reference {
        name: "search/top10_of_500",
        note: "post-refactor (1.9x)",
        ns_per_iter: 145_764.0,
    },
    Reference {
        name: "search/top10_of_500_scratch_reuse",
        note: "post-refactor, SearchScratch reuse (2.3x vs pre)",
        ns_per_iter: 121_629.0,
    },
    Reference {
        name: "hierarchical/fit_1k",
        note: "pre corpus-scale refactor (O(n^3) closest-pair scan, merge-join pairwise)",
        ns_per_iter: 794_505_159.0,
    },
    Reference {
        name: "hierarchical/fit_1k",
        note: "post corpus-scale refactor (NN-chain + scatter/gather pairwise, 7.8x)",
        ns_per_iter: 101_768_582.0,
    },
    Reference {
        name: "search/top10_of_10k_probe40",
        note: "pre (exhaustive accumulation)",
        ns_per_iter: 340_288.0,
    },
    Reference {
        name: "search/top10_of_10k_probe40",
        note: "post (WAND/MaxScore early-exit, 1.75x)",
        ns_per_iter: 194_756.0,
    },
    Reference {
        name: "search/top10_of_10k_block_max",
        note: "post block-max refactor (blocked postings + galloping seek, 1.70x vs WAND pin)",
        ns_per_iter: 114_460.0,
    },
    Reference {
        name: "search/top10_of_10k_block_max_int8",
        note: "post block-max refactor (8-bit quantized impacts, 2.3x smaller resident postings)",
        ns_per_iter: 115_308.0,
    },
    Reference {
        name: "kmeans/assign_10k",
        note: "sequential assignment (threads=1)",
        ns_per_iter: 189_770_254.0,
    },
    Reference {
        name: "kmeans/assign_10k",
        note: "worker-pool parallel assignment (2-core throttled reference box)",
        ns_per_iter: 172_309_444.0,
    },
    Reference {
        name: "db/build_base",
        note:
            "full SignatureDb rebuild at 10k docs — the per-insert cost before incremental ingest",
        ns_per_iter: 39_468_319.0,
    },
    Reference {
        name: "db/insert_stream_into_base",
        note:
            "incremental insert into a 10k-doc db, threshold refits (~1300x vs rebuild-per-insert)",
        ns_per_iter: 30_473.0,
    },
    Reference {
        name: "db/vacuum_after_churn",
        note: "clone + vacuum of an 11k-slot db with a third tombstoned \
               (clone alone ~11.1 ms, so compaction proper is ~17.6 ms)",
        ns_per_iter: 28_688_461.0,
    },
    Reference {
        name: "db/save_load",
        note: "versioned-envelope save + migrate/validate/load round trip at 11k docs",
        ns_per_iter: 977_006_913.0,
    },
    Reference {
        name: "db/vacuum_after_churn",
        note: "post renumber-in-place vacuum: clone ~3.0 ms + compaction ~2.5 ms \
               (was ~17.6 ms when compaction recomputed weights into a fresh index, 5.2x)",
        ns_per_iter: 5_515_016.0,
    },
    Reference {
        name: "service_throughput",
        note: "sharded snapshot search under concurrent insert_batch ingest \
               (8 shards, 10k-doc base, k=10; ~1160 queries/sec on the reference box)",
        ns_per_iter: 862_436.0,
    },
    Reference {
        name: "db/wal_append",
        note: "per-op WAL append under SyncPolicy::OnCheckpoint \
               (clone + JSON serialize + CRC32 + buffered write; ~34 us \
               per acked op against a ~16 us bare in-memory insert)",
        ns_per_iter: 33_906.0,
    },
    Reference {
        name: "db/recover_replay",
        note: "cold-start recover_state: newest-checkpoint envelope load \
               (512 docs, per-section CRC verify) + 256-op WAL tail replay",
        ns_per_iter: 26_891_179.0,
    },
    Reference {
        name: "db/save_load",
        note: "post binary per-section codec: v5 envelope with binary \
               corpus/signatures/index/model payloads + slice-by-8 CRC32 \
               (was ~977 ms with JSON sections, 12.4x)",
        ns_per_iter: 78_912_032.0,
    },
    Reference {
        name: "db/wal_append",
        note: "post binary WAL payloads: WalOp encoded into a reused \
               per-writer append buffer, steady-state appends allocation-free \
               (was ~34 us with per-append JSON serialize, 1.4x)",
        ns_per_iter: 24_161.0,
    },
    Reference {
        name: "db/recover_replay",
        note: "post binary codec: binary checkpoint decode + binary WAL \
               tail replay (was ~27 ms with JSON sections, 4.0x)",
        ns_per_iter: 6_768_301.0,
    },
    Reference {
        name: "ann/knn_build_10k",
        note: "bulk ANN graph build at 10k docs, 50 classes: term-blocked \
               candidate generation + diverse linking + layer bridging \
               (~2.3 s when built by repeated beam-search insert)",
        ns_per_iter: 179_508_816.0,
    },
    Reference {
        name: "cluster/snn_agglomerative_10k",
        note: "SNN-pruned single-linkage agglomeration off the ANN graph's \
               2-hop candidate lists (same-corpus exact NN-chain ~4.1 s, \
               9.6x; ARI 1.0 at the class cut — see ann_clustering.rs)",
        ns_per_iter: 430_308_807.0,
    },
    Reference {
        name: "cluster/kmeans_warm_vs_cold_10k",
        note: "warm-started recluster after 64 churned docs of 10k \
               (cold path = seeded k-means++ with 3 restarts ~75 ms, 8.7x \
               — the per-maintenance-cycle cost of SignatureDb::recluster)",
        ns_per_iter: 8_617_248.0,
    },
];

#[derive(Serialize)]
struct Case {
    name: String,
    params: String,
    iters: u64,
    ns_per_iter: f64,
}

/// A committed baseline, read back for the trajectory gate. Only the
/// fields the comparison needs; the rest of the document is ignored.
#[derive(Deserialize)]
struct BaselineDoc {
    cases: Vec<BaselineCase>,
}

#[derive(Deserialize)]
struct BaselineCase {
    name: String,
    params: String,
    ns_per_iter: f64,
}

/// One row of the trajectory diff, kept structured so the stdout report
/// and the markdown step summary render the same comparison.
struct CompareRow {
    name: String,
    old_ns: f64,
    new_ns: f64,
    ratio: f64,
    verdict: &'static str,
}

/// Diffs `fresh` against the committed `baseline` over shared
/// `(name, params)` cases.
fn diff_against_baseline(fresh: &[Case], baseline: &BaselineDoc) -> Vec<CompareRow> {
    let mut rows = Vec::new();
    for case in fresh {
        let Some(old) = baseline
            .cases
            .iter()
            .find(|b| b.name == case.name && b.params == case.params)
        else {
            continue;
        };
        let ratio = case.ns_per_iter / old.ns_per_iter;
        let verdict = if ratio > REGRESSION_FACTOR {
            "REGRESSED"
        } else if ratio < 1.0 / REGRESSION_FACTOR {
            "improved"
        } else {
            "ok"
        };
        rows.push(CompareRow {
            name: case.name.clone(),
            old_ns: old.ns_per_iter,
            new_ns: case.ns_per_iter,
            ratio,
            verdict,
        });
    }
    rows
}

/// Renders the run (and optional trajectory diff) as GitHub-flavoured
/// markdown for `$GITHUB_STEP_SUMMARY`.
fn render_summary_markdown(report: &Report, comparison: Option<&[CompareRow]>) -> String {
    let mut md = format!("## perf_baseline ({} mode)\n\n", report.mode);
    if let Some(rows) = comparison {
        md.push_str("### Trajectory vs committed baseline\n\n");
        md.push_str("| case | baseline ns/iter | fresh ns/iter | ratio | verdict |\n");
        md.push_str("|---|---:|---:|---:|---|\n");
        for r in rows {
            md.push_str(&format!(
                "| `{}` | {:.1} | {:.1} | {:.2}x | {} |\n",
                r.name, r.old_ns, r.new_ns, r.ratio, r.verdict
            ));
        }
        let regressed = rows.iter().filter(|r| r.verdict == "REGRESSED").count();
        md.push_str(&format!(
            "\n{} shared case(s) compared, {} regression(s)\n\n",
            rows.len(),
            regressed
        ));
    }
    md.push_str("### All cases\n\n| case | params | ns/iter | iters |\n|---|---|---:|---:|\n");
    for c in &report.cases {
        md.push_str(&format!(
            "| `{}` | {} | {:.1} | {} |\n",
            c.name, c.params, c.ns_per_iter, c.iters
        ));
    }
    md
}

/// Times `f` until the budget is spent (at least `min_iters` runs after a
/// single warm-up call) and reports the mean ns/iteration.
fn time_case<O>(budget_ms: u64, min_iters: u64, mut f: impl FnMut() -> O) -> (u64, f64) {
    std::hint::black_box(f()); // warm-up
    let budget = std::time::Duration::from_millis(budget_ms);
    let start = Instant::now();
    let mut iters = 0u64;
    while iters < min_iters || start.elapsed() < budget {
        std::hint::black_box(f());
        iters += 1;
    }
    let ns = start.elapsed().as_nanos() as f64 / iters as f64;
    (iters, ns)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_ir.json".to_string());
    let compare_path = args
        .iter()
        .position(|a| a == "--compare")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let summary_path = args
        .iter()
        .position(|a| a == "--summary")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (budget_ms, kmeans_n, hier_n, search_n, dim) = if quick {
        (120, 200, 80, 300, 2000)
    } else {
        (400, 1000, 300, 1000, 5000)
    };
    let mut cases = Vec::new();
    let mut push = |name: &str, params: String, iters: u64, ns: f64| {
        println!("{name:<44} {ns:>14.1} ns/iter  [{iters} iters]");
        cases.push(Case {
            name: name.to_string(),
            params,
            iters,
            ns_per_iter: ns,
        });
    };

    // Fused distance kernels over a realistic signature pair.
    let pair = synthetic_points(2, 3815, 300, 1);
    let (a, b) = (&pair[0], &pair[1]);
    for (name, metric) in [
        ("distance/euclidean_3815d", Metric::Euclidean),
        ("distance/cosine_3815d", Metric::Cosine),
        ("distance/manhattan_3815d", Metric::Manhattan),
    ] {
        let (iters, ns) = time_case(budget_ms, 100, || metric.distance(a, b).unwrap());
        push(name, "nnz=300".into(), iters, ns);
    }
    let (iters, ns) = time_case(budget_ms, 100, || {
        Metric::Euclidean.distance_sq(a, b).unwrap()
    });
    push("distance/euclidean_sq_3815d", "nnz=300".into(), iters, ns);

    // CSR batch pairwise kernel.
    let pts = synthetic_points(hier_n, dim, 128, 2);
    let csr = CsrMatrix::from_rows(&pts).unwrap();
    let mut cond = Vec::new();
    let (iters, ns) = time_case(budget_ms, 2, || {
        csr.pairwise_condensed_into(Metric::Euclidean, &mut cond)
            .unwrap()
    });
    push(
        "csr/pairwise_euclidean",
        format!("n={hier_n} dim={dim} nnz=128"),
        iters,
        ns,
    );

    // K-means fit (the paper-scale case mirrors criterion's
    // kmeans/k3_300pts_3815d so trajectories line up).
    let paper_pts = synthetic_points(300, 3815, 300, 5);
    let (iters, ns) = time_case(budget_ms, 2, || {
        KMeans::new(3).seed(1).run(&paper_pts).unwrap()
    });
    push(
        "kmeans/fit_k3_300pts_3815d",
        "k=3 n=300 dim=3815".into(),
        iters,
        ns,
    );
    let kmeans_pts = synthetic_points(kmeans_n, dim, 128, 6);
    let (iters, ns) = time_case(budget_ms, 2, || {
        KMeans::new(4).seed(1).run(&kmeans_pts).unwrap()
    });
    push(
        "kmeans/fit_k4_large",
        format!("k=4 n={kmeans_n} dim={dim}"),
        iters,
        ns,
    );

    // Hierarchical fit (parallel CSR matrix + NN-chain merges).
    let (iters, ns) = time_case(budget_ms, 2, || {
        Agglomerative::new(Linkage::Single).fit(&pts).unwrap()
    });
    push(
        "hierarchical/fit_single_large",
        format!("n={hier_n} dim={dim}"),
        iters,
        ns,
    );

    // NN-chain vs the retained O(n³) closest-pair reference at the
    // 1k-point scale of the acceptance criterion.
    let pair_n = if quick { 300 } else { 1000 };
    let pair_pts = synthetic_points(pair_n, dim, 128, 10);
    let (iters, ns) = time_case(budget_ms, 1, || {
        Agglomerative::new(Linkage::Single).fit(&pair_pts).unwrap()
    });
    push(
        "hierarchical/nn_chain_1k",
        format!("n={pair_n} dim={dim}"),
        iters,
        ns,
    );
    let (iters, ns) = time_case(budget_ms, 1, || {
        Agglomerative::new(Linkage::Single)
            .fit_brute_force(&pair_pts)
            .unwrap()
    });
    push(
        "hierarchical/brute_force_1k",
        format!("n={pair_n} dim={dim}"),
        iters,
        ns,
    );

    // 10k-signature dendrogram: NN-chain works in place on the condensed
    // matrix (~400 MB at 10k points; the old n x n mirror would have
    // doubled that before even starting the O(n³) scan).
    let big_hier_n = if quick { 1500 } else { 10_000 };
    let big_hier_pts = synthetic_points(big_hier_n, 2000, 32, 11);
    let (iters, ns) = time_case(budget_ms, 1, || {
        Agglomerative::new(Linkage::Single)
            .fit(&big_hier_pts)
            .unwrap()
    });
    push(
        "hierarchical/nn_chain_10k",
        format!("n={big_hier_n} dim=2000 nnz=32"),
        iters,
        ns,
    );
    let nn_chain_ns = ns;

    // The sub-quadratic clustering tier, on a class-structured corpus —
    // the fleet-scale workload (many distinct behaviour classes on
    // disjoint kernel-function bands) the ANN graph's term blocking and
    // the SNN candidate pruning exist for. `synthetic_points`' four
    // loosely-banded mega-clusters stay the stress corpus for the exact
    // NN-chain pin above; the exact comparator here re-runs the
    // NN-chain on this corpus so the printed speedup is like-for-like.
    let ann_classes = 50;
    let ann_pts = synthetic_clustered_points(big_hier_n, ann_classes, 12, 8, 11);
    let ann_dim = ann_pts[0].dim();
    let (iters, ns) = time_case(budget_ms, 1, || AnnGraph::build(ann_dim, &ann_pts).unwrap());
    push(
        "ann/knn_build_10k",
        format!("n={big_hier_n} classes={ann_classes} nnz=9 M=16 efc=64"),
        iters,
        ns,
    );
    let (_, exact_ns) = time_case(budget_ms, 1, || {
        Agglomerative::new(Linkage::Single).fit(&ann_pts).unwrap()
    });
    let (iters, ns) = time_case(budget_ms, 1, || {
        Agglomerative::new(Linkage::Single)
            .fit_snn(&ann_pts, &SnnParams::default())
            .unwrap()
    });
    push(
        "cluster/snn_agglomerative_10k",
        format!("n={big_hier_n} classes={ann_classes} nnz=9 knn=32"),
        iters,
        ns,
    );
    println!(
        "   snn agglomeration: {ns:.0} ns vs {exact_ns:.0} ns exact NN-chain \
         -> {:.1}x faster at n={big_hier_n} ({:.1}x vs the nn_chain_10k case)",
        exact_ns / ns,
        nn_chain_ns / ns
    );

    // Thread-parallel K-means assignment at corpus scale: the explicit
    // threads(1) run is the scaling denominator.
    let big_km_n = if quick { 2000 } else { 10_000 };
    let big_km_pts = synthetic_points(big_km_n, 2000, 64, 12);
    let (iters, ns) = time_case(budget_ms, 1, || {
        KMeans::new(8)
            .seed(1)
            .max_iters(20)
            .threads(1)
            .run(&big_km_pts)
            .unwrap()
    });
    push(
        "kmeans/sequential_10k",
        format!("k=8 n={big_km_n} dim=2000"),
        iters,
        ns,
    );
    let (iters, ns) = time_case(budget_ms, 1, || {
        KMeans::new(8)
            .seed(1)
            .max_iters(20)
            .run(&big_km_pts)
            .unwrap()
    });
    push(
        "kmeans/parallel_10k",
        format!("k=8 n={big_km_n} dim=2000"),
        iters,
        ns,
    );

    // Warm-started K-means under streaming churn: converge cold once on
    // a class-structured corpus, replace a 64-doc slice (the churn
    // between two maintenance cycles of the streaming daemon), and
    // re-cluster from the surviving assignment. The cold denominator
    // mirrors `SignatureDb::recluster`'s cold path exactly — k-means++
    // with three restarts on the churned corpus.
    let warm_classes = 8;
    let warm_pts = synthetic_clustered_points(big_km_n, warm_classes, 48, 24, 12);
    let churn = 64.min(big_km_n / 4);
    let cold_fit = KMeans::new(8).seed(7).restarts(3).run(&warm_pts).unwrap();
    let mut churned_pts = warm_pts.clone();
    let replacements = synthetic_clustered_points(churn, warm_classes, 48, 24, 13);
    for (i, r) in replacements.into_iter().enumerate() {
        churned_pts[i * (big_km_n / churn)] = r;
    }
    let (_, cold_ns) = time_case(budget_ms, 1, || {
        KMeans::new(8)
            .seed(7)
            .restarts(3)
            .run(&churned_pts)
            .unwrap()
    });
    let (iters, ns) = time_case(budget_ms, 1, || {
        KMeans::new(8)
            .seed(7)
            .fit_warm(&churned_pts, &cold_fit.assignments)
            .unwrap()
    });
    push(
        "cluster/kmeans_warm_vs_cold_10k",
        format!("k=8 n={big_km_n} classes={warm_classes} churn={churn} restarts=3"),
        iters,
        ns,
    );
    println!(
        "   warm recluster: {ns:.0} ns vs {cold_ns:.0} ns cold fit \
         -> {:.1}x faster after {churn} changed docs",
        cold_ns / ns
    );

    // Inverted-index search, fresh allocation vs scratch reuse.
    let corpus = synthetic_corpus(search_n, dim, 160, 3);
    let (model, vectors) = TfIdfModel::fit_transform(&corpus).unwrap();
    let mut index = InvertedIndex::new(dim);
    for v in &vectors {
        index.insert(v.clone()).unwrap();
    }
    index.optimize();
    let query = model.transform(corpus.doc(search_n / 2).unwrap());
    let (iters, ns) = time_case(budget_ms, 20, || index.search(&query, 10).unwrap());
    push(
        "search/top10_alloc",
        format!("n={search_n} dim={dim}"),
        iters,
        ns,
    );
    let mut scratch = SearchScratch::new();
    let (iters, ns) = time_case(budget_ms, 20, || {
        index.search_with(&query, 10, &mut scratch).unwrap()
    });
    push(
        "search/top10_scratch_reuse",
        format!("n={search_n} dim={dim}"),
        iters,
        ns,
    );

    // WAND early-exit vs exhaustive top-k over a 10k-signature database
    // with fleet-realistic idf skew (50 behaviour classes, each hot on
    // its own kernel-function band + a shared daemon-noise band). The
    // query is a syndrome probe — the interval's 40 hottest functions,
    // the shape an operator (or a bandwidth-limited agent) sends — which
    // is where per-term bounds actually prune: a handful of ubiquitous
    // daemon terms own most of the postings, and WAND leaps over them
    // once the top-k bar passes their summed impact.
    let big_docs = if quick { 2000 } else { 10_000 };
    let classes = 50;
    let class_corpus = synthetic_class_corpus(big_docs, classes, 3815, 13);
    let (class_model, class_vectors) = TfIdfModel::fit_transform(&class_corpus).unwrap();
    let mut class_index = InvertedIndex::new(3815);
    for v in &class_vectors {
        class_index.insert(v.clone()).unwrap();
    }
    class_index.optimize();
    let probe_doc = class_corpus.doc(big_docs / 2).unwrap();
    let mut hottest: Vec<(u32, u64)> = probe_doc.iter().collect();
    hottest.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    hottest.truncate(40);
    let hot_terms: std::collections::HashSet<u32> = hottest.iter().map(|&(t, _)| t).collect();
    let full_query = class_model.transform(probe_doc);
    let class_query = fmeter_ir::SparseVec::from_pairs(
        full_query.dim(),
        full_query.iter().filter(|(t, _)| hot_terms.contains(t)),
    )
    .unwrap();
    let mut class_scratch = SearchScratch::new();
    let (iters, ns) = time_case(budget_ms, 20, || {
        class_index
            .search_exhaustive(&class_query, 10, &mut class_scratch)
            .unwrap()
    });
    push(
        "search/top10_of_10k_exhaustive",
        format!("n={big_docs} dim=3815 classes={classes} probe=40"),
        iters,
        ns,
    );
    let (iters, ns) = time_case(budget_ms, 20, || {
        class_index
            .search_wand(&class_query, 10, &mut class_scratch)
            .unwrap()
    });
    push(
        "search/top10_of_10k_wand",
        format!("n={big_docs} dim=3815 classes={classes} probe=40"),
        iters,
        ns,
    );
    // Block-max WAND over the same corpus/probe: per-block maxima let
    // the dense syndrome probe skip whole blocks of the ubiquitous
    // daemon-noise postings instead of binary-searching through them.
    let (iters, ns) = time_case(budget_ms, 20, || {
        class_index
            .search_block_max(&class_query, 10, &mut class_scratch)
            .unwrap()
    });
    push(
        "search/top10_of_10k_block_max",
        format!(
            "n={big_docs} dim=3815 classes={classes} probe=40 block={}",
            InvertedIndex::BLOCK_SIZE
        ),
        iters,
        ns,
    );
    // The same search with 8-bit quantized impacts: ~4x smaller postings
    // working set at a half-step rounding cost per weight.
    let flat_bytes = class_index.postings_resident_bytes();
    let mut quant_index = class_index.clone();
    quant_index.set_quantization(fmeter_ir::QuantizationMode::Int8);
    let quant_bytes = quant_index.postings_resident_bytes();
    println!(
        "postings resident bytes: flat={flat_bytes} int8={quant_bytes} ({:.2}x smaller)",
        flat_bytes as f64 / quant_bytes as f64
    );
    let (iters, ns) = time_case(budget_ms, 20, || {
        quant_index
            .search_block_max(&class_query, 10, &mut class_scratch)
            .unwrap()
    });
    push(
        "search/top10_of_10k_block_max_int8",
        format!(
            "n={big_docs} dim=3815 classes={classes} probe=40 block={}",
            InvertedIndex::BLOCK_SIZE
        ),
        iters,
        ns,
    );

    // tf-idf corpus transform straight into CSR.
    let (iters, ns) = time_case(budget_ms, 2, || model.transform_corpus_csr(&corpus));
    push(
        "tfidf/transform_corpus_csr",
        format!("n={search_n} dim={dim}"),
        iters,
        ns,
    );

    // Incremental SignatureDb ingest vs full rebuild — the streaming
    // daemon's acceptance case. One full build is what every insert
    // would cost if the daemon re-built from scratch; the streamed
    // insert runs under a threshold refit policy tight enough that
    // several epoch refits land inside the measured window.
    let ingest_base = if quick { 2_000 } else { 10_000 };
    let ingest_stream = if quick { 200 } else { 1_000 };
    let ingest_dim = 1_000;
    let raws = synthetic_raw_signatures(ingest_base + ingest_stream, 50, ingest_dim, 21);
    let (base_raws, stream_raws) = raws.split_at(ingest_base);
    let (iters, ns) = time_case(budget_ms, 1, || SignatureDb::build(base_raws).unwrap());
    push(
        "db/build_base",
        format!("n={ingest_base} dim={ingest_dim} classes=50"),
        iters,
        ns,
    );
    let build_ns = ns;
    let mut db = SignatureDb::build(base_raws).unwrap();
    db.set_refit_policy(RefitPolicy::Threshold {
        max_idf_drift: 0.02,
        max_stale_fraction: 0.05,
    });
    let start = Instant::now();
    for r in stream_raws {
        db.insert(r).unwrap();
    }
    let insert_ns = start.elapsed().as_nanos() as f64 / ingest_stream as f64;
    push(
        "db/insert_stream_into_base",
        format!("base={ingest_base} stream={ingest_stream} dim={ingest_dim} policy=threshold"),
        ingest_stream as u64,
        insert_ns,
    );
    println!(
        "   ingest: {insert_ns:.0} ns/insert (incl. {} threshold refits) vs \
         {build_ns:.0} ns/full-build -> {:.0}x faster than rebuild-per-insert",
        db.epoch(),
        build_ns / insert_ns
    );

    // Staleness vs search quality: suppress refits entirely, stream the
    // same signatures, and measure (a) probe classification timing on
    // the stale database, (b) the refit that catches it up, (c) probe
    // timing refitted — printing how many probe classifications the
    // staleness had actually changed.
    let mut stale_db = SignatureDb::build(base_raws).unwrap();
    stale_db.set_refit_policy(RefitPolicy::Manual);
    for r in stream_raws {
        stale_db.insert(r).unwrap();
    }
    let probes: Vec<_> = stream_raws.iter().step_by(7).collect();
    let classify_all = |db: &SignatureDb| -> Vec<Option<String>> {
        probes
            .iter()
            .map(|p| db.classify(&p.to_term_counts(), 5).unwrap())
            .collect()
    };
    let (iters, ns) = time_case(budget_ms, 3, || classify_all(&stale_db));
    push(
        "db/classify_probes_stale",
        format!(
            "n={} probes={} dim={ingest_dim}",
            stale_db.len(),
            probes.len()
        ),
        iters,
        ns,
    );
    let stale_verdicts = classify_all(&stale_db);
    let start = Instant::now();
    let refit_stats = stale_db.refit();
    let refit_ns = start.elapsed().as_nanos() as f64;
    push(
        "db/refit_after_stream",
        format!("n={} dim={ingest_dim}", stale_db.len()),
        1,
        refit_ns,
    );
    let (iters, ns) = time_case(budget_ms, 3, || classify_all(&stale_db));
    push(
        "db/classify_probes_refit",
        format!(
            "n={} probes={} dim={ingest_dim}",
            stale_db.len(),
            probes.len()
        ),
        iters,
        ns,
    );
    let refit_verdicts = classify_all(&stale_db);
    let agree = stale_verdicts
        .iter()
        .zip(&refit_verdicts)
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "   staleness vs quality: {agree}/{} probe classifications unchanged by the refit \
         ({} terms re-published, {} docs re-weighted)",
        probes.len(),
        refit_stats.changed_terms,
        refit_stats.reweighted_docs
    );

    // Vacuum compaction after churn: tombstone a third of the database
    // (a long-horizon daemon's accumulated eviction debt), then measure
    // the clone+vacuum cost against the clone alone — the difference is
    // what a daemon pays to cap its memory. Post-vacuum behaviour is
    // pinned by the property suite; here we pin the cost.
    let mut churned = stale_db;
    for d in (0..churned.num_slots()).step_by(3) {
        if churned.is_live(d) {
            churned.remove(d).unwrap();
        }
    }
    let dead = churned.num_slots() - churned.len();
    let (iters, ns) = time_case(budget_ms, 1, || churned.clone());
    push(
        "db/clone_churned",
        format!("n={} dead={dead} dim={ingest_dim}", churned.num_slots()),
        iters,
        ns,
    );
    let (iters, ns) = time_case(budget_ms, 1, || {
        let mut c = churned.clone();
        c.vacuum();
        c
    });
    push(
        "db/vacuum_after_churn",
        format!("n={} dead={dead} dim={ingest_dim}", churned.num_slots()),
        iters,
        ns,
    );

    // Envelope persistence round trip: what a daemon pays at
    // checkpoint/restart (save writes the versioned envelope, load
    // detects, migrates if needed, validates, and rebuilds).
    let mut saved = Vec::new();
    db.save(&mut saved).unwrap();
    let saved_len = saved.len();
    let (iters, ns) = time_case(budget_ms, 1, || {
        saved.clear();
        db.save(&mut saved).unwrap();
        SignatureDb::load(&saved[..]).unwrap()
    });
    push(
        "db/save_load",
        format!("n={} dim={ingest_dim} bytes={saved_len}", db.num_slots()),
        iters,
        ns,
    );

    // Durability costs: the WAL append a durable daemon pays per acked
    // op (serialize + CRC + buffered write; fsync deferred to the
    // checkpoint under `SyncPolicy::OnCheckpoint`), and the cold-start
    // recover (newest checkpoint load + WAL tail replay) after a crash.
    // Both run at a fixed size in quick and full mode so quick CI runs
    // gate their trajectory too.
    let wal_raws = synthetic_raw_signatures(768, 50, ingest_dim, 31);
    let (wal_base, wal_tail) = wal_raws.split_at(512);
    let durable_dir =
        std::env::temp_dir().join(format!("fmeter-perf-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&durable_dir);
    let wal_db = SignatureDb::build(wal_base).unwrap();
    let wal_opts = DurableOptions {
        sync: SyncPolicy::OnCheckpoint,
        checkpoint: CheckpointPolicy::Manual,
    };
    let mut wal_log = DurableLog::create(&durable_dir, &wal_db, 4, wal_opts).unwrap();
    let mut wal_at = 0usize;
    let (iters, ns) = time_case(budget_ms, 200, || {
        wal_log.append(&WalOp::Insert(wal_tail[wal_at % wal_tail.len()].clone()));
        wal_at += 1;
    });
    push(
        "db/wal_append",
        format!("base=512 dim={ingest_dim} sync=on_checkpoint"),
        iters,
        ns,
    );
    assert_eq!(
        wal_log.health(),
        fmeter_core::WalHealth::Healthy,
        "perf appends must all ack"
    );
    // Rebuild the directory with exactly the 256-op tail so the replay
    // half of the recover case is the same size in every run.
    drop(wal_log);
    let _ = std::fs::remove_dir_all(&durable_dir);
    let mut wal_log = DurableLog::create(&durable_dir, &wal_db, 4, wal_opts).unwrap();
    for r in wal_tail {
        wal_log.append(&WalOp::Insert(r.clone()));
    }
    wal_log.sync().unwrap();
    drop(wal_log);
    let (iters, ns) = time_case(budget_ms, 1, || {
        let (db, shards, report) = DurableLog::recover_state(&durable_dir).unwrap();
        assert_eq!(report.replayed_ops, wal_tail.len());
        (db, shards)
    });
    push(
        "db/recover_replay",
        format!("base=512 wal_ops={} dim={ingest_dim}", wal_tail.len()),
        iters,
        ns,
    );
    let _ = std::fs::remove_dir_all(&durable_dir);

    // Sharded-service query throughput under concurrent ingest: a
    // background writer streams insert_batch loops (publishing a new
    // snapshot generation per batch) while the measured thread runs
    // pooled fan-out searches. Snapshot publication means the search
    // path takes no lock the writer holds — this case regressing to
    // db-search-under-mutex cost is exactly what the trajectory gate
    // is here to catch.
    let service = SignatureService::build(base_raws, 8).unwrap();
    service
        .set_refit_policy(RefitPolicy::Threshold {
            max_idf_drift: 0.02,
            max_stale_fraction: 0.05,
        })
        .unwrap();
    let probe = base_raws[ingest_base / 2].to_term_counts();
    let stop = AtomicBool::new(false);
    let mut measured = (0u64, 0f64);
    std::thread::scope(|s| {
        let svc = &service;
        let stop = &stop;
        s.spawn(move || {
            let mut at = 0usize;
            while !stop.load(Ordering::Acquire) {
                let end = (at + 16).min(stream_raws.len());
                svc.insert_batch(&stream_raws[at..end]).unwrap();
                at = if end == stream_raws.len() { 0 } else { end };
            }
        });
        measured = time_case(budget_ms, 20, || svc.search(&probe, 10).unwrap());
        stop.store(true, Ordering::Release);
    });
    let (iters, ns) = measured;
    push(
        "service_throughput",
        format!("base={ingest_base} dim={ingest_dim} shards=8 k=10 writer=insert_batch"),
        iters,
        ns,
    );
    println!(
        "   service: {:.0} queries/sec under concurrent ingest \
         ({} generations published)",
        1e9 / ns,
        service.generation()
    );

    let report = Report {
        schema: "fmeter-perf-baseline/v1",
        mode: if quick { "quick" } else { "full" },
        reference: REFERENCES.into_iter().collect(),
        cases,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("write baseline JSON");
    println!("wrote {out_path}");

    let comparison = compare_path.map(|path| {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read --compare baseline {path}: {e}"));
        let baseline: BaselineDoc = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("parse --compare baseline {path}: {e}"));
        let rows = diff_against_baseline(&report.cases, &baseline);
        println!("\n-- trajectory vs committed baseline --");
        for r in &rows {
            println!(
                "{:<44} {:>12.1} -> {:>12.1} ns/iter  ({:.2}x) {}",
                r.name, r.old_ns, r.new_ns, r.ratio, r.verdict
            );
        }
        let regressed = rows.iter().filter(|r| r.verdict == "REGRESSED").count();
        println!(
            "{} shared case(s) compared, {regressed} regression(s)",
            rows.len()
        );
        rows
    });

    if let Some(path) = summary_path {
        use std::io::Write as _;
        let md = render_summary_markdown(&report, comparison.as_deref());
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("open --summary {path}: {e}"));
        file.write_all(md.as_bytes()).expect("write summary");
        println!("appended step summary to {path}");
    }

    if let Some(rows) = comparison {
        let regressions: Vec<&str> = rows
            .iter()
            .filter(|r| r.verdict == "REGRESSED")
            .map(|r| r.name.as_str())
            .collect();
        if !regressions.is_empty() {
            eprintln!(
                "perf gate FAILED: {} case(s) regressed more than {REGRESSION_FACTOR}x: {}",
                regressions.len(),
                regressions.join(", ")
            );
            std::process::exit(1);
        }
        println!("perf gate passed");
    }
}
