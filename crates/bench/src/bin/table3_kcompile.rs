//! Regenerates **Table 3**: Linux-kernel-compile elapsed time (`time`
//! utility breakdown: real/user/sys) under the three configurations.
//!
//! ```text
//! cargo run --release -p fmeter-bench --bin table3_kcompile
//! ```
//!
//! The reproduced shape: `user` is configuration-independent (user code
//! is not instrumented), `sys` inflates mildly under Fmeter (~20%) and
//! severely under Ftrace (~5x), and `real` follows `user + sys` on a
//! saturated build machine.

use std::sync::Arc;

use fmeter_bench::{render_table, PAPER_IMAGE_SEED};
use fmeter_kernel_sim::{CpuId, Kernel, KernelConfig, Nanos};
use fmeter_trace::{FmeterTracer, FtraceTracer};
use fmeter_workloads::{KCompile, Workload};

const FILES: usize = 1200;

struct TimeBreakdown {
    real: Nanos,
    user: Nanos,
    sys: Nanos,
}

fn compile(config: &str) -> TimeBreakdown {
    let mut kernel = Kernel::new(KernelConfig {
        num_cpus: 16,
        seed: 0x3c,
        timer_hz: 1000,
        image_seed: PAPER_IMAGE_SEED,
    })
    .expect("standard image builds");
    match config {
        "vanilla" => {}
        "ftrace" => {
            let t = Arc::new(FtraceTracer::new(kernel.symbols(), 16, 1 << 20));
            kernel.set_tracer(t);
        }
        "fmeter" => {
            let t = Arc::new(FmeterTracer::with_cpus(kernel.symbols(), 16));
            kernel.set_tracer(t);
        }
        other => unreachable!("unknown config {other}"),
    }
    let mut make = KCompile::new(1);
    let cpus: Vec<CpuId> = (0..4).map(CpuId).collect();
    let start = kernel.now();
    let stats = make
        .run_steps(&mut kernel, &cpus, FILES)
        .expect("compilation runs");
    TimeBreakdown {
        real: kernel.now() - start,
        user: stats.user_time,
        sys: stats.sys_time,
    }
}

fn fmt_minutes(t: Nanos) -> String {
    let total_seconds = t.as_secs_f64();
    let minutes = (total_seconds / 60.0).floor();
    let seconds = total_seconds - minutes * 60.0;
    format!("{}m{:.3}s", minutes as u64, seconds)
}

fn main() {
    println!("Table 3: kernel compile elapsed time ({FILES} translation units)\n");
    let vanilla = compile("vanilla");
    let ftrace = compile("ftrace");
    let fmeter = compile("fmeter");
    let rows = vec![
        vec![
            "real".to_string(),
            fmt_minutes(vanilla.real),
            fmt_minutes(ftrace.real),
            fmt_minutes(fmeter.real),
        ],
        vec![
            "user".to_string(),
            fmt_minutes(vanilla.user),
            fmt_minutes(ftrace.user),
            fmt_minutes(fmeter.user),
        ],
        vec![
            "sys".to_string(),
            fmt_minutes(vanilla.sys),
            fmt_minutes(ftrace.sys),
            fmt_minutes(fmeter.sys),
        ],
    ];
    println!(
        "{}",
        render_table(&["", "Unmodified", "Ftrace", "Fmeter"], &rows)
    );

    let sys_ftrace = ftrace.sys.0 as f64 / vanilla.sys.0 as f64;
    let sys_fmeter = fmeter.sys.0 as f64 / vanilla.sys.0 as f64;
    let user_drift = (ftrace.user.0 as f64 - vanilla.user.0 as f64).abs() / vanilla.user.0 as f64;
    println!(
        "\nsys inflation: fmeter {:.2}x (paper 1.22x), ftrace {:.2}x (paper 5.20x); \
         user drift across configs {:.1}% (paper ~0%)",
        sys_fmeter,
        sys_ftrace,
        user_drift * 100.0
    );
    assert!(
        sys_fmeter < 2.0,
        "fmeter sys inflation degenerated: {sys_fmeter}"
    );
    assert!(
        sys_ftrace > 3.0,
        "ftrace sys inflation collapsed: {sys_ftrace}"
    );
    assert!(user_drift < 0.05, "user time should not depend on tracing");
}
