//! Regenerates **Figure 4**: agglomerative single-linkage hierarchical
//! clustering of 20 randomly chosen signatures — 10 `scp` (labelled 0–9)
//! and 10 `kcompile` (labelled 10–19) — rendered in the paper's nested
//! parenthesis notation.
//!
//! ```text
//! cargo run --release -p fmeter-bench --bin fig4_dendrogram
//! ```
//!
//! The reproduced property: *perfect separation at the level immediately
//! below the aggregation tree root* — one root subtree holds exactly the
//! scp signatures, the other exactly the kcompile signatures.

use fmeter_bench::{collect_signatures, tfidf_vectors, SignatureWorkload};
use fmeter_ir::SparseVec;
use fmeter_kernel_sim::Nanos;
use fmeter_ml::{Agglomerative, Linkage};
use rand::rngs::SmallRng;
use rand::seq::index::sample;
use rand::SeedableRng;

fn main() {
    let interval = Nanos::from_millis(10);
    eprintln!("collecting signatures...");
    let scp = collect_signatures(SignatureWorkload::Scp, 40, interval, 41).unwrap();
    let kcompile = collect_signatures(SignatureWorkload::KCompile, 40, interval, 42).unwrap();

    // Sample 10 of each without replacement (the paper samples from its
    // full pools).
    let mut rng = SmallRng::seed_from_u64(4);
    let mut chosen = Vec::new();
    for idx in sample(&mut rng, scp.len(), 10).iter() {
        chosen.push(scp[idx].clone());
    }
    for idx in sample(&mut rng, kcompile.len(), 10).iter() {
        chosen.push(kcompile[idx].clone());
    }

    let vectors: Vec<SparseVec> = tfidf_vectors(&chosen)
        .unwrap()
        .into_iter()
        .map(|v| v.l2_normalized())
        .collect();
    let tree = Agglomerative::new(Linkage::Single).fit(&vectors).unwrap();

    // Leaves 0-9 are scp, 10-19 kcompile, matching the figure's labels.
    let labels: Vec<String> = (0..20).map(|i| i.to_string()).collect();
    println!("# Figure 4: single-linkage dendrogram (0-9 = scp, 10-19 = kcompile)");
    println!("{}", tree.to_paren_string(&labels));

    println!("\n# merge steps (left, right, distance):");
    for m in tree.merges() {
        println!("{} {} {:.5}", m.left, m.right, m.distance);
    }

    let (left, right) = tree.root_split().expect("20-point tree has a root split");
    let scp_side: Vec<usize> = (0..10).collect();
    let kcompile_side: Vec<usize> = (10..20).collect();
    let perfect = (left == scp_side && right == kcompile_side)
        || (left == kcompile_side && right == scp_side);
    println!(
        "\n# root split: {:?} | {:?} -> {}",
        left,
        right,
        if perfect {
            "PERFECT separation below the root (as in the paper)"
        } else {
            "IMPURE"
        }
    );
    assert!(
        perfect,
        "the two workloads must separate perfectly below the root"
    );
}
