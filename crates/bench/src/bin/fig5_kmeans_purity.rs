//! Regenerates **Figure 5**: K-means cluster purity vs. number of sampled
//! vectors per class, for all four class combinations of
//! {scp, kcompile, dbench}.
//!
//! ```text
//! cargo run --release -p fmeter-bench --bin fig5_kmeans_purity
//! ```
//!
//! X-axis: 20..220 sampled vectors per class; 12 runs per point with SEM
//! error bars, exactly as the paper plots. Expected shape: high purity
//! everywhere, with the 3-class curve slightly below the pairwise curves.

use fmeter_bench::{collect_signatures, tfidf_vectors, SignatureWorkload};
use fmeter_core::RawSignature;
use fmeter_ir::SparseVec;
use fmeter_kernel_sim::Nanos;
use fmeter_ml::metrics::{mean_sem, purity};
use fmeter_ml::{KMeans, KMeansInit};
use rand::rngs::SmallRng;
use rand::seq::index::sample;
use rand::SeedableRng;

const RUNS: usize = 12;

fn sig_count(default: usize) -> usize {
    std::env::var("FMETER_SIGS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One purity measurement: sample `per_class` vectors from each class,
/// K-means with K = #classes, compute purity.
fn measure(classes: &[&[SparseVec]], per_class: usize, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut points = Vec::new();
    let mut truth = Vec::new();
    for (class_id, vectors) in classes.iter().enumerate() {
        for idx in sample(&mut rng, vectors.len(), per_class.min(vectors.len())).iter() {
            points.push(vectors[idx].clone());
            truth.push(class_id);
        }
    }
    // Plain Lloyd's with random initialisation and a single run per
    // measurement, as a 2012 implementation would do — the residual
    // impurity in the paper's figure is exactly k-means landing in local
    // minima, not class overlap.
    let result = KMeans::new(classes.len())
        .init(KMeansInit::Random)
        .seed(seed ^ 0x5eed)
        .run(&points)
        .expect("clustering runs");
    purity(&result.assignments, &truth).expect("aligned inputs")
}

fn main() {
    let interval = Nanos::from_millis(10);
    let pool = sig_count(230);
    eprintln!("collecting {pool} signatures per workload...");
    let scp = collect_signatures(SignatureWorkload::Scp, pool, interval, 51).unwrap();
    let kcompile = collect_signatures(SignatureWorkload::KCompile, pool, interval, 52).unwrap();
    let dbench = collect_signatures(SignatureWorkload::Dbench, pool, interval, 53).unwrap();

    // One tf-idf model over the whole corpus, L2-normalised vectors.
    let mut all: Vec<RawSignature> = Vec::new();
    all.extend_from_slice(&scp);
    all.extend_from_slice(&kcompile);
    all.extend_from_slice(&dbench);
    let vectors: Vec<SparseVec> = tfidf_vectors(&all)
        .unwrap()
        .into_iter()
        .map(|v| v.l2_normalized())
        .collect();
    let n = pool;
    let scp_v = &vectors[0..n];
    let kc_v = &vectors[n..2 * n];
    let db_v = &vectors[2 * n..3 * n];

    let curves: Vec<(&str, Vec<&[SparseVec]>)> = vec![
        ("scp,kcompile,dbench", vec![scp_v, kc_v, db_v]),
        ("scp,kcompile", vec![scp_v, kc_v]),
        ("scp,dbench", vec![scp_v, db_v]),
        ("kcompile,dbench", vec![kc_v, db_v]),
    ];

    println!("# Figure 5: K-means purity vs sampled vectors per class");
    println!("# columns: samples, then per curve: mean sem");
    println!(
        "# curves: {}",
        curves.iter().map(|c| c.0).collect::<Vec<_>>().join(" | ")
    );
    let sample_points: Vec<usize> = [20, 60, 100, 140, 180, 220]
        .iter()
        .copied()
        .filter(|&s| s <= pool)
        .collect();
    for &per_class in &sample_points {
        let mut line = format!("{per_class}");
        for (name, classes) in &curves {
            let purities: Vec<f64> = (0..RUNS)
                .map(|run| measure(classes, per_class, run as u64 * 131 + per_class as u64))
                .collect();
            let (mean, sem) = mean_sem(&purities);
            line.push_str(&format!(" {mean:.4} {sem:.4}"));
            assert!(
                mean > 0.75,
                "{name} @ {per_class} samples: purity {mean} collapsed (paper stays near 1.0)"
            );
        }
        println!("{line}");
    }
    println!("# (paper: all curves > 0.9, the 3-class curve slightly lowest)");
}
