//! Quick end-to-end sanity check: are the three workload classes separable?
use fmeter_bench::*;
use fmeter_ir::euclidean_distance;
use fmeter_kernel_sim::Nanos;
use fmeter_ml::{metrics::purity, CrossValidation, KMeans};

fn main() {
    let interval = Nanos::from_millis(20);
    let n = 30;
    let t0 = std::time::Instant::now();
    let kc = collect_signatures(SignatureWorkload::KCompile, n, interval, 1).unwrap();
    println!(
        "kcompile: {:?} ({} sigs, {} calls/sig avg)",
        t0.elapsed(),
        kc.len(),
        kc.iter().map(|s| s.total_calls()).sum::<u64>() / n as u64
    );
    let t0 = std::time::Instant::now();
    let scp = collect_signatures(SignatureWorkload::Scp, n, interval, 2).unwrap();
    println!(
        "scp: {:?} ({} calls/sig avg)",
        t0.elapsed(),
        scp.iter().map(|s| s.total_calls()).sum::<u64>() / n as u64
    );
    let t0 = std::time::Instant::now();
    let db = collect_signatures(SignatureWorkload::Dbench, n, interval, 3).unwrap();
    println!(
        "dbench: {:?} ({} calls/sig avg)",
        t0.elapsed(),
        db.iter().map(|s| s.total_calls()).sum::<u64>() / n as u64
    );

    // SVM scp vs kcompile
    let (xs, ys) = binary_dataset(&scp, &kc).unwrap();
    let report = CrossValidation::new(5).run(&xs, &ys).unwrap();
    println!(
        "SVM scp vs kcompile: acc={:.3} prec={:.3} rec={:.3}",
        report.mean_accuracy().0,
        report.mean_precision().0,
        report.mean_recall().0
    );

    // KMeans purity on all three
    let mut all = kc.clone();
    all.extend(scp.clone());
    all.extend(db.clone());
    let vectors = tfidf_vectors(&all).unwrap();
    let normed: Vec<_> = vectors.iter().map(|v| v.l2_normalized()).collect();
    let classes: Vec<usize> = (0..3).flat_map(|c| std::iter::repeat_n(c, n)).collect();
    let result = KMeans::new(3).seed(1).restarts(4).run(&normed).unwrap();
    println!(
        "KMeans purity (3 classes): {:.3}",
        purity(&result.assignments, &classes).unwrap()
    );

    // myri10ge variants
    let t0 = std::time::Instant::now();
    let v151 = collect_signatures(
        SignatureWorkload::Netperf(Myri10geVariant::V151),
        n,
        interval,
        4,
    )
    .unwrap();
    let nolro = collect_signatures(
        SignatureWorkload::Netperf(Myri10geVariant::V151NoLro),
        n,
        interval,
        5,
    )
    .unwrap();
    let v143 = collect_signatures(
        SignatureWorkload::Netperf(Myri10geVariant::V143),
        n,
        interval,
        6,
    )
    .unwrap();
    println!("netperf x3: {:?}", t0.elapsed());
    let (xs, ys) = binary_dataset(&v151, &nolro).unwrap();
    let report = CrossValidation::new(5).run(&xs, &ys).unwrap();
    println!("SVM 1.5.1 vs LRO-off: acc={:.3}", report.mean_accuracy().0);
    let (xs, ys) = binary_dataset(&v143, &v151).unwrap();
    let report = CrossValidation::new(5).run(&xs, &ys).unwrap();
    println!("SVM 1.4.3 vs 1.5.1: acc={:.3}", report.mean_accuracy().0);

    // Centroid distances for intuition
    let mean = |_sigs: &[fmeter_core::RawSignature], off: usize| -> fmeter_ir::SparseVec {
        let vs = &normed[off..off + n];
        let mut acc = fmeter_ir::SparseVec::zeros(vs[0].dim());
        for v in vs {
            acc = acc.add(v).unwrap();
        }
        acc.scaled(1.0 / n as f64)
    };
    let c_kc = mean(&kc, 0);
    let c_scp = mean(&scp, n);
    let c_db = mean(&db, 2 * n);
    println!(
        "centroid dist kc-scp: {:.4}, kc-db: {:.4}, scp-db: {:.4}",
        euclidean_distance(&c_kc, &c_scp).unwrap(),
        euclidean_distance(&c_kc, &c_db).unwrap(),
        euclidean_distance(&c_scp, &c_db).unwrap()
    );
}
