//! Ablation: clustering distance metric (DESIGN.md §5.5).
//!
//! ```text
//! cargo run --release -p fmeter-bench --bin ablation_distance
//! ```
//!
//! The paper uses the L2-induced Euclidean distance throughout. This
//! ablation re-runs the 3-workload K-means purity measurement under L2,
//! L1, Minkowski(3), and cosine distance.

use fmeter_bench::{collect_signatures, tfidf_vectors, SignatureWorkload};
use fmeter_core::RawSignature;
use fmeter_ir::{Metric, SparseVec};
use fmeter_kernel_sim::Nanos;
use fmeter_ml::metrics::{mean_sem, purity};
use fmeter_ml::{KMeans, KMeansInit};

fn sig_count(default: usize) -> usize {
    std::env::var("FMETER_SIGS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let interval = Nanos::from_millis(10);
    let n = sig_count(80);
    eprintln!("collecting {n} signatures per workload...");
    let scp = collect_signatures(SignatureWorkload::Scp, n, interval, 75).unwrap();
    let kcompile = collect_signatures(SignatureWorkload::KCompile, n, interval, 76).unwrap();
    let dbench = collect_signatures(SignatureWorkload::Dbench, n, interval, 77).unwrap();

    let mut all: Vec<RawSignature> = scp.clone();
    all.extend_from_slice(&kcompile);
    all.extend_from_slice(&dbench);
    let vectors: Vec<SparseVec> = tfidf_vectors(&all)
        .unwrap()
        .into_iter()
        .map(|v| v.l2_normalized())
        .collect();
    let truth: Vec<usize> = std::iter::repeat_n(0usize, scp.len())
        .chain(std::iter::repeat_n(1, kcompile.len()))
        .chain(std::iter::repeat_n(2, dbench.len()))
        .collect();

    let metrics: Vec<(&str, Metric)> = vec![
        ("euclidean (paper)", Metric::Euclidean),
        ("manhattan", Metric::Manhattan),
        ("minkowski p=3", Metric::Minkowski(3.0)),
        ("cosine", Metric::Cosine),
    ];
    println!("\nAblation: K-means distance metric (3 workloads, random init, 12 runs)\n");
    println!("{:<20} {:>18}", "Metric", "Purity (mean±sem)");
    println!("{} {}", "-".repeat(20), "-".repeat(18));
    for (name, metric) in metrics {
        let purities: Vec<f64> = (0..12)
            .map(|run| {
                let result = KMeans::new(3)
                    .init(KMeansInit::Random)
                    .metric(metric)
                    .seed(run)
                    .run(&vectors)
                    .expect("clustering runs");
                purity(&result.assignments, &truth).expect("aligned")
            })
            .collect();
        let (mean, sem) = mean_sem(&purities);
        println!("{name:<20} {:>12.4}±{sem:.4}", mean);
        assert!(mean > 0.6, "{name}: purity collapsed entirely");
    }
}
