//! Extension: the paper's in-progress classifier comparison (§4.2.1
//! mentions a hand-crafted C4.5-style decision tree with boosting and
//! bagging alongside SVMlight). Re-runs the Table-4 workload pairings
//! with all four classifiers.
//!
//! ```text
//! cargo run --release -p fmeter-bench --bin extension_classifiers
//! ```

use fmeter_bench::{binary_dataset, collect_signatures, render_table, SignatureWorkload};
use fmeter_ir::SparseVec;
use fmeter_kernel_sim::Nanos;
use fmeter_ml::metrics::BinaryConfusion;
use fmeter_ml::{AdaBoost, Bagging, DecisionTree, Label, SvmTrainer};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn sig_count(default: usize) -> usize {
    std::env::var("FMETER_SIGS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Simple stratified 5-fold CV accuracy for an arbitrary train/predict
/// closure (the paper's full validation-fold protocol is SVM-specific;
/// tree learners here have no `C` to tune).
fn cv_accuracy(
    xs: &[SparseVec],
    ys: &[Label],
    train_predict: impl Fn(&[SparseVec], &[Label], &[SparseVec]) -> Vec<Label>,
) -> f64 {
    const FOLDS: usize = 5;
    let mut order: Vec<usize> = (0..xs.len()).collect();
    let mut rng = SmallRng::seed_from_u64(13);
    order.shuffle(&mut rng);
    let mut correct = 0usize;
    for fold in 0..FOLDS {
        let test: Vec<usize> = order.iter().copied().skip(fold).step_by(FOLDS).collect();
        let train: Vec<usize> = order
            .iter()
            .copied()
            .filter(|i| !test.contains(i))
            .collect();
        let train_x: Vec<SparseVec> = train.iter().map(|&i| xs[i].clone()).collect();
        let train_y: Vec<Label> = train.iter().map(|&i| ys[i]).collect();
        let test_x: Vec<SparseVec> = test.iter().map(|&i| xs[i].clone()).collect();
        let test_y: Vec<Label> = test.iter().map(|&i| ys[i]).collect();
        let predictions = train_predict(&train_x, &train_y, &test_x);
        correct += BinaryConfusion::from_labels(&test_y, &predictions)
            .expect("aligned labels")
            .true_positives
            + BinaryConfusion::from_labels(&test_y, &predictions)
                .expect("aligned labels")
                .true_negatives;
    }
    correct as f64 / xs.len() as f64
}

fn main() {
    let interval = Nanos::from_millis(10);
    let n = sig_count(80);
    eprintln!("collecting {n} signatures per workload...");
    let scp = collect_signatures(SignatureWorkload::Scp, n, interval, 201).unwrap();
    let kcompile = collect_signatures(SignatureWorkload::KCompile, n, interval, 202).unwrap();
    let dbench = collect_signatures(SignatureWorkload::Dbench, n, interval, 203).unwrap();

    let pairings = vec![
        ("scp vs kcompile", &scp, &kcompile),
        ("scp vs dbench", &scp, &dbench),
        ("dbench vs kcompile", &dbench, &kcompile),
    ];

    let mut rows = Vec::new();
    for (name, pos, neg) in pairings {
        eprintln!("evaluating {name}...");
        let (raw_xs, ys) = binary_dataset(pos, neg).unwrap();
        let xs: Vec<SparseVec> = raw_xs.iter().map(|v| v.l2_normalized()).collect();

        let svm = cv_accuracy(&xs, &ys, |tx, ty, qx| {
            SvmTrainer::new()
                .train(tx, ty)
                .expect("svm trains")
                .predict_batch(qx)
        });
        let tree = cv_accuracy(&xs, &ys, |tx, ty, qx| {
            DecisionTree::trainer()
                .max_depth(6)
                .train(tx, ty)
                .expect("tree trains")
                .predict_batch(qx)
        });
        let boosted = cv_accuracy(&xs, &ys, |tx, ty, qx| {
            AdaBoost::new(25)
                .weak_depth(2)
                .train(tx, ty)
                .expect("boosting trains")
                .predict_batch(qx)
        });
        let bagged = cv_accuracy(&xs, &ys, |tx, ty, qx| {
            Bagging::new(15)
                .seed(7)
                .train(tx, ty)
                .expect("bagging trains")
                .predict_batch(qx)
        });
        rows.push(vec![
            name.to_string(),
            format!("{:.2}", svm * 100.0),
            format!("{:.2}", tree * 100.0),
            format!("{:.2}", boosted * 100.0),
            format!("{:.2}", bagged * 100.0),
        ]);
        for (label, acc) in [
            ("svm", svm),
            ("tree", tree),
            ("boost", boosted),
            ("bag", bagged),
        ] {
            assert!(acc > 0.9, "{name}/{label}: accuracy {acc} collapsed");
        }
    }
    println!("\nExtension: classifier comparison on workload signatures (5-fold, % accuracy)\n");
    println!(
        "{}",
        render_table(
            &["Pairing", "SVM (poly)", "C4.5 tree", "AdaBoost", "Bagging"],
            &rows,
        )
    );
    println!("(the paper reports SVM numbers and mentions the tree package as in-progress)");
}
