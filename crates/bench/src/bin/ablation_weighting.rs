//! Ablation: tf-idf vs. tf-only vs. sublinear-tf weighting (DESIGN.md §5.2).
//!
//! ```text
//! cargo run --release -p fmeter-bench --bin ablation_weighting
//! ```
//!
//! Re-runs the Table-4-style 3-workload evaluation under different
//! weighting schemes and reports SVM accuracy (scp vs kcompile) and
//! K-means purity (3 classes, random init, 12 runs). The paper's choice
//! is `Normalized` tf × `Standard` idf; the ablation quantifies what idf
//! contributes.

use fmeter_bench::{collect_signatures, render_table, tfidf_vectors_with, SignatureWorkload};
use fmeter_core::RawSignature;
use fmeter_ir::{IdfMode, SparseVec, TfIdfOptions, TfMode};
use fmeter_kernel_sim::Nanos;
use fmeter_ml::metrics::{mean_sem, purity};
use fmeter_ml::{CrossValidation, KMeans, KMeansInit, Label};

fn sig_count(default: usize) -> usize {
    std::env::var("FMETER_SIGS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let interval = Nanos::from_millis(10);
    let n = sig_count(80);
    eprintln!("collecting {n} signatures per workload...");
    let scp = collect_signatures(SignatureWorkload::Scp, n, interval, 71).unwrap();
    let kcompile = collect_signatures(SignatureWorkload::KCompile, n, interval, 72).unwrap();
    let dbench = collect_signatures(SignatureWorkload::Dbench, n, interval, 73).unwrap();

    let schemes: Vec<(&str, TfIdfOptions)> = vec![
        (
            "tf-idf (paper)",
            TfIdfOptions {
                tf: TfMode::Normalized,
                idf: IdfMode::Standard,
            },
        ),
        (
            "tf only",
            TfIdfOptions {
                tf: TfMode::Normalized,
                idf: IdfMode::Unit,
            },
        ),
        (
            "tf x smooth idf",
            TfIdfOptions {
                tf: TfMode::Normalized,
                idf: IdfMode::Smooth,
            },
        ),
        (
            "sublinear tf x idf",
            TfIdfOptions {
                tf: TfMode::Sublinear,
                idf: IdfMode::Standard,
            },
        ),
        (
            "raw counts",
            TfIdfOptions {
                tf: TfMode::Raw,
                idf: IdfMode::Unit,
            },
        ),
    ];

    let mut rows = Vec::new();
    for (name, options) in schemes {
        // --- SVM: scp(+1) vs kcompile(-1), 5-fold ---
        let mut pair: Vec<RawSignature> = scp.clone();
        pair.extend_from_slice(&kcompile);
        let xs = tfidf_vectors_with(&pair, options).unwrap();
        let ys: Vec<Label> = std::iter::repeat_n(1, scp.len())
            .chain(std::iter::repeat_n(-1, kcompile.len()))
            .collect();
        let report = CrossValidation::new(5).seed(2).run(&xs, &ys).unwrap();
        let (acc, _) = report.mean_accuracy();

        // --- K-means purity: 3 classes, random init, 12 runs ---
        let mut all: Vec<RawSignature> = scp.clone();
        all.extend_from_slice(&kcompile);
        all.extend_from_slice(&dbench);
        let vectors: Vec<SparseVec> = tfidf_vectors_with(&all, options)
            .unwrap()
            .into_iter()
            .map(|v| v.l2_normalized())
            .collect();
        let truth: Vec<usize> = std::iter::repeat_n(0usize, scp.len())
            .chain(std::iter::repeat_n(1, kcompile.len()))
            .chain(std::iter::repeat_n(2, dbench.len()))
            .collect();
        let purities: Vec<f64> = (0..12)
            .map(|run| {
                let result = KMeans::new(3)
                    .init(KMeansInit::Random)
                    .seed(run)
                    .run(&vectors)
                    .expect("clustering runs");
                purity(&result.assignments, &truth).expect("aligned")
            })
            .collect();
        let (purity_mean, purity_sem) = mean_sem(&purities);

        rows.push(vec![
            name.to_string(),
            format!("{:.2}", acc * 100.0),
            format!("{purity_mean:.4}±{purity_sem:.4}"),
        ]);
    }
    println!("\nAblation: weighting scheme (SVM: scp vs kcompile; purity: 3 classes)\n");
    println!(
        "{}",
        render_table(&["Weighting", "SVM accuracy %", "K-means purity"], &rows)
    );
}
