//! Regenerates **Table 1**: lmbench latencies under the vanilla kernel,
//! the Ftrace function tracer, and Fmeter, with slowdown factors.
//!
//! ```text
//! cargo run --release -p fmeter-bench --bin table1_lmbench
//! ```
//!
//! Absolute microseconds come from the simulator's cost model; the
//! *shape* — Fmeter a small factor over vanilla, Ftrace several times
//! worse, the Ftrace/Fmeter ratio ≥ 2 everywhere — is the reproduced
//! result.

use std::sync::Arc;

use fmeter_bench::{render_table, standard_kernel, PAPER_IMAGE_SEED};
use fmeter_kernel_sim::{CpuId, Kernel, KernelConfig};
use fmeter_trace::{FmeterTracer, FtraceTracer};
use fmeter_workloads::{LatencyStats, LmbenchTest};

/// Tracer configurations, in paper column order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Config {
    Vanilla,
    Ftrace,
    Fmeter,
}

fn run_test(test: LmbenchTest, config: Config, iterations: usize) -> LatencyStats {
    // Identical machine + seed per configuration: the executed call trees
    // match, so latency differences are purely instrumentation cost —
    // the controlled comparison the paper runs on one physical box.
    let mut kernel = Kernel::new(KernelConfig {
        num_cpus: 2,
        seed: 0xbe ^ test as u64,
        timer_hz: 0, // lmbench measures the op, not background ticks
        image_seed: PAPER_IMAGE_SEED,
    })
    .expect("standard image builds");
    match config {
        Config::Vanilla => {}
        Config::Ftrace => {
            let tracer = Arc::new(FtraceTracer::new(kernel.symbols(), 2, 1 << 20));
            kernel.set_tracer(tracer);
        }
        Config::Fmeter => {
            let tracer = Arc::new(FmeterTracer::with_cpus(kernel.symbols(), 2));
            kernel.set_tracer(tracer);
        }
    }
    test.run(&mut kernel, CpuId(0), iterations)
        .expect("standard ops resolve")
}

fn main() {
    let mut rows = Vec::new();
    println!("Table 1: lmbench latencies (us, mean +/- sem) — vanilla vs Ftrace vs Fmeter\n");
    for test in LmbenchTest::ALL {
        // Expensive process tests run fewer iterations, like lmbench itself.
        let iterations = match test {
            LmbenchTest::ForkSh | LmbenchTest::ForkExecve | LmbenchTest::ForkExit => 60,
            LmbenchTest::MemoryMap => 80,
            _ => 400,
        };
        let vanilla = run_test(test, Config::Vanilla, iterations);
        let ftrace = run_test(test, Config::Ftrace, iterations);
        let fmeter = run_test(test, Config::Fmeter, iterations);
        let slow_ftrace = ftrace.mean_us / vanilla.mean_us;
        let slow_fmeter = fmeter.mean_us / vanilla.mean_us;
        let ratio = ftrace.mean_us / fmeter.mean_us;
        rows.push(vec![
            test.label().to_string(),
            format!("{:.3}±{:.3}", vanilla.mean_us, vanilla.sem_us),
            format!("{:.3}±{:.3}", ftrace.mean_us, ftrace.sem_us),
            format!("{:.3}±{:.3}", fmeter.mean_us, fmeter.sem_us),
            format!("{slow_ftrace:.3}"),
            format!("{slow_fmeter:.3}"),
            format!("{ratio:.3}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Test",
                "Baseline us",
                "Ftrace us",
                "Fmeter us",
                "Ftrace x",
                "Fmeter x",
                "Ratio"
            ],
            &rows,
        )
    );

    // Paper summary line: "On average, Fmeter is 1.4 times slower than a
    // vanilla kernel, whereas Ftrace is about 6.69 times slower."
    let mut mean_ftrace = 0.0;
    let mut mean_fmeter = 0.0;
    for row in &rows {
        mean_ftrace += row[4].parse::<f64>().unwrap();
        mean_fmeter += row[5].parse::<f64>().unwrap();
    }
    mean_ftrace /= rows.len() as f64;
    mean_fmeter /= rows.len() as f64;
    println!(
        "\nAverage slowdown: Fmeter {mean_fmeter:.2}x, Ftrace {mean_ftrace:.2}x \
         (paper: 1.4x and 6.69x)"
    );

    // Keep the build honest if someone breaks the cost model:
    assert!(
        mean_fmeter < 2.5,
        "Fmeter average slowdown degenerated: {mean_fmeter}"
    );
    assert!(
        mean_ftrace > 3.0,
        "Ftrace average slowdown collapsed: {mean_ftrace}"
    );
    let _ = standard_kernel as fn(u64) -> _; // shared harness linked
}
