//! Shared harness utilities for the table/figure regeneration binaries.
#![forbid(unsafe_code)]

pub mod harness;
pub use harness::*;
