//! Evaluation layer: the shared experiment harness and the regeneration
//! binaries for every table and figure of the Fmeter paper.
//!
//! This crate owns nothing algorithmic — it *drives* the stack the
//! other crates build (kernel-sim → trace → core → ir → ml) the way
//! the paper's evaluation does, and pins the results. It has two
//! halves:
//!
//! * **The harness** ([`harness`], re-exported at the crate root):
//!   deterministic building blocks shared by every binary —
//!   [`standard_kernel`] (the 16-CPU evaluation machine on the
//!   canonical image seed), [`collect_signatures`] (run a workload
//!   under the logging daemon), seeded synthetic corpora for the perf
//!   cases ([`synthetic_points`], [`synthetic_class_corpus`],
//!   [`synthetic_raw_signatures`]), tf-idf shortcuts and ASCII table
//!   rendering.
//! * **The binaries** (`src/bin/`): one per paper artifact —
//!   `table1_lmbench` … `table5_svm_myri10ge` (§4.1 overhead and §4.2
//!   classification), `fig1_boot_powerlaw` … `fig6_purity_vs_k`
//!   (Figures 1 and 4–6), the ablations (distance metric, sampling
//!   interval, tf/idf weighting), beyond-the-paper extensions, and two
//!   meta-binaries: `sanity_check` (the end-to-end smoke run asserting
//!   SVM accuracy 1.0 / 3-class purity 1.0) and `perf_baseline` (the
//!   machine-readable perf trajectory `BENCH_ir.json` that CI gates
//!   against 2x regressions, quick-mode on every push and full-mode
//!   nightly).
//!
//! Three criterion-style benches (`tracer_overhead`,
//! `signature_pipeline`, `learning`) measure the wall-clock hot paths;
//! `cargo bench --no-run` keeps them compiling in CI.
//!
//! See `docs/ARCHITECTURE.md` for where this layer sits in the
//! repository's data flow, and the README's table/figure index for the
//! binary-by-binary map.
#![forbid(unsafe_code)]

pub mod harness;
pub use harness::*;
