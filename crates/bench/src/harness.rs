//! Shared experiment harness: standard machines, signature collection
//! runs, dataset preparation, and table formatting for the regeneration
//! binaries.

use fmeter_core::{Fmeter, FmeterError, RawSignature};
use fmeter_ir::{Corpus, SparseVec, TermCounts, TfIdfModel, TfIdfOptions};
use fmeter_kernel_sim::{modules, CpuId, Kernel, KernelConfig, Nanos};
use fmeter_ml::Label;
use fmeter_workloads::{ApacheBench, Dbench, KCompile, NetperfReceive, Scp, WithBackground};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Corpus-scale synthetic signature set: `n` unit-norm vectors in a
/// `dim`-dimensional space with `nnz` non-zeros each, spread over four
/// latent class bands. The criterion benches and `perf_baseline` share
/// this generator so their numbers measure the same workload.
pub fn synthetic_points(n: usize, dim: usize, nnz: usize, seed: u64) -> Vec<SparseVec> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let classes = 4;
    let band = dim / classes;
    (0..n)
        .map(|i| {
            let base = (i % classes) * band;
            let pairs: Vec<(u32, f64)> = (0..nnz)
                .map(|k| (((base + (k * 13) % band) % dim) as u32, rng.random::<f64>()))
                .collect();
            SparseVec::from_pairs(dim, pairs)
                .expect("terms in range")
                .l2_normalized()
        })
        .collect()
}

/// `n` l2-normalised points over `classes` well-separated clusters —
/// the corpus shape of a fleet-scale signature database (many distinct
/// behaviour classes, each concentrated on its own kernel-function
/// band). Each class owns a contiguous `band`-term slice; every point
/// activates the first `nnz / 2` terms of its band (the class's hot
/// kernel functions, shared by all members) plus a per-point rotation
/// over the rest of the band, and a jittered weight on one shared
/// anchor term. The hot prefix keeps intra-class cohesion well above
/// the cross-class floor; the anchor keeps every pairwise distance
/// distinct — without it any two points with disjoint supports sit at
/// exactly sqrt(2) after normalisation, and that tie field makes
/// dendrograms non-unique (see `docs/CLUSTERING.md`).
pub fn synthetic_clustered_points(
    n: usize,
    classes: usize,
    band: usize,
    nnz: usize,
    seed: u64,
) -> Vec<SparseVec> {
    assert!(nnz <= band, "class band must fit the active terms");
    let dim = classes * band + 1;
    let anchor = (classes * band) as u32;
    let hot = nnz / 2;
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let base = (i % classes) * band;
            let mut pairs: Vec<(u32, f64)> = (0..nnz)
                .map(|k| {
                    let term = if k < hot {
                        base + k
                    } else {
                        base + hot + (k * 7 + i) % (band - hot)
                    };
                    (term as u32, 0.5 + rng.random::<f64>())
                })
                .collect();
            pairs.push((anchor, 0.2 + 0.1 * rng.random::<f64>()));
            SparseVec::from_pairs(dim, pairs)
                .expect("terms in range")
                .l2_normalized()
        })
        .collect()
}

/// `n` count documents over a `dim`-term space, each with ~`active`
/// expected active terms carrying uniform counts — the shared index/tf-idf
/// benchmark corpus.
pub fn synthetic_corpus(n: usize, dim: usize, active: usize, seed: u64) -> Corpus {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut corpus = Corpus::new(dim);
    for _ in 0..n {
        let mut counts = vec![0u64; dim];
        for c in counts.iter_mut() {
            if rng.random::<f32>() < active as f32 / dim as f32 {
                *c = 1 + (rng.random::<f64>() * 10_000.0) as u64;
            }
        }
        corpus.push(TermCounts::from_dense(&counts));
    }
    corpus
}

/// `n` count documents spread over `classes` behaviour classes in a
/// `dim`-term space: each class hammers its own band of hot functions
/// (the paper's premise — distinct workloads concentrate on distinct
/// kernel paths) on top of a small shared "daemon noise" band that most
/// documents touch. After tf-idf the corpus has the skewed impact
/// distribution a fleet-scale signature database shows: class terms are
/// rare and heavy (high idf), shared terms ubiquitous and light — the
/// shape WAND's per-term bounds exploit.
pub fn synthetic_class_corpus(n: usize, classes: usize, dim: usize, seed: u64) -> Corpus {
    let mut rng = SmallRng::seed_from_u64(seed);
    let shared = 40.min(dim / 8).max(1);
    // More classes than class-band slots would push `base` past `dim`;
    // fold the surplus classes together instead.
    let classes = classes.clamp(1, (dim - shared).max(1));
    let band = ((dim - shared) / classes).max(1);
    let mut corpus = Corpus::new(dim);
    for i in 0..n {
        let class = i % classes;
        let base = shared + class * band;
        let mut counts = vec![0u64; dim];
        // Ambient daemon activity: present in ~60% of intervals, so its
        // idf is small but non-zero and its postings span the corpus.
        for c in counts.iter_mut().take(shared) {
            if rng.random::<f32>() < 0.6 {
                *c = 500 + (rng.random::<f64>() * 1000.0) as u64;
            }
        }
        let hot = (band / 2).max(1);
        for k in 0..hot {
            counts[base + (k * 7) % band] = 1 + (rng.random::<f64>() * 10_000.0) as u64;
        }
        corpus.push(TermCounts::from_dense(&counts));
    }
    corpus
}

/// `n` labelled [`RawSignature`]s over the same banded class structure
/// as [`synthetic_class_corpus`] — the ingest-throughput benches feed
/// these through the incremental `SignatureDb` paths, which consume raw
/// daemon output rather than pre-built documents.
pub fn synthetic_raw_signatures(
    n: usize,
    classes: usize,
    dim: usize,
    seed: u64,
) -> Vec<RawSignature> {
    let corpus = synthetic_class_corpus(n, classes, dim, seed);
    corpus
        .iter()
        .enumerate()
        .map(|(i, doc)| {
            let mut counts = vec![0u64; dim];
            for (t, c) in doc.iter() {
                counts[t as usize] = c;
            }
            RawSignature {
                counts,
                started_at: Nanos(i as u64 * 1_000),
                ended_at: Nanos((i as u64 + 1) * 1_000),
                label: Some(format!("class{}", i % classes.max(1))),
            }
        })
        .collect()
}

/// The canonical kernel image seed (the "released 2.6.28 build").
// Grouped to read as kernel version 2.6.28, not a byte count.
#[allow(clippy::unusual_byte_groupings)]
pub const PAPER_IMAGE_SEED: u64 = 0x2_6_28;

/// Builds the standard evaluation machine: 16 logical CPUs (dual-socket
/// Nehalem with hyperthreads), 1000 Hz timer, canonical image.
pub fn standard_kernel(seed: u64) -> Kernel {
    Kernel::new(KernelConfig {
        num_cpus: 16,
        seed,
        timer_hz: 1000,
        image_seed: PAPER_IMAGE_SEED,
    })
    .expect("standard image builds")
}

/// The myri10ge driver variants of the Table 5 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Myri10geVariant {
    /// v1.5.1, default parameters (LRO on) — "normal operation".
    V151,
    /// v1.4.3, default parameters — "older / possibly buggy driver".
    V143,
    /// v1.5.1 with LRO disabled — "compromised configuration".
    V151NoLro,
}

impl Myri10geVariant {
    /// All three variants.
    pub const ALL: [Myri10geVariant; 3] = [
        Myri10geVariant::V151,
        Myri10geVariant::V143,
        Myri10geVariant::V151NoLro,
    ];

    /// Human-readable label matching the paper's Table 5 rows.
    pub fn label(&self) -> &'static str {
        match self {
            Myri10geVariant::V151 => "myri10ge 1.5.1",
            Myri10geVariant::V143 => "myri10ge 1.4.3",
            Myri10geVariant::V151NoLro => "myri10ge 1.5.1 LRO disabled",
        }
    }

    /// Builds the driver module.
    pub fn module(&self) -> fmeter_kernel_sim::KernelModule {
        match self {
            Myri10geVariant::V151 => modules::myri10ge_v151(),
            Myri10geVariant::V143 => modules::myri10ge_v143(),
            Myri10geVariant::V151NoLro => modules::myri10ge_v151_no_lro(),
        }
    }
}

/// A signature-collection workload of the paper's §4.2 experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureWorkload {
    /// Kernel compile.
    KCompile,
    /// Secure copy over the network.
    Scp,
    /// dbench disk throughput benchmark.
    Dbench,
    /// apachebench HTTP serving.
    ApacheBench,
    /// Netperf TCP stream receive through a myri10ge variant.
    Netperf(Myri10geVariant),
}

impl SignatureWorkload {
    /// The class label used in datasets.
    pub fn label(&self) -> &'static str {
        match self {
            SignatureWorkload::KCompile => "kcompile",
            SignatureWorkload::Scp => "scp",
            SignatureWorkload::Dbench => "dbench",
            SignatureWorkload::ApacheBench => "apachebench",
            SignatureWorkload::Netperf(v) => v.label(),
        }
    }
}

/// Collects `count` signatures of `workload` on a fresh standard machine,
/// sampling every `interval` of simulated time — one controlled run of
/// the paper's collection methodology ("collected the signatures every 10
/// seconds ... without interference").
///
/// # Errors
///
/// Propagates kernel/workload failures (none on standard images).
pub fn collect_signatures(
    workload: SignatureWorkload,
    count: usize,
    interval: Nanos,
    seed: u64,
) -> Result<Vec<RawSignature>, FmeterError> {
    let mut kernel = standard_kernel(seed);
    let fmeter = Fmeter::install(&mut kernel);
    // The paper's workloads ran alone on the machine; tasks spread over a
    // few CPUs.
    let cpus: Vec<CpuId> = (0..4).map(CpuId).collect();
    let mut logger = fmeter.logger(interval, kernel.now());
    let label = workload.label();
    // Every real run carries ambient daemon activity with drifting
    // intensity (paper §5: the logging daemon itself perturbs every
    // signature uniformly) — this is what gives same-class signatures
    // their natural spread.
    const BG_LO: f32 = 0.05;
    const BG_HI: f32 = 0.45;
    match workload {
        SignatureWorkload::KCompile => {
            let mut w = WithBackground::new(KCompile::new(seed ^ 0x6cc), seed, BG_LO, BG_HI);
            logger.collect(&mut kernel, &mut w, &cpus, count, Some(label))
        }
        SignatureWorkload::Scp => {
            let mut w = WithBackground::new(Scp::new(seed ^ 0x5c9), seed, BG_LO, BG_HI);
            logger.collect(&mut kernel, &mut w, &cpus, count, Some(label))
        }
        SignatureWorkload::Dbench => {
            let mut w = WithBackground::new(Dbench::new(seed ^ 0xdbe), seed, BG_LO, BG_HI);
            logger.collect(&mut kernel, &mut w, &cpus, count, Some(label))
        }
        SignatureWorkload::ApacheBench => {
            let mut w = WithBackground::new(ApacheBench::new(seed ^ 0xa9a), seed, BG_LO, BG_HI);
            logger.collect(&mut kernel, &mut w, &cpus, count, Some(label))
        }
        SignatureWorkload::Netperf(variant) => {
            kernel.load_module(variant.module())?;
            let mut w = WithBackground::new(
                NetperfReceive::new(seed ^ 0x4e7, "myri10ge"),
                seed,
                BG_LO,
                BG_HI,
            );
            logger.collect(&mut kernel, &mut w, &cpus, count, Some(label))
        }
    }
}

/// Fits tf-idf over the union corpus and transforms every signature —
/// "the difference is later transformed into tf-idf scores, once an
/// entire corpus is generated" (§3).
///
/// # Errors
///
/// Returns an error for an empty input.
pub fn tfidf_vectors(raw: &[RawSignature]) -> Result<Vec<SparseVec>, FmeterError> {
    tfidf_vectors_with(raw, TfIdfOptions::default())
}

/// Like [`tfidf_vectors`] but with explicit weighting options (for the
/// ablation benches).
///
/// # Errors
///
/// Returns an error for an empty input.
pub fn tfidf_vectors_with(
    raw: &[RawSignature],
    options: TfIdfOptions,
) -> Result<Vec<SparseVec>, FmeterError> {
    let first = raw.first().ok_or(FmeterError::NoSignatures)?;
    let mut corpus = Corpus::new(first.counts.len());
    for r in raw {
        corpus.push(r.to_term_counts());
    }
    let model = TfIdfModel::fit_with(&corpus, options)?;
    Ok(corpus.iter().map(|d| model.transform(d)).collect())
}

/// Builds a binary SVM dataset: positives get label `+1`, negatives `-1`,
/// tf-idf fitted over the union.
///
/// # Errors
///
/// Returns an error for empty inputs.
pub fn binary_dataset(
    positives: &[RawSignature],
    negatives: &[RawSignature],
) -> Result<(Vec<SparseVec>, Vec<Label>), FmeterError> {
    let mut all: Vec<RawSignature> = Vec::with_capacity(positives.len() + negatives.len());
    all.extend_from_slice(positives);
    all.extend_from_slice(negatives);
    let vectors = tfidf_vectors(&all)?;
    let labels: Vec<Label> = std::iter::repeat_n(1, positives.len())
        .chain(std::iter::repeat_n(-1, negatives.len()))
        .collect();
    Ok((vectors, labels))
}

/// Formats a fixed-width text table (the regeneration binaries print
/// paper tables with this).
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: Vec<String>| {
        let rendered: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}", w = w))
            .collect();
        out.push_str(rendered.join("  ").trim_end());
        out.push('\n');
    };
    line(&mut out, headers.iter().map(|s| s.to_string()).collect());
    line(&mut out, widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(&mut out, row.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns_columns() {
        let table = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    fn workload_labels_are_stable() {
        assert_eq!(SignatureWorkload::KCompile.label(), "kcompile");
        assert_eq!(
            SignatureWorkload::Netperf(Myri10geVariant::V151NoLro).label(),
            "myri10ge 1.5.1 LRO disabled"
        );
    }
}
