//! The exact-reference test layer for the sub-quadratic clustering tier.
//!
//! Every approximation in the ANN/SNN/warm-start stack is pinned here
//! against the exact algorithm it replaces:
//!
//! * [`AnnGraph::knn`] against brute-force k-nearest-neighbour lists
//!   (recall@10 on a 50-class corpus),
//! * [`Agglomerative::fit_snn`] against [`Agglomerative::fit_brute_force`]
//!   (exact cut-partition equality when the candidate graph is complete)
//!   and against the O(n²) NN-chain [`Agglomerative::fit`] (adjusted Rand
//!   index at a scale where exact equality is too strict),
//! * the incremental graph against its own invariants under random
//!   insert/remove interleaves (property-based).
//!
//! `docs/CLUSTERING.md` documents the contract tier by tier.

use fmeter_ir::{euclidean_distance, AnnGraph, SparseVec};
use fmeter_ml::metrics::adjusted_rand_index;
use fmeter_ml::{Agglomerative, Linkage, SnnParams};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A labelled corpus of `classes` well-separated behaviour classes:
/// each class owns a contiguous band of the term space and every point
/// activates `nnz` terms inside its band with random weights, plus a
/// jittered weight on one shared anchor term. The anchor keeps every
/// pairwise distance distinct — without it, any two points with
/// disjoint supports are *exactly* `sqrt(2)` apart after normalisation,
/// and the resulting tie field makes the dendrogram non-unique (merge
/// order between equal heights is implementation-defined, so exact
/// reference comparisons would be meaningless). Returns
/// `(points, labels)`. Mirrors the shape of the bench harness corpus
/// (which this crate cannot depend on without a cycle).
fn class_corpus(
    n: usize,
    classes: usize,
    band: usize,
    nnz: usize,
    seed: u64,
) -> (Vec<SparseVec>, Vec<usize>) {
    assert!(nnz <= band, "class band must fit the active terms");
    let dim = classes * band + 1;
    let anchor = (classes * band) as u32;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut points = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % classes;
        let base = class * band;
        let mut pairs: Vec<(u32, f64)> = (0..nnz)
            .map(|k| {
                (
                    (base + (k * 7 + i) % band) as u32,
                    0.5 + rng.random::<f64>(),
                )
            })
            .collect();
        pairs.push((anchor, 0.2 + 0.1 * rng.random::<f64>()));
        points.push(
            SparseVec::from_pairs(dim, pairs)
                .expect("terms in range")
                .l2_normalized(),
        );
        labels.push(class);
    }
    (points, labels)
}

/// Exact k-nearest neighbours of `points[i]` by linear scan.
fn exact_knn(points: &[SparseVec], i: usize, k: usize) -> Vec<usize> {
    let mut dists: Vec<(f64, usize)> = points
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != i)
        .map(|(j, p)| (euclidean_distance(&points[i], p).unwrap(), j))
        .collect();
    dists.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    dists.truncate(k);
    dists.into_iter().map(|(_, j)| j).collect()
}

#[test]
fn ann_recall_at_10_on_50_class_corpus() {
    // 50 classes x 20 points; every point's true 10-NN are its 19
    // same-class siblings' closest members, so recall measures whether
    // the beam search stays inside the right neighbourhood.
    let (points, _) = class_corpus(1000, 50, 12, 8, 42);
    let graph = AnnGraph::build(points[0].dim(), &points).unwrap();
    let k = 10;
    let mut hits = 0usize;
    let mut total = 0usize;
    for (i, p) in points.iter().enumerate() {
        let truth: Vec<usize> = exact_knn(&points, i, k);
        let approx = graph.knn(p, k + 1, 128).unwrap();
        // knn(query) may return the query itself (it is in the graph);
        // drop it before comparing.
        let approx: Vec<usize> = approx
            .into_iter()
            .map(|(d, _)| d)
            .filter(|&d| d != i)
            .take(k)
            .collect();
        hits += truth.iter().filter(|t| approx.contains(t)).count();
        total += k;
    }
    let recall = hits as f64 / total as f64;
    assert!(
        recall >= 0.95,
        "ANN recall@10 degraded below the pinned floor: {recall:.4}"
    );
}

#[test]
fn snn_with_complete_graph_matches_brute_force_at_every_cut() {
    // With knn >= n-1 the candidate graph is complete, every pairwise
    // distance is exact, and the SNN merge loop must be step-for-step
    // the brute-force reference: every cut of the dendrogram agrees.
    for (n, seed) in [(60usize, 1u64), (150, 2), (300, 3)] {
        let (points, _) = class_corpus(n, 10, 8, 5, seed);
        let params = SnnParams {
            knn: n,
            ..SnnParams::default()
        };
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let model = Agglomerative::new(linkage);
            let exact = model.fit_brute_force(&points).unwrap();
            let snn = model.fit_snn(&points, &params).unwrap();
            for k in 1..=n {
                assert_eq!(
                    snn.cut(k),
                    exact.cut(k),
                    "cut({k}) diverged at n={n} linkage={linkage:?}"
                );
            }
        }
    }
}

#[test]
fn snn_pruned_ari_vs_nn_chain_at_2k() {
    // At n=2000 the pruned path runs on a genuinely sparse candidate
    // graph (knn=32 of 1999 possible edges); pin its agreement with the
    // exact O(n²) NN-chain via the adjusted Rand index at the class cut.
    let classes = 50;
    let (points, labels) = class_corpus(2000, classes, 12, 8, 7);
    let model = Agglomerative::new(Linkage::Average);
    let exact = model.fit(&points).unwrap().cut(classes);
    let snn = model
        .fit_snn(&points, &SnnParams::default())
        .unwrap()
        .cut(classes);
    let ari_vs_exact = adjusted_rand_index(&snn, &exact).unwrap();
    assert!(
        ari_vs_exact >= 0.95,
        "SNN agglomeration drifted from the NN-chain: ARI {ari_vs_exact:.4}"
    );
    // And both tiers must still recover the planted classes.
    let ari_vs_truth = adjusted_rand_index(&snn, &labels).unwrap();
    assert!(
        ari_vs_truth >= 0.95,
        "SNN agglomeration lost the planted classes: ARI {ari_vs_truth:.4}"
    );
}

/// One step of a random graph workload.
#[derive(Debug, Clone)]
enum GraphOp {
    Insert(u64),
    Remove(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<GraphOp>> {
    prop::collection::vec(
        prop_oneof![
            // Bias towards inserts so the live set actually grows.
            any::<u64>().prop_map(GraphOp::Insert),
            any::<u64>().prop_map(GraphOp::Insert),
            any::<u64>().prop_map(GraphOp::Insert),
            (0usize..64).prop_map(GraphOp::Remove),
        ],
        1..48,
    )
}

/// A deterministic point from a seed (8 active terms of a 64-dim space).
fn seeded_point(seed: u64) -> SparseVec {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pairs: Vec<(u32, f64)> = (0..8)
        .map(|_| (rng.random::<u32>() % 64, 0.1 + rng.random::<f64>()))
        .collect();
    SparseVec::from_pairs(64, pairs)
        .expect("terms in range")
        .l2_normalized()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graph_invariants_hold_under_insert_remove_interleaves(ops in arb_ops()) {
        let mut graph = AnnGraph::new(64).max_degree(6).ef_construction(24);
        let mut live: Vec<usize> = Vec::new();
        let mut num_live = 0usize;
        for op in &ops {
            match op {
                GraphOp::Insert(seed) => {
                    let id = graph.insert(&seeded_point(*seed)).unwrap();
                    live.push(id);
                    num_live += 1;
                }
                GraphOp::Remove(idx) if !live.is_empty() => {
                    let id = live.swap_remove(idx % live.len());
                    graph.remove(id).unwrap();
                    num_live -= 1;
                }
                GraphOp::Remove(_) => {}
            }
        }
        prop_assert_eq!(graph.len(), num_live);
        // Slots are never reused: every id ever handed out stays
        // addressable, and exactly the non-removed ones are live.
        for &id in &live {
            prop_assert!(graph.is_live(id));
        }
        for node in 0..graph.num_slots() {
            let nbrs = graph.neighbors(node);
            if !graph.is_live(node) {
                prop_assert!(nbrs.is_empty(), "dead node {} keeps edges", node);
                continue;
            }
            // Degree bound, no self-loops, no duplicates, symmetry,
            // live endpoints only.
            prop_assert!(nbrs.len() <= 6, "degree bound violated at {}", node);
            let mut seen = std::collections::HashSet::new();
            for &m in nbrs {
                prop_assert!(m as usize != node, "self-loop at {}", node);
                prop_assert!(seen.insert(m), "duplicate edge {}->{}", node, m);
                prop_assert!(graph.is_live(m as usize), "edge to dead node {}", m);
                prop_assert!(
                    graph.neighbors(m as usize).contains(&(node as u32)),
                    "asymmetric edge {}->{}", node, m
                );
            }
        }
        // The surviving graph still answers queries over every live node.
        if num_live > 0 {
            let query = seeded_point(9999);
            let res = graph.knn(&query, num_live, 4 * num_live).unwrap();
            prop_assert_eq!(res.len(), num_live);
            for (d, _) in &res {
                prop_assert!(graph.is_live(*d));
            }
        }
    }

    #[test]
    fn knn_results_match_exact_on_live_set(
        seeds in prop::collection::vec(any::<u64>(), 2..24),
        remove_mask in prop::collection::vec(any::<bool>(), 2..24),
    ) {
        // Insert all, remove a random subset, then check that with an
        // exhaustive beam the survivors' k-NN are the exact k-NN.
        let mut graph = AnnGraph::new(64);
        let ids: Vec<usize> = seeds
            .iter()
            .map(|&s| graph.insert(&seeded_point(s)).unwrap())
            .collect();
        let mut survivors: Vec<(usize, SparseVec)> = Vec::new();
        for (i, &id) in ids.iter().enumerate() {
            if remove_mask.get(i).copied().unwrap_or(false) && graph.len() > 1 {
                graph.remove(id).unwrap();
            } else {
                survivors.push((id, seeded_point(seeds[i])));
            }
        }
        let points: Vec<SparseVec> = survivors.iter().map(|(_, p)| p.clone()).collect();
        for (i, (id, p)) in survivors.iter().enumerate() {
            let exact: Vec<usize> = exact_knn(&points, i, 3)
                .into_iter()
                .map(|j| survivors[j].0)
                .collect();
            let approx: Vec<usize> = graph
                .knn(p, 4, 4 * points.len())
                .unwrap()
                .into_iter()
                .map(|(d, _)| d)
                .filter(|d| d != id)
                .take(3)
                .collect();
            prop_assert_eq!(&approx, &exact);
        }
    }
}
