//! Property-based tests for the learning crate.

use fmeter_ir::{euclidean_distance, SparseVec};
use fmeter_ml::metrics::{majority_baseline, purity, BinaryConfusion};
use fmeter_ml::{Agglomerative, KMeans, Kernel, Linkage, SvmTrainer};
use proptest::prelude::*;

const DIM: usize = 8;

fn arb_points(min: usize, max: usize) -> impl Strategy<Value = Vec<SparseVec>> {
    prop::collection::vec(
        prop::collection::vec((0u32..DIM as u32, -50.0f64..50.0), 1..6),
        min..max,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|pairs| SparseVec::from_pairs(DIM, pairs).expect("terms in range"))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kmeans_assignments_point_to_nearest_centroid(
        points in arb_points(4, 24),
        k in 1usize..4,
        seed in 0u64..32,
    ) {
        prop_assume!(points.len() >= k);
        let r = KMeans::new(k).seed(seed).run(&points).unwrap();
        prop_assert_eq!(r.assignments.len(), points.len());
        prop_assert_eq!(r.centroids.len(), k);
        for (i, p) in points.iter().enumerate() {
            let assigned = euclidean_distance(p, &r.centroids[r.assignments[i]]).unwrap();
            for c in &r.centroids {
                let d = euclidean_distance(p, c).unwrap();
                prop_assert!(assigned <= d + 1e-9,
                    "point {} assigned to non-nearest centroid", i);
            }
        }
    }

    #[test]
    fn kmeans_inertia_nonincreasing_in_k(points in arb_points(8, 20), seed in 0u64..16) {
        // More clusters can only reduce (best-restart) inertia on average;
        // use restarts to avoid local-minimum flukes.
        let r1 = KMeans::new(1).seed(seed).restarts(3).run(&points).unwrap();
        let r2 = KMeans::new(2).seed(seed).restarts(3).run(&points).unwrap();
        prop_assert!(r2.inertia <= r1.inertia + 1e-6);
    }

    #[test]
    fn purity_is_bounded(
        pairs in prop::collection::vec((0usize..4, 0usize..4), 1..40),
    ) {
        let assignments: Vec<usize> = pairs.iter().map(|&(a, _)| a).collect();
        let classes: Vec<usize> = pairs.iter().map(|&(_, c)| c).collect();
        let p = purity(&assignments, &classes).unwrap();
        prop_assert!(p > 0.0 && p <= 1.0);
    }

    #[test]
    fn purity_of_identity_clustering_is_one(classes in prop::collection::vec(0usize..4, 1..40)) {
        let assignments: Vec<usize> = (0..classes.len()).collect();
        prop_assert_eq!(purity(&assignments, &classes).unwrap(), 1.0);
    }

    #[test]
    fn baseline_is_at_least_half(labels in prop::collection::vec(prop_oneof![Just(1i8), Just(-1i8)], 1..60)) {
        let b = majority_baseline(&labels).unwrap();
        prop_assert!((0.5..=1.0).contains(&b));
    }

    #[test]
    fn confusion_accuracy_complements_error(
        pairs in prop::collection::vec((prop_oneof![Just(1i8), Just(-1i8)], any::<bool>()), 1..40),
    ) {
        let truth: Vec<i8> = pairs.iter().map(|&(t, _)| t).collect();
        let flips: Vec<bool> = pairs.iter().map(|&(_, f)| f).collect();
        let predicted: Vec<i8> = truth
            .iter()
            .zip(&flips)
            .map(|(&t, &f)| if f { -t } else { t })
            .collect();
        let c = BinaryConfusion::from_labels(&truth, &predicted).unwrap();
        let errors = flips.iter().filter(|&&f| f).count();
        let expected = 1.0 - errors as f64 / truth.len() as f64;
        prop_assert!((c.accuracy() - expected).abs() < 1e-12);
    }

    #[test]
    fn dendrogram_structure_is_sound(points in arb_points(2, 16)) {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let tree = Agglomerative::new(linkage).fit(&points).unwrap();
            let n = points.len();
            prop_assert_eq!(tree.merges().len(), n - 1);
            // Root covers all points.
            prop_assert_eq!(tree.merges().last().unwrap().size, n);
            // Distances are non-negative.
            for m in tree.merges() {
                prop_assert!(m.distance >= 0.0);
            }
            // Cutting into k clusters yields exactly min(k, n) distinct ids.
            for k in 1..=n {
                let cut = tree.cut(k);
                let mut ids = cut.clone();
                ids.sort_unstable();
                ids.dedup();
                prop_assert_eq!(ids.len(), k);
                // ids are dense 0..k
                prop_assert_eq!(ids, (0..k).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn single_linkage_merge_distances_are_monotone(points in arb_points(3, 16)) {
        let tree = Agglomerative::new(Linkage::Single).fit(&points).unwrap();
        let mut prev = 0.0;
        for m in tree.merges() {
            prop_assert!(m.distance >= prev - 1e-9);
            prev = m.distance;
        }
    }

    #[test]
    fn nn_chain_dendrogram_matches_brute_force(points in arb_points(2, 20)) {
        // The NN-chain fast path must reproduce the O(n³) closest-pair
        // reference: same multiset of merge heights and, for every k, the
        // same flat clustering (`cut` relabels by first appearance, so
        // identical partitions give identical label vectors).
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let fast = Agglomerative::new(linkage).fit(&points).unwrap();
            let slow = Agglomerative::new(linkage).fit_brute_force(&points).unwrap();
            let mut slow_heights: Vec<f64> =
                slow.merges().iter().map(|m| m.distance).collect();
            slow_heights.sort_by(f64::total_cmp);
            let fast_heights: Vec<f64> =
                fast.merges().iter().map(|m| m.distance).collect();
            prop_assert_eq!(fast_heights.len(), slow_heights.len());
            for (a, b) in fast_heights.iter().zip(&slow_heights) {
                prop_assert!(
                    (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
                    "merge height {} vs {}", a, b
                );
            }
            for k in 1..=points.len() {
                prop_assert_eq!(fast.cut(k), slow.cut(k));
            }
        }
    }

    #[test]
    fn nn_chain_heights_are_sorted_for_all_linkages(points in arb_points(2, 20)) {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let tree = Agglomerative::new(linkage).fit(&points).unwrap();
            for pair in tree.merges().windows(2) {
                prop_assert!(pair[0].distance <= pair[1].distance);
            }
        }
    }

    #[test]
    fn parallel_kmeans_matches_sequential(
        points in arb_points(8, 40),
        k in 1usize..5,
        seed in 0u64..16,
        threads in 2usize..5,
    ) {
        prop_assume!(points.len() >= k);
        // Assignments are pure per-point functions of the centroids, and
        // the centroid partial sums regroup only by float-merge ulps
        // across thread counts — far below any decision boundary on this
        // generator's continuous random data, so labels and iteration
        // counts pin exactly (the deterministic runner keeps this stable).
        let sequential = KMeans::new(k).seed(seed).threads(1).run(&points).unwrap();
        let parallel = KMeans::new(k).seed(seed).threads(threads).run(&points).unwrap();
        prop_assert_eq!(&parallel.assignments, &sequential.assignments);
        prop_assert_eq!(parallel.iterations, sequential.iterations);
        prop_assert_eq!(parallel.converged, sequential.converged);
        let scale = sequential.inertia.abs().max(1.0);
        prop_assert!(
            (parallel.inertia - sequential.inertia).abs() <= 1e-9 * scale,
            "inertia {} vs {}", parallel.inertia, sequential.inertia
        );
    }

    #[test]
    fn svm_separates_translated_blobs(
        seed in 0u64..64,
        separation in 3.0f64..20.0,
        n in 4usize..14,
    ) {
        // Two blobs separated along dimension 0.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let jitter = (i as f64) * 0.05;
            xs.push(SparseVec::from_pairs(DIM, [(0, jitter), (1, 1.0)]).unwrap());
            ys.push(-1i8);
            xs.push(
                SparseVec::from_pairs(DIM, [(0, separation + jitter), (1, 1.0)]).unwrap(),
            );
            ys.push(1i8);
        }
        let model = SvmTrainer::new()
            .kernel(Kernel::Linear)
            .seed(seed)
            .train(&xs, &ys)
            .unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            prop_assert_eq!(model.predict(x), y);
        }
        prop_assert!(model.num_support_vectors() >= 2);
    }

    #[test]
    fn svm_decision_is_sign_of_f(points in arb_points(6, 20), seed in 0u64..8) {
        // Assign labels by dimension-0 sign of a hash; just check predict
        // equals sign(decision_function) even on messy data.
        let ys: Vec<i8> = (0..points.len()).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect();
        if let Ok(model) = SvmTrainer::new().seed(seed).max_passes(20).train(&points, &ys) {
            for p in &points {
                let f = model.decision_function(p);
                let pred = model.predict(p);
                prop_assert_eq!(pred, if f >= 0.0 { 1 } else { -1 });
            }
        }
    }
}
