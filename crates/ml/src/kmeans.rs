use fmeter_ir::{dot_sparse_dense, Metric, SparseVec, TermId};
use rand::rngs::SmallRng;
use rand::seq::index::sample;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::MlError;

/// A centroid kept as a reusable dense buffer plus a sparse view.
///
/// The dense form serves the O(nnz) inner products of the assignment step
/// (`x · c` without a merge-join); the sparse view serves the metrics that
/// genuinely need a merge over both supports (L1/Lp). Both are rewritten
/// in place after every update step — no per-iteration allocation once the
/// buffers reach their high-water capacity.
#[derive(Debug, Clone)]
struct CentroidBuf {
    dense: Vec<f64>,
    terms: Vec<TermId>,
    values: Vec<f64>,
    sq_norm: f64,
    norm: f64,
}

impl CentroidBuf {
    fn new(dim: usize) -> Self {
        CentroidBuf {
            dense: vec![0.0; dim],
            terms: Vec::new(),
            values: Vec::new(),
            sq_norm: 0.0,
            norm: 0.0,
        }
    }

    /// Overwrites the centroid with a data point (initialisation).
    fn set_from_point(&mut self, p: &SparseVec) {
        // Zero only the previous support, then scatter the new one.
        for &t in &self.terms {
            self.dense[t as usize] = 0.0;
        }
        self.terms.clear();
        self.values.clear();
        for (t, v) in p.iter() {
            self.dense[t as usize] = v;
            self.terms.push(t);
            self.values.push(v);
        }
        self.sq_norm = p.norm_l2_sq();
        self.norm = self.sq_norm.sqrt();
    }

    /// Overwrites the centroid with an already-divided mean vector.
    fn set_from_mean(&mut self, mean: &[f64]) {
        self.dense.copy_from_slice(mean);
        self.terms.clear();
        self.values.clear();
        let mut sq = 0.0;
        for (t, &v) in self.dense.iter().enumerate() {
            if v != 0.0 {
                self.terms.push(t as TermId);
                self.values.push(v);
                sq += v * v;
            }
        }
        self.sq_norm = sq;
        self.norm = sq.sqrt();
    }

    fn to_sparse(&self) -> SparseVec {
        SparseVec::from_dense(&self.dense)
    }
}

/// Centroid initialisation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum KMeansInit {
    /// k-means++ seeding (D² weighting) — better and still cheap.
    #[default]
    KMeansPlusPlus,
    /// Uniformly random distinct points as the initial centroids.
    Random,
}

/// Configuration + runner for Lloyd's K-means algorithm.
///
/// The paper uses K-means with the Euclidean (L2) distance as its primary
/// unsupervised method (§4.2.2); `K` is the expected number of behaviour
/// classes. The run is deterministic given [`seed`](Self::seed) and a
/// fixed [`threads`](Self::threads) setting (see `threads` for the
/// fine print on comparing *different* thread counts); the assignment
/// step fans out across [`std::thread::scope`] workers on large inputs,
/// with per-worker partial centroid sums merged at the barrier in chunk
/// order.
///
/// # Examples
///
/// ```
/// use fmeter_ir::SparseVec;
/// use fmeter_ml::KMeans;
///
/// let points = vec![
///     SparseVec::from_pairs(2, [(0, 0.0)]).unwrap(),
///     SparseVec::from_pairs(2, [(0, 0.1)]).unwrap(),
///     SparseVec::from_pairs(2, [(0, 10.0)]).unwrap(),
///     SparseVec::from_pairs(2, [(0, 10.1)]).unwrap(),
/// ];
/// let result = KMeans::new(2).seed(7).run(&points).unwrap();
/// assert_eq!(result.assignments[0], result.assignments[1]);
/// assert_ne!(result.assignments[0], result.assignments[2]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeans {
    k: usize,
    max_iters: usize,
    tol: f64,
    init: KMeansInit,
    seed: u64,
    metric: Metric,
    restarts: usize,
    threads: usize,
}

/// Minimum `n * k` before the assignment step fans out across a worker
/// pool; below this the pool spawn cost (one thread per worker for the
/// whole run, ~1 ms each on some kernels) dominates the distance work.
const PARALLEL_ASSIGN_THRESHOLD: usize = 1 << 16;

/// One worker's share of the assignment step: partial centroid sums
/// (flattened `k * dim`) and member counts, merged into the shared
/// accumulators at the barrier.
#[derive(Debug, Clone)]
struct AssignPartial {
    sums: Vec<f64>,
    counts: Vec<usize>,
}

impl AssignPartial {
    fn new(k: usize, dim: usize) -> Self {
        AssignPartial {
            sums: vec![0.0f64; k * dim],
            counts: vec![0usize; k],
        }
    }
}

/// Outcome of a K-means run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeansResult {
    /// Final centroids, `k` of them. The centroid of a cluster of
    /// signatures is the paper's "syndrome" characterising a behaviour.
    pub centroids: Vec<SparseVec>,
    /// `assignments[i]` is the cluster index of input point `i`.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their assigned centroid.
    pub inertia: f64,
    /// Number of Lloyd iterations performed (best restart).
    pub iterations: usize,
    /// Whether the best restart converged before `max_iters`.
    pub converged: bool,
}

impl KMeans {
    /// Creates a runner that will produce `k` clusters.
    pub fn new(k: usize) -> Self {
        KMeans {
            k,
            max_iters: 100,
            tol: 1e-9,
            init: KMeansInit::default(),
            seed: 0,
            metric: Metric::Euclidean,
            restarts: 1,
            threads: 0,
        }
    }

    /// Caps the worker threads of the assignment step: `0` (the default)
    /// picks [`std::thread::available_parallelism`] for large inputs and
    /// stays sequential for small ones; `1` forces the sequential path.
    ///
    /// Any fixed `threads` value is exactly reproducible (partial sums
    /// merge in deterministic chunk order). Across *different* thread
    /// counts, seeding is byte-identical and assignments are pure
    /// per-point functions of the centroids — but the centroid partial
    /// sums regroup, so from the second Lloyd iteration on the centroids
    /// can drift by last-bit ulps, which in principle can flip an exact
    /// assignment tie or a convergence check sitting exactly on `tol`.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the RNG seed (default 0). Same seed, same clustering.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the maximum number of Lloyd iterations (default 100).
    pub fn max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Sets the inertia-improvement convergence tolerance (default 1e-9).
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the initialisation strategy (default k-means++).
    pub fn init(mut self, init: KMeansInit) -> Self {
        self.init = init;
        self
    }

    /// Sets the distance metric (default Euclidean, as in the paper).
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Number of independent restarts; the result with the lowest inertia
    /// wins (default 1).
    pub fn restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts.max(1);
        self
    }

    /// Runs K-means over `points`.
    ///
    /// # Errors
    ///
    /// * [`MlError::InvalidConfig`] if `k == 0`,
    /// * [`MlError::EmptyInput`] if `points` is empty,
    /// * [`MlError::NotEnoughData`] if `points.len() < k`,
    /// * [`MlError::Ir`] if the points disagree on dimensionality.
    pub fn run(&self, points: &[SparseVec]) -> Result<KMeansResult, MlError> {
        self.validate_inputs(points)?;
        // Point norms are loop invariants of the whole fit: compute once.
        let sq_norms: Vec<f64> = points.iter().map(SparseVec::norm_l2_sq).collect();
        let norms: Vec<f64> = sq_norms.iter().map(|s| s.sqrt()).collect();
        let mut best: Option<KMeansResult> = None;
        for restart in 0..self.restarts {
            let mut rng = SmallRng::seed_from_u64(self.seed.wrapping_add(restart as u64));
            let result = self.run_once(points, &sq_norms, &norms, &mut rng);
            let better = match &best {
                None => true,
                Some(b) => result.inertia < b.inertia,
            };
            if better {
                best = Some(result);
            }
        }
        Ok(best.expect("at least one restart"))
    }

    /// The shared input contract of [`run`](Self::run) and
    /// [`fit_warm`](Self::fit_warm).
    fn validate_inputs(&self, points: &[SparseVec]) -> Result<(), MlError> {
        if self.k == 0 {
            return Err(MlError::InvalidConfig("k must be at least 1".into()));
        }
        if points.is_empty() {
            return Err(MlError::EmptyInput);
        }
        if points.len() < self.k {
            return Err(MlError::NotEnoughData {
                have: points.len(),
                need: self.k,
            });
        }
        let dim = points[0].dim();
        for p in points {
            if p.dim() != dim {
                return Err(MlError::Ir(fmeter_ir::IrError::DimensionMismatch {
                    left: dim,
                    right: p.dim(),
                }));
            }
        }
        // Reject invalid metric parameters up front so every inner-loop
        // kernel below is infallible.
        self.metric.validate().map_err(MlError::Ir)
    }

    /// Warm-started K-means: resumes Lloyd's algorithm from a previous
    /// assignment instead of re-seeding and restarting.
    ///
    /// The initial centroids are the per-cluster means of
    /// `prev_assignment`, accumulated in point order — exactly the
    /// arithmetic of the sequential update step — so feeding back a
    /// *converged* assignment reaches its fixpoint immediately: the
    /// first assignment pass reproduces `prev_assignment`, the run
    /// stops after that single iteration, and the returned centroids
    /// are bit-identical to the converged ones (pinned by the
    /// warm-start equivalence tests). After bounded churn the loop
    /// instead runs the few iterations needed to re-converge — the cost
    /// profile behind the incremental `recluster()` surface in
    /// `fmeter-core`, and the `cluster/kmeans_warm_vs_cold_10k` pin in
    /// `BENCH_ir.json`.
    ///
    /// Convergence is detected by assignment fixpoint (in addition to
    /// the inertia tolerance of [`run`](Self::run)); the loop always
    /// runs the deterministic sequential kernel, because a warm resume
    /// does so few passes that worker-pool startup would dominate.
    /// [`restarts`](Self::restarts) and [`init`](Self::init) are
    /// ignored — the previous assignment *is* the initialisation.
    ///
    /// # Errors
    ///
    /// Everything [`run`](Self::run) rejects, plus
    /// [`MlError::InvalidConfig`] when `prev_assignment` has the wrong
    /// length, names a cluster `>= k`, or leaves any cluster empty
    /// (callers with emptied clusters should fall back to a cold run).
    pub fn fit_warm(
        &self,
        points: &[SparseVec],
        prev_assignment: &[usize],
    ) -> Result<KMeansResult, MlError> {
        self.validate_inputs(points)?;
        if prev_assignment.len() != points.len() {
            return Err(MlError::InvalidConfig(format!(
                "warm start needs one previous assignment per point: {} assignments for {} points",
                prev_assignment.len(),
                points.len()
            )));
        }
        let mut counts = vec![0usize; self.k];
        for &a in prev_assignment {
            if a >= self.k {
                return Err(MlError::InvalidConfig(format!(
                    "previous assignment names cluster {a}, but k = {}",
                    self.k
                )));
            }
            counts[a] += 1;
        }
        if let Some(empty) = counts.iter().position(|&c| c == 0) {
            return Err(MlError::InvalidConfig(format!(
                "warm start needs every cluster populated; cluster {empty} is empty"
            )));
        }
        let dim = points[0].dim();
        let sq_norms: Vec<f64> = points.iter().map(SparseVec::norm_l2_sq).collect();
        let norms: Vec<f64> = sq_norms.iter().map(|s| s.sqrt()).collect();
        // Seed centroids as the means of the previous assignment, with
        // the accumulation order of the sequential assignment step.
        let mut sums = vec![vec![0.0f64; dim]; self.k];
        for (p, &a) in points.iter().zip(prev_assignment) {
            for (t, v) in p.iter() {
                sums[a][t as usize] += v;
            }
        }
        let mut centroids: Vec<CentroidBuf> = Vec::with_capacity(self.k);
        for (sum, &members) in sums.iter_mut().zip(&counts) {
            for v in sum.iter_mut() {
                *v /= members as f64;
            }
            let mut buf = CentroidBuf::new(dim);
            buf.set_from_mean(sum);
            centroids.push(buf);
        }
        Ok(self.lloyd_warm(points, &sq_norms, &norms, centroids, prev_assignment))
    }

    /// The warm-start Lloyd loop: sequential assignment with an
    /// assignment-fixpoint convergence check layered over the usual
    /// inertia tolerance.
    fn lloyd_warm(
        &self,
        points: &[SparseVec],
        sq_norms: &[f64],
        norms: &[f64],
        mut centroids: Vec<CentroidBuf>,
        prev_assignment: &[usize],
    ) -> KMeansResult {
        let dim = points[0].dim();
        let n = points.len();
        let mut current = prev_assignment.to_vec();
        let mut assignments = vec![0usize; n];
        let mut d_sqs = vec![0.0f64; n];
        let mut partial = AssignPartial::new(self.k, dim);
        let mut sums = vec![vec![0.0f64; dim]; self.k];
        let mut counts = vec![0usize; self.k];
        let mut previous_inertia = f64::INFINITY;
        let mut iterations = 0;
        let mut converged = false;
        for iter in 0..self.max_iters {
            iterations = iter + 1;
            self.assign_chunk(
                points,
                sq_norms,
                norms,
                &centroids,
                &mut assignments,
                &mut d_sqs,
                &mut partial,
            );
            let inertia: f64 = d_sqs.iter().sum();
            if assignments == current {
                // Assignment fixpoint: the centroids are already the
                // means of exactly this assignment (the seeding above,
                // or the previous round's update), so another update
                // pass would rewrite them with themselves.
                converged = true;
                break;
            }
            current.copy_from_slice(&assignments);
            Self::copy_partial(&mut sums, &mut counts, &partial);
            self.finish_update(
                points,
                sq_norms,
                norms,
                &mut centroids,
                &mut assignments,
                &mut sums,
                &mut counts,
            );
            // Empty-cluster repair inside finish_update may have moved a
            // point; keep the fixpoint reference in lockstep.
            current.copy_from_slice(&assignments);
            if (previous_inertia - inertia).abs() <= self.tol {
                converged = true;
                break;
            }
            previous_inertia = inertia;
        }
        // Final assignment against the final centroids (identical to
        // the in-loop pass when the fixpoint fired, by definition).
        self.assign_chunk(
            points,
            sq_norms,
            norms,
            &centroids,
            &mut assignments,
            &mut d_sqs,
            &mut partial,
        );
        let inertia: f64 = d_sqs.iter().sum();
        KMeansResult {
            centroids: centroids.iter().map(CentroidBuf::to_sparse).collect(),
            assignments,
            inertia,
            iterations,
            converged,
        }
    }

    fn run_once(
        &self,
        points: &[SparseVec],
        sq_norms: &[f64],
        norms: &[f64],
        rng: &mut SmallRng,
    ) -> KMeansResult {
        let dim = points[0].dim();
        let seeds = match self.init {
            KMeansInit::Random => self.init_random(points, rng),
            KMeansInit::KMeansPlusPlus => self.init_plusplus(points, rng),
        };
        let mut centroids: Vec<CentroidBuf> = Vec::with_capacity(self.k);
        for &s in &seeds {
            let mut c = CentroidBuf::new(dim);
            c.set_from_point(&points[s]);
            centroids.push(c);
        }
        let threads = self.effective_threads(points.len());
        if threads <= 1 {
            self.lloyd_sequential(points, sq_norms, norms, centroids)
        } else {
            self.lloyd_parallel(points, sq_norms, norms, centroids, threads)
        }
    }

    /// The Lloyd loop with an inline single-threaded assignment step.
    fn lloyd_sequential(
        &self,
        points: &[SparseVec],
        sq_norms: &[f64],
        norms: &[f64],
        mut centroids: Vec<CentroidBuf>,
    ) -> KMeansResult {
        let dim = points[0].dim();
        let n = points.len();
        let mut assignments = vec![0usize; n];
        let mut d_sqs = vec![0.0f64; n];
        // Reusable accumulators — allocated once per run, not once per
        // iteration.
        let mut partial = AssignPartial::new(self.k, dim);
        let mut sums = vec![vec![0.0f64; dim]; self.k];
        let mut counts = vec![0usize; self.k];
        let mut previous_inertia = f64::INFINITY;
        let mut iterations = 0;
        let mut converged = false;
        for iter in 0..self.max_iters {
            iterations = iter + 1;
            // Assignment step: O(nnz) per point-centroid pair, no
            // temporaries.
            self.assign_chunk(
                points,
                sq_norms,
                norms,
                &centroids,
                &mut assignments,
                &mut d_sqs,
                &mut partial,
            );
            let inertia: f64 = d_sqs.iter().sum();
            // Single worker: its partial IS the merged state — overwrite
            // instead of zeroing the global arrays and re-adding.
            Self::copy_partial(&mut sums, &mut counts, &partial);
            self.finish_update(
                points,
                sq_norms,
                norms,
                &mut centroids,
                &mut assignments,
                &mut sums,
                &mut counts,
            );
            if (previous_inertia - inertia).abs() <= self.tol {
                converged = true;
                break;
            }
            previous_inertia = inertia;
        }
        // Final assignment against the final centroids.
        self.assign_chunk(
            points,
            sq_norms,
            norms,
            &centroids,
            &mut assignments,
            &mut d_sqs,
            &mut partial,
        );
        let inertia: f64 = d_sqs.iter().sum();
        KMeansResult {
            centroids: centroids.iter().map(CentroidBuf::to_sparse).collect(),
            assignments,
            inertia,
            iterations,
            converged,
        }
    }

    /// The Lloyd loop over a pool of `threads` workers that live for the
    /// whole run: spawning threads per iteration costs up to a
    /// millisecond on some kernels, which would swallow the parallel
    /// speed-up, so each worker blocks on a channel and processes its
    /// fixed chunk of points every round. Centroids travel through an
    /// `RwLock` (workers read during the assignment phase, the main
    /// thread writes strictly between rounds), and the chunk buffers
    /// travel by ownership through the channels — no locking inside the
    /// per-point hot loop.
    fn lloyd_parallel(
        &self,
        points: &[SparseVec],
        sq_norms: &[f64],
        norms: &[f64],
        centroids: Vec<CentroidBuf>,
        threads: usize,
    ) -> KMeansResult {
        use std::sync::{mpsc, RwLock};

        /// One worker's chunk: buffer ownership moves main -> worker ->
        /// main every round.
        struct Job {
            chunk: usize,
            lo: usize,
            hi: usize,
            assignments: Vec<usize>,
            d_sqs: Vec<f64>,
            partial: AssignPartial,
        }

        let dim = points[0].dim();
        let n = points.len();
        let chunk_len = n.div_ceil(threads);
        let centroid_lock = RwLock::new(centroids);
        let (done_tx, done_rx) = mpsc::channel::<Job>();
        std::thread::scope(|s| {
            let mut job_txs = Vec::with_capacity(threads);
            let mut slots: Vec<Option<Job>> = Vec::with_capacity(threads);
            for t in 0..threads {
                let (job_tx, job_rx) = mpsc::channel::<Job>();
                job_txs.push(job_tx);
                let lo = (t * chunk_len).min(n);
                let hi = ((t + 1) * chunk_len).min(n);
                slots.push(Some(Job {
                    chunk: t,
                    lo,
                    hi,
                    assignments: vec![0usize; hi - lo],
                    d_sqs: vec![0.0f64; hi - lo],
                    partial: AssignPartial::new(self.k, dim),
                }));
                let done_tx = done_tx.clone();
                let centroid_lock = &centroid_lock;
                s.spawn(move || {
                    while let Ok(mut job) = job_rx.recv() {
                        let centroids = centroid_lock.read().expect("centroid lock");
                        self.assign_chunk(
                            &points[job.lo..job.hi],
                            &sq_norms[job.lo..job.hi],
                            &norms[job.lo..job.hi],
                            &centroids,
                            &mut job.assignments,
                            &mut job.d_sqs,
                            &mut job.partial,
                        );
                        drop(centroids);
                        if done_tx.send(job).is_err() {
                            break;
                        }
                    }
                });
            }
            // One parallel assignment round: dispatch every chunk, wait
            // for all of them back (the barrier), copy into the global
            // per-point buffers.
            let assign_round =
                |slots: &mut Vec<Option<Job>>, assignments: &mut [usize], d_sqs: &mut [f64]| {
                    for (tx, slot) in job_txs.iter().zip(slots.iter_mut()) {
                        tx.send(slot.take().expect("job checked in"))
                            .expect("worker alive");
                    }
                    for _ in 0..threads {
                        let job = done_rx.recv().expect("worker alive");
                        let chunk = job.chunk;
                        slots[chunk] = Some(job);
                    }
                    for job in slots.iter().flatten() {
                        assignments[job.lo..job.hi].copy_from_slice(&job.assignments);
                        d_sqs[job.lo..job.hi].copy_from_slice(&job.d_sqs);
                    }
                };
            let mut assignments = vec![0usize; n];
            let mut d_sqs = vec![0.0f64; n];
            let mut sums = vec![vec![0.0f64; dim]; self.k];
            let mut counts = vec![0usize; self.k];
            let mut previous_inertia = f64::INFINITY;
            let mut iterations = 0;
            let mut converged = false;
            for iter in 0..self.max_iters {
                iterations = iter + 1;
                assign_round(&mut slots, &mut assignments, &mut d_sqs);
                // Summed in point order: bit-identical to sequential.
                let inertia: f64 = d_sqs.iter().sum();
                // Merge the workers' partial sums in chunk order
                // (deterministic for a fixed thread count). The first
                // partial overwrites the global buffers outright — the
                // barrier no longer pays a zeroing pass per round.
                let mut first = true;
                for job in slots.iter().flatten() {
                    if first {
                        Self::copy_partial(&mut sums, &mut counts, &job.partial);
                        first = false;
                    } else {
                        Self::merge_partial(&mut sums, &mut counts, &job.partial);
                    }
                }
                if first {
                    Self::reset_accumulators(&mut sums, &mut counts);
                }
                {
                    let mut centroids = centroid_lock.write().expect("centroid lock");
                    self.finish_update(
                        points,
                        sq_norms,
                        norms,
                        &mut centroids,
                        &mut assignments,
                        &mut sums,
                        &mut counts,
                    );
                }
                if (previous_inertia - inertia).abs() <= self.tol {
                    converged = true;
                    break;
                }
                previous_inertia = inertia;
            }
            // Final assignment against the final centroids.
            assign_round(&mut slots, &mut assignments, &mut d_sqs);
            let inertia: f64 = d_sqs.iter().sum();
            drop(job_txs); // workers drain and exit before the scope joins
            let centroids = centroid_lock.read().expect("centroid lock");
            KMeansResult {
                centroids: centroids.iter().map(CentroidBuf::to_sparse).collect(),
                assignments,
                inertia,
                iterations,
                converged,
            }
        })
    }

    /// Zeroes the merged update-step accumulators.
    fn reset_accumulators(sums: &mut [Vec<f64>], counts: &mut [usize]) {
        for s in sums.iter_mut() {
            s.fill(0.0);
        }
        counts.fill(0);
    }

    /// Overwrites the merged accumulators with one worker's partial —
    /// the double-buffered handoff for the *first* partial of a round,
    /// replacing a full zeroing pass over the global arrays. Partial
    /// sums are never `-0.0` (accumulation starts at `+0.0`, and under
    /// default rounding IEEE-754 addition cannot reach `-0.0` from
    /// there), so the straight copy is bit-identical to zero-then-add.
    fn copy_partial(sums: &mut [Vec<f64>], counts: &mut [usize], part: &AssignPartial) {
        let dim = sums.first().map_or(0, Vec::len);
        for (c, sum) in sums.iter_mut().enumerate() {
            counts[c] = part.counts[c];
            sum.copy_from_slice(&part.sums[c * dim..(c + 1) * dim]);
        }
    }

    /// Folds one worker's partial centroid sums and counts into the
    /// merged accumulators.
    fn merge_partial(sums: &mut [Vec<f64>], counts: &mut [usize], part: &AssignPartial) {
        let dim = sums.first().map_or(0, Vec::len);
        for (c, sum) in sums.iter_mut().enumerate() {
            counts[c] += part.counts[c];
            let src = &part.sums[c * dim..(c + 1) * dim];
            for (dst, &v) in sum.iter_mut().zip(src) {
                if v != 0.0 {
                    *dst += v;
                }
            }
        }
    }

    /// Second half of a Lloyd iteration, after `sums`/`counts` hold the
    /// merged per-cluster accumulations: empty clusters adopt the point
    /// farthest from its centroid, then every centroid is rewritten to
    /// its cluster mean.
    #[allow(clippy::too_many_arguments)]
    fn finish_update(
        &self,
        points: &[SparseVec],
        sq_norms: &[f64],
        norms: &[f64],
        centroids: &mut [CentroidBuf],
        assignments: &mut [usize],
        sums: &mut [Vec<f64>],
        counts: &mut [usize],
    ) {
        // Empty clusters adopt the point farthest from its centroid.
        for c in 0..self.k {
            if counts[c] == 0 {
                let far_idx = (0..points.len())
                    .map(|i| {
                        let a = assignments[i];
                        let d_sq = self.point_centroid_dist_sq(
                            &points[i],
                            sq_norms[i],
                            norms[i],
                            &centroids[a],
                        );
                        (i, d_sq)
                    })
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("points is non-empty")
                    .0;
                assignments[far_idx] = c;
                counts[c] = 1;
                sums[c].fill(0.0);
                for (t, v) in points[far_idx].iter() {
                    sums[c][t as usize] = v;
                }
                // Note: the donor cluster keeps its stale sum this round;
                // the next iteration's assignment step repairs it.
            }
        }
        for (c, sum) in sums.iter_mut().enumerate() {
            let members = counts[c] as f64;
            for v in sum.iter_mut() {
                *v /= members;
            }
            centroids[c].set_from_mean(sum);
        }
    }

    /// Worker-thread count for the assignment step over `n` points.
    fn effective_threads(&self, n: usize) -> usize {
        let requested = if self.threads > 0 {
            self.threads
        } else if n * self.k >= PARALLEL_ASSIGN_THRESHOLD {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            1
        };
        requested.clamp(1, n.max(1))
    }

    /// Assigns one contiguous chunk of points, accumulating the chunk's
    /// centroid sums and counts into `part` (zeroed here, by the owning
    /// worker).
    ///
    /// Assignments and squared distances are pure per-point functions of
    /// the current centroids, so a single pass is thread-count
    /// independent given the same centroids.
    #[allow(clippy::too_many_arguments)]
    fn assign_chunk(
        &self,
        points: &[SparseVec],
        sq_norms: &[f64],
        norms: &[f64],
        centroids: &[CentroidBuf],
        assignments: &mut [usize],
        d_sqs: &mut [f64],
        part: &mut AssignPartial,
    ) {
        let dim = centroids[0].dense.len();
        part.sums.fill(0.0);
        part.counts.fill(0);
        for (i, p) in points.iter().enumerate() {
            let (cluster, d_sq) = self.nearest(centroids, p, sq_norms[i], norms[i]);
            assignments[i] = cluster;
            d_sqs[i] = d_sq;
            part.counts[cluster] += 1;
            let row = &mut part.sums[cluster * dim..(cluster + 1) * dim];
            for (t, v) in p.iter() {
                row[t as usize] += v;
            }
        }
    }

    /// Squared distance from a point to a centroid buffer under the
    /// configured metric, with zero heap allocation.
    ///
    /// Euclidean expands to `‖x‖² − 2·x·c + ‖c‖²` against the dense
    /// centroid (O(nnz(x)) instead of a merge over both supports); cosine
    /// reuses the cached norms; L1/Lp merge-join the point against the
    /// centroid's sparse view.
    fn point_centroid_dist_sq(
        &self,
        p: &SparseVec,
        p_sq_norm: f64,
        p_norm: f64,
        c: &CentroidBuf,
    ) -> f64 {
        match self.metric {
            Metric::Euclidean => {
                let dot = dot_sparse_dense(p.terms(), p.values(), &c.dense);
                // Cancellation can leave a tiny negative; clamp to keep
                // sqrt-free inertia sums non-negative.
                (p_sq_norm - 2.0 * dot + c.sq_norm).max(0.0)
            }
            Metric::Cosine => {
                let denom = p_norm * c.norm;
                let sim = if denom == 0.0 {
                    0.0
                } else {
                    (dot_sparse_dense(p.terms(), p.values(), &c.dense) / denom).clamp(-1.0, 1.0)
                };
                let d = 1.0 - sim;
                d * d
            }
            metric => metric
                .distance_sq_slices(p.terms(), p.values(), &c.terms, &c.values)
                .expect("metric parameters validated in run()"),
        }
    }

    fn nearest(
        &self,
        centroids: &[CentroidBuf],
        p: &SparseVec,
        p_sq_norm: f64,
        p_norm: f64,
    ) -> (usize, f64) {
        let mut best = (0usize, f64::INFINITY);
        for (c, centroid) in centroids.iter().enumerate() {
            let d_sq = self.point_centroid_dist_sq(p, p_sq_norm, p_norm, centroid);
            if d_sq < best.1 {
                best = (c, d_sq);
            }
        }
        best
    }

    /// Uniformly random distinct seed points.
    fn init_random(&self, points: &[SparseVec], rng: &mut SmallRng) -> Vec<usize> {
        sample(rng, points.len(), self.k).iter().collect()
    }

    /// k-means++ D² seeding over point indices; distances use the fused
    /// squared-distance kernel directly (no sqrt/square round trip and no
    /// difference vectors).
    fn init_plusplus(&self, points: &[SparseVec], rng: &mut SmallRng) -> Vec<usize> {
        let metric = self.metric;
        let d_sq = |a: &SparseVec, b: &SparseVec| -> f64 {
            metric
                .distance_sq_slices(a.terms(), a.values(), b.terms(), b.values())
                .expect("metric parameters validated in run()")
        };
        let mut seeds = Vec::with_capacity(self.k);
        seeds.push(rng.random_range(0..points.len()));
        let first = &points[seeds[0]];
        let mut dist2: Vec<f64> = points.iter().map(|p| d_sq(p, first)).collect();
        while seeds.len() < self.k {
            let total: f64 = dist2.iter().sum();
            let next = if total <= 0.0 {
                // All remaining points coincide with a centroid; pick any.
                rng.random_range(0..points.len())
            } else {
                let mut target = rng.random::<f64>() * total;
                let mut chosen = points.len() - 1;
                for (i, &d) in dist2.iter().enumerate() {
                    target -= d;
                    if target <= 0.0 {
                        chosen = i;
                        break;
                    }
                }
                chosen
            };
            let centroid = &points[next];
            for (i, p) in points.iter().enumerate() {
                let d = d_sq(p, centroid);
                if d < dist2[i] {
                    dist2[i] = d;
                }
            }
            seeds.push(next);
        }
        seeds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated blobs on a line.
    fn blobs() -> Vec<SparseVec> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(SparseVec::from_pairs(4, [(0, i as f64 * 0.01)]).unwrap());
            pts.push(SparseVec::from_pairs(4, [(0, 100.0 + i as f64 * 0.01)]).unwrap());
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = blobs();
        let r = KMeans::new(2).seed(42).run(&pts).unwrap();
        // Even indices are blob A, odd are blob B.
        let a = r.assignments[0];
        let b = r.assignments[1];
        assert_ne!(a, b);
        for i in 0..pts.len() {
            assert_eq!(r.assignments[i], if i % 2 == 0 { a } else { b });
        }
        assert!(r.converged);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = blobs();
        let r1 = KMeans::new(2).seed(7).run(&pts).unwrap();
        let r2 = KMeans::new(2).seed(7).run(&pts).unwrap();
        assert_eq!(r1.assignments, r2.assignments);
        assert_eq!(r1.inertia, r2.inertia);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = blobs();
        let r = KMeans::new(pts.len())
            .seed(1)
            .restarts(5)
            .run(&pts)
            .unwrap();
        assert!(r.inertia < 1e-18, "inertia {} should be ~0", r.inertia);
    }

    #[test]
    fn k_one_centroid_is_mean() {
        let pts = vec![
            SparseVec::from_pairs(2, [(0, 0.0)]).unwrap(),
            SparseVec::from_pairs(2, [(0, 4.0)]).unwrap(),
        ];
        let r = KMeans::new(1).run(&pts).unwrap();
        assert!((r.centroids[0].get(0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn assignment_is_nearest_centroid() {
        let pts = blobs();
        let r = KMeans::new(2).seed(3).run(&pts).unwrap();
        for (i, p) in pts.iter().enumerate() {
            let mut best = (usize::MAX, f64::INFINITY);
            for (c, centroid) in r.centroids.iter().enumerate() {
                let d = fmeter_ir::euclidean_distance(p, centroid).unwrap();
                if d < best.1 {
                    best = (c, d);
                }
            }
            assert_eq!(r.assignments[i], best.0);
        }
    }

    #[test]
    fn rejects_bad_configs() {
        let pts = blobs();
        assert!(matches!(
            KMeans::new(0).run(&pts),
            Err(MlError::InvalidConfig(_))
        ));
        assert!(matches!(KMeans::new(2).run(&[]), Err(MlError::EmptyInput)));
        assert!(matches!(
            KMeans::new(100).run(&pts),
            Err(MlError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn rejects_mixed_dimensions() {
        let pts = vec![SparseVec::zeros(2), SparseVec::zeros(3)];
        assert!(matches!(KMeans::new(1).run(&pts), Err(MlError::Ir(_))));
    }

    #[test]
    fn random_init_also_separates() {
        let pts = blobs();
        let r = KMeans::new(2)
            .init(KMeansInit::Random)
            .seed(11)
            .restarts(3)
            .run(&pts)
            .unwrap();
        assert_ne!(r.assignments[0], r.assignments[1]);
    }

    #[test]
    fn duplicate_points_do_not_crash_plusplus() {
        let pts = vec![SparseVec::from_pairs(2, [(0, 1.0)]).unwrap(); 5];
        let r = KMeans::new(3).seed(5).run(&pts).unwrap();
        assert_eq!(r.assignments.len(), 5);
    }

    #[test]
    fn parallel_assignment_matches_sequential() {
        // Enough points that the auto path would already parallelize;
        // force explicit thread counts to compare them all.
        let pts: Vec<SparseVec> = (0..600)
            .map(|i| {
                let band = (i % 3) as u32 * 8;
                SparseVec::from_pairs(
                    24,
                    (0..4u32).map(|k| (band + k, ((i * 31 + k as usize * 7) % 97) as f64)),
                )
                .unwrap()
            })
            .collect();
        let sequential = KMeans::new(3).seed(9).threads(1).run(&pts).unwrap();
        for threads in [2usize, 3, 8] {
            let parallel = KMeans::new(3).seed(9).threads(threads).run(&pts).unwrap();
            assert_eq!(
                parallel.assignments, sequential.assignments,
                "{threads} threads"
            );
            let rel = (parallel.inertia - sequential.inertia).abs()
                / sequential.inertia.max(f64::MIN_POSITIVE);
            assert!(rel < 1e-9, "inertia drift {rel} at {threads} threads");
            assert_eq!(parallel.iterations, sequential.iterations);
        }
    }

    #[test]
    fn fit_warm_converged_input_stops_in_one_iteration() {
        let pts = blobs();
        let cold = KMeans::new(2).seed(7).threads(1).run(&pts).unwrap();
        assert!(cold.converged);
        let warm = KMeans::new(2).fit_warm(&pts, &cold.assignments).unwrap();
        assert!(warm.converged);
        assert_eq!(warm.iterations, 1);
        assert_eq!(warm.assignments, cold.assignments);
        // Bit-identical centroids: the warm seeding replays the exact
        // accumulation arithmetic of the sequential update step.
        for (w, c) in warm.centroids.iter().zip(&cold.centroids) {
            assert_eq!(w.terms(), c.terms());
            assert_eq!(w.values(), c.values());
        }
        assert_eq!(warm.inertia, cold.inertia);
    }

    #[test]
    fn fit_warm_reconverges_after_churn() {
        let pts = blobs();
        let cold = KMeans::new(2).seed(7).threads(1).run(&pts).unwrap();
        // Perturb a handful of assignments: the warm run must repair
        // them and land back on the cold clustering.
        let mut stale = cold.assignments.clone();
        for i in [0usize, 3, 8] {
            stale[i] = 1 - stale[i];
        }
        let warm = KMeans::new(2).fit_warm(&pts, &stale).unwrap();
        assert!(warm.converged);
        assert!(warm.iterations <= 3, "took {} iterations", warm.iterations);
        assert_eq!(warm.assignments, cold.assignments);
        assert!((warm.inertia - cold.inertia).abs() <= 1e-9 * cold.inertia.max(1.0));
    }

    #[test]
    fn fit_warm_rejects_bad_assignments() {
        let pts = blobs();
        // Wrong length.
        assert!(matches!(
            KMeans::new(2).fit_warm(&pts, &[0, 1]),
            Err(MlError::InvalidConfig(_))
        ));
        // Cluster id out of range.
        let mut bad = vec![0usize; pts.len()];
        bad[0] = 5;
        assert!(matches!(
            KMeans::new(2).fit_warm(&pts, &bad),
            Err(MlError::InvalidConfig(_))
        ));
        // An empty cluster: callers must fall back to a cold run.
        let empty = vec![0usize; pts.len()];
        assert!(matches!(
            KMeans::new(2).fit_warm(&pts, &empty),
            Err(MlError::InvalidConfig(_))
        ));
        // And the shared input contract still applies.
        assert!(matches!(
            KMeans::new(0).fit_warm(&pts, &[]),
            Err(MlError::InvalidConfig(_))
        ));
        assert!(matches!(
            KMeans::new(2).fit_warm(&[], &[]),
            Err(MlError::EmptyInput)
        ));
    }

    #[test]
    fn more_threads_than_points_is_safe() {
        let pts = blobs();
        let r = KMeans::new(2).seed(4).threads(64).run(&pts).unwrap();
        assert_eq!(r.assignments.len(), pts.len());
        assert_ne!(r.assignments[0], r.assignments[1]);
    }

    #[test]
    fn cosine_metric_clusters_by_direction() {
        // Two directions, different magnitudes.
        let pts = vec![
            SparseVec::from_pairs(2, [(0, 1.0)]).unwrap(),
            SparseVec::from_pairs(2, [(0, 50.0)]).unwrap(),
            SparseVec::from_pairs(2, [(1, 1.0)]).unwrap(),
            SparseVec::from_pairs(2, [(1, 80.0)]).unwrap(),
        ];
        let r = KMeans::new(2)
            .metric(Metric::Cosine)
            .seed(2)
            .restarts(4)
            .run(&pts)
            .unwrap();
        assert_eq!(r.assignments[0], r.assignments[1]);
        assert_eq!(r.assignments[2], r.assignments[3]);
        assert_ne!(r.assignments[0], r.assignments[2]);
    }
}
