//! Statistical data analysis for Fmeter signatures.
//!
//! Implements the learning machinery the paper evaluates in §4.2:
//!
//! * [`KMeans`] — Lloyd's algorithm with k-means++ or random initialisation
//!   (used for the purity experiments of Figures 5 and 6),
//! * [`Agglomerative`] — hierarchical clustering with single-, complete-, and
//!   average-linkage, producing the Figure-4 style dendrograms,
//! * [`SvmTrainer`] / [`SvmModel`] — a soft-margin C-SVM trained with
//!   sequential minimal optimisation, standing in for `SVMlight`
//!   (Tables 4 and 5),
//! * [`CrossValidation`] — the paper's K-fold protocol (fold *i* is the test
//!   set, fold *i+1 mod K* the validation set used to tune `C`),
//! * [`metrics`] — accuracy/precision/recall, majority baseline, and cluster
//!   purity.
//!
//! All algorithms are deterministic given a seed, operate on
//! [`fmeter_ir::SparseVec`] signatures, and use the Euclidean (L2) distance
//! by default, exactly as the paper does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cv;
mod ensemble;
mod error;
mod hierarchical;
mod kmeans;
pub mod metrics;
mod svm;
mod tree;

pub use cv::{CrossValidation, CvReport, FoldOutcome};
pub use ensemble::{AdaBoost, AdaBoostModel, Bagging, BaggingModel};
pub use error::MlError;
pub use hierarchical::{Agglomerative, Dendrogram, Linkage, Merge};
pub use kmeans::{KMeans, KMeansInit, KMeansResult};
pub use svm::{Kernel, SvmModel, SvmTrainer};
pub use tree::{DecisionTree, DecisionTreeTrainer};

/// A class label for binary classification: `+1` or `-1`.
///
/// The paper's SVM experiments always label one behaviour `+1` and the
/// other(s) `-1`.
pub type Label = i8;
