//! Statistical data analysis for Fmeter signatures.
//!
//! Implements the learning machinery the paper evaluates in §4.2:
//!
//! * [`KMeans`] — Lloyd's algorithm with k-means++ or random initialisation
//!   (used for the purity experiments of Figures 5 and 6),
//! * [`Agglomerative`] — hierarchical clustering with single-, complete-, and
//!   average-linkage, producing the Figure-4 style dendrograms,
//! * [`SvmTrainer`] / [`SvmModel`] — a soft-margin C-SVM trained with
//!   sequential minimal optimisation, standing in for `SVMlight`
//!   (Tables 4 and 5),
//! * [`CrossValidation`] — the paper's K-fold protocol (fold *i* is the test
//!   set, fold *i+1 mod K* the validation set used to tune `C`),
//! * [`metrics`] — accuracy/precision/recall, majority baseline, and cluster
//!   purity.
//!
//! Beyond the paper's §4.2 set, the crate carries the extension
//! learners ([`DecisionTree`], [`AdaBoost`], [`Bagging`]) exercised by
//! the `extension_classifiers` binary.
//!
//! All algorithms are deterministic given a seed, operate on
//! [`fmeter_ir::SparseVec`] signatures, and use the Euclidean (L2) distance
//! by default, exactly as the paper does. Scale comes in two pinned
//! tiers. Exact algorithmic structure: NN-chain agglomeration is O(n²)
//! against the retained O(n³) reference, K-means assignment fans out
//! over a persistent worker pool with deterministic merges, and SVM
//! Gram rows are computed lazily behind a bounded LRU cache. And
//! oracle-pinned approximation: [`Agglomerative::fit_snn`] agglomerates
//! over a shared-nearest-neighbour candidate graph from
//! [`fmeter_ir::AnnGraph`] k-NN lists in sub-quadratic time, and
//! [`KMeans::fit_warm`] re-clusters incrementally from a previous
//! assignment — each property-tested against the exact paths
//! (`tests/ann_clustering.rs`; contract table in `docs/CLUSTERING.md`).
//! This crate sits last in the signature data flow (kernel-sim → trace
//! → core → ir → ml); see `docs/ARCHITECTURE.md` in the repository.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cv;
mod ensemble;
mod error;
mod hierarchical;
mod kmeans;
pub mod metrics;
mod svm;
mod tree;

pub use cv::{CrossValidation, CvReport, FoldOutcome};
pub use ensemble::{AdaBoost, AdaBoostModel, Bagging, BaggingModel};
pub use error::MlError;
pub use hierarchical::{Agglomerative, Dendrogram, Linkage, Merge, SnnParams};
pub use kmeans::{KMeans, KMeansInit, KMeansResult};
pub use svm::{Kernel, SvmModel, SvmTrainer};
pub use tree::{DecisionTree, DecisionTreeTrainer};

/// A class label for binary classification: `+1` or `-1`.
///
/// The paper's SVM experiments always label one behaviour `+1` and the
/// other(s) `-1`.
pub type Label = i8;
