use fmeter_ir::SparseVec;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::metrics::{majority_baseline, mean_std, BinaryConfusion};
use crate::{Kernel, Label, MlError, SvmTrainer};

/// The paper's K-fold cross-validation protocol (§4.2.1).
///
/// Positive and negative signatures are split into `K` sets each; fold `i`
/// merges positive set `i` with negative set `i`. For each fold `i`:
///
/// * fold `i` is the **test** data (touched exactly once, at the end),
/// * fold `(i + 1) mod K` is the **validation** data used to tune the SVM's
///   `C` parameter,
/// * the remaining `K - 2` folds are concatenated as **training** data.
///
/// The classifier is trained on the training folds for each candidate `C`,
/// the `C` maximising validation accuracy is chosen, and the resulting
/// model is evaluated a single time on the test fold. Reported metrics are
/// averaged over all `K` test folds.
///
/// # Examples
///
/// ```
/// use fmeter_ir::SparseVec;
/// use fmeter_ml::{CrossValidation, Kernel};
///
/// let mut xs = Vec::new();
/// let mut ys = Vec::new();
/// for i in 0..30 {
///     let v = 1.0 + (i % 5) as f64 * 0.01;
///     xs.push(SparseVec::from_pairs(2, [(0, v)]).unwrap());
///     ys.push(1);
///     xs.push(SparseVec::from_pairs(2, [(1, v)]).unwrap());
///     ys.push(-1);
/// }
/// let report = CrossValidation::new(5)
///     .kernel(Kernel::Linear)
///     .run(&xs, &ys)
///     .unwrap();
/// assert_eq!(report.mean_accuracy().0, 1.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrossValidation {
    folds: usize,
    c_grid: Vec<f64>,
    kernel: Kernel,
    seed: u64,
}

/// Result of evaluating one test fold.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FoldOutcome {
    /// Index of the test fold.
    pub fold: usize,
    /// The `C` value selected on the validation fold.
    pub chosen_c: f64,
    /// Validation accuracy achieved by `chosen_c` (diagnostic).
    pub validation_accuracy: f64,
    /// Confusion counts on the held-out test fold.
    pub confusion: BinaryConfusion,
}

/// Aggregated cross-validation report (the rows of Tables 4 and 5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CvReport {
    /// Per-fold outcomes in fold order.
    pub folds: Vec<FoldOutcome>,
    /// Majority-class baseline accuracy over the full data set.
    pub baseline_accuracy: f64,
}

impl CrossValidation {
    /// Creates a K-fold runner with the paper's defaults: polynomial
    /// kernel and a logarithmic `C` grid.
    ///
    /// # Panics
    ///
    /// Panics if `folds < 3` — the protocol needs disjoint training,
    /// validation, and test data.
    pub fn new(folds: usize) -> Self {
        assert!(
            folds >= 3,
            "need at least 3 folds (train/validation/test), got {folds}"
        );
        CrossValidation {
            folds,
            c_grid: vec![0.01, 0.1, 1.0, 10.0, 100.0],
            kernel: Kernel::default(),
            seed: 0,
        }
    }

    /// Replaces the candidate `C` grid searched on the validation folds.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty or contains a non-positive value.
    pub fn c_grid(mut self, grid: Vec<f64>) -> Self {
        assert!(!grid.is_empty(), "C grid must not be empty");
        assert!(grid.iter().all(|&c| c > 0.0), "C values must be positive");
        self.c_grid = grid;
        self
    }

    /// Sets the SVM kernel (default: cubic polynomial, as in SVMlight).
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the shuffle seed (default 0). Same seed, same folds.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the full protocol.
    ///
    /// Vectors are L2-normalised ("scaled into the unit-ball") before
    /// training, as the paper does.
    ///
    /// # Errors
    ///
    /// * [`MlError::LabelCountMismatch`] — slice lengths differ,
    /// * [`MlError::SingleClass`] — only one class present,
    /// * [`MlError::NotEnoughData`] — fewer positives or negatives than
    ///   folds (a fold would be empty on one side).
    pub fn run(&self, vectors: &[SparseVec], labels: &[Label]) -> Result<CvReport, MlError> {
        if vectors.len() != labels.len() {
            return Err(MlError::LabelCountMismatch {
                vectors: vectors.len(),
                labels: labels.len(),
            });
        }
        if vectors.is_empty() {
            return Err(MlError::EmptyInput);
        }
        let normalized: Vec<SparseVec> = vectors.iter().map(|v| v.l2_normalized()).collect();
        let mut positives: Vec<usize> = Vec::new();
        let mut negatives: Vec<usize> = Vec::new();
        for (i, &l) in labels.iter().enumerate() {
            if l > 0 {
                positives.push(i);
            } else {
                negatives.push(i);
            }
        }
        if positives.is_empty() || negatives.is_empty() {
            return Err(MlError::SingleClass);
        }
        if positives.len() < self.folds || negatives.len() < self.folds {
            return Err(MlError::NotEnoughData {
                have: positives.len().min(negatives.len()),
                need: self.folds,
            });
        }
        let mut rng = SmallRng::seed_from_u64(self.seed);
        positives.shuffle(&mut rng);
        negatives.shuffle(&mut rng);

        // fold id -> example indices (positive set i  merged with negative set i)
        let folds: Vec<Vec<usize>> = (0..self.folds)
            .map(|f| {
                let mut members: Vec<usize> = positives
                    .iter()
                    .copied()
                    .skip(f)
                    .step_by(self.folds)
                    .collect();
                members.extend(negatives.iter().copied().skip(f).step_by(self.folds));
                members
            })
            .collect();

        let mut outcomes = Vec::with_capacity(self.folds);
        for test_fold in 0..self.folds {
            let validation_fold = (test_fold + 1) % self.folds;
            let mut train_idx = Vec::new();
            for (f, members) in folds.iter().enumerate() {
                if f != test_fold && f != validation_fold {
                    train_idx.extend_from_slice(members);
                }
            }
            let gather = |idx: &[usize]| -> (Vec<SparseVec>, Vec<Label>) {
                (
                    idx.iter().map(|&i| normalized[i].clone()).collect(),
                    idx.iter().map(|&i| labels[i]).collect(),
                )
            };
            let (train_x, train_y) = gather(&train_idx);
            let (val_x, val_y) = gather(&folds[validation_fold]);
            let (test_x, test_y) = gather(&folds[test_fold]);

            // Tune C on the validation fold only.
            let mut best: Option<(f64, f64)> = None; // (C, val accuracy)
            for &c in &self.c_grid {
                let model = SvmTrainer::new()
                    .kernel(self.kernel)
                    .c(c)
                    .seed(self.seed)
                    .train(&train_x, &train_y)?;
                let predictions = model.predict_batch(&val_x);
                let acc = BinaryConfusion::from_labels(&val_y, &predictions)?.accuracy();
                // Strict > keeps the smallest C on ties (larger margin).
                if best.is_none_or(|(_, b)| acc > b) {
                    best = Some((c, acc));
                }
            }
            let (chosen_c, validation_accuracy) = best.expect("C grid is non-empty");

            // Single evaluation on the test fold.
            let model = SvmTrainer::new()
                .kernel(self.kernel)
                .c(chosen_c)
                .seed(self.seed)
                .train(&train_x, &train_y)?;
            let predictions = model.predict_batch(&test_x);
            let confusion = BinaryConfusion::from_labels(&test_y, &predictions)?;
            outcomes.push(FoldOutcome {
                fold: test_fold,
                chosen_c,
                validation_accuracy,
                confusion,
            });
        }
        Ok(CvReport {
            folds: outcomes,
            baseline_accuracy: majority_baseline(labels)?,
        })
    }
}

impl CvReport {
    /// Mean and standard deviation of test accuracy over folds.
    pub fn mean_accuracy(&self) -> (f64, f64) {
        mean_std(
            &self
                .folds
                .iter()
                .map(|f| f.confusion.accuracy())
                .collect::<Vec<_>>(),
        )
    }

    /// Mean and standard deviation of test precision over folds.
    pub fn mean_precision(&self) -> (f64, f64) {
        mean_std(
            &self
                .folds
                .iter()
                .map(|f| f.confusion.precision())
                .collect::<Vec<_>>(),
        )
    }

    /// Mean and standard deviation of test recall over folds.
    pub fn mean_recall(&self) -> (f64, f64) {
        mean_std(
            &self
                .folds
                .iter()
                .map(|f| f.confusion.recall())
                .collect::<Vec<_>>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two separable clusters with mild within-class variation.
    fn dataset(n_per_class: usize) -> (Vec<SparseVec>, Vec<Label>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n_per_class {
            let jitter = (i % 7) as f64 * 0.02;
            xs.push(SparseVec::from_pairs(3, [(0, 1.0 + jitter), (2, 0.1)]).unwrap());
            ys.push(1);
            xs.push(SparseVec::from_pairs(3, [(1, 1.0 + jitter), (2, 0.1)]).unwrap());
            ys.push(-1);
        }
        (xs, ys)
    }

    #[test]
    fn separable_data_scores_perfectly() {
        let (xs, ys) = dataset(25);
        let report = CrossValidation::new(5)
            .kernel(Kernel::Linear)
            .run(&xs, &ys)
            .unwrap();
        let (acc, std) = report.mean_accuracy();
        assert_eq!(acc, 1.0);
        assert_eq!(std, 0.0);
        assert_eq!(report.mean_precision().0, 1.0);
        assert_eq!(report.mean_recall().0, 1.0);
        assert_eq!(report.folds.len(), 5);
        assert!((report.baseline_accuracy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn polynomial_kernel_also_works() {
        let (xs, ys) = dataset(20);
        let report = CrossValidation::new(4).run(&xs, &ys).unwrap();
        assert!(report.mean_accuracy().0 > 0.95);
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = dataset(20);
        let r1 = CrossValidation::new(4).seed(3).run(&xs, &ys).unwrap();
        let r2 = CrossValidation::new(4).seed(3).run(&xs, &ys).unwrap();
        for (a, b) in r1.folds.iter().zip(&r2.folds) {
            assert_eq!(a.confusion, b.confusion);
            assert_eq!(a.chosen_c, b.chosen_c);
        }
    }

    #[test]
    fn every_example_tested_exactly_once() {
        // Fold sizes must partition the data.
        let (xs, ys) = dataset(13); // not divisible by folds
        let report = CrossValidation::new(5)
            .kernel(Kernel::Linear)
            .run(&xs, &ys)
            .unwrap();
        let tested: usize = report.folds.iter().map(|f| f.confusion.total()).sum();
        assert_eq!(tested, xs.len());
    }

    #[test]
    fn imbalanced_classes_report_baseline() {
        let (mut xs, mut ys) = dataset(20);
        // Add 20 extra negatives -> 20 pos, 40 neg -> baseline 2/3.
        for i in 0..20 {
            xs.push(SparseVec::from_pairs(3, [(1, 2.0 + i as f64 * 0.01)]).unwrap());
            ys.push(-1);
        }
        let report = CrossValidation::new(4)
            .kernel(Kernel::Linear)
            .run(&xs, &ys)
            .unwrap();
        assert!((report.baseline_accuracy - 40.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_insufficient_data() {
        let (xs, ys) = dataset(3);
        assert!(matches!(
            CrossValidation::new(5).run(&xs, &ys),
            Err(MlError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn rejects_single_class() {
        let xs = vec![SparseVec::zeros(2); 10];
        let ys = vec![1; 10];
        assert!(matches!(
            CrossValidation::new(3).run(&xs, &ys),
            Err(MlError::SingleClass)
        ));
    }

    #[test]
    #[should_panic(expected = "at least 3 folds")]
    fn too_few_folds_panics() {
        let _ = CrossValidation::new(2);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bad_c_grid_panics() {
        let _ = CrossValidation::new(3).c_grid(vec![-1.0]);
    }
}
