use std::error::Error;
use std::fmt;

use fmeter_ir::IrError;

/// Errors produced by the learning crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MlError {
    /// No data points were supplied.
    EmptyInput,
    /// The number of labels differs from the number of vectors.
    LabelCountMismatch {
        /// Number of vectors supplied.
        vectors: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// Fewer data points than requested clusters/folds.
    NotEnoughData {
        /// Points available.
        have: usize,
        /// Points required.
        need: usize,
    },
    /// A configuration value is out of range (message explains which).
    InvalidConfig(String),
    /// Binary classification requires both a positive and a negative example.
    SingleClass,
    /// An underlying vector-space error (dimension mismatch etc.).
    Ir(IrError),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyInput => write!(f, "no data points supplied"),
            MlError::LabelCountMismatch { vectors, labels } => {
                write!(
                    f,
                    "label count mismatch: {vectors} vectors vs {labels} labels"
                )
            }
            MlError::NotEnoughData { have, need } => {
                write!(f, "not enough data points: have {have}, need {need}")
            }
            MlError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            MlError::SingleClass => {
                write!(f, "training data must contain both classes")
            }
            MlError::Ir(e) => write!(f, "vector space error: {e}"),
        }
    }
}

impl Error for MlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MlError::Ir(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<IrError> for MlError {
    fn from(e: IrError) -> Self {
        MlError::Ir(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(MlError::EmptyInput.to_string(), "no data points supplied");
        assert_eq!(
            MlError::NotEnoughData { have: 1, need: 3 }.to_string(),
            "not enough data points: have 1, need 3"
        );
    }

    #[test]
    fn source_chains_to_ir_error() {
        let e = MlError::from(IrError::EmptyCorpus);
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MlError>();
    }
}
