//! Decision trees for high-dimensional sparse signatures.
//!
//! The paper (§4.2.1) mentions "a hand-crafted C4.5 decision tree package
//! that supports high dimension vectors and is capable of performing
//! boosting and bagging" as work in progress alongside the SVM. This
//! module provides that package: an entropy-split binary decision tree
//! over [`SparseVec`] features, with weighted training (the hook
//! AdaBoost needs) and configurable depth.

use fmeter_ir::SparseVec;
use serde::{Deserialize, Serialize};

use crate::{Label, MlError};

/// A node of the fitted tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    /// Terminal node predicting `label`; `confidence` is the weighted
    /// fraction of training examples agreeing with the prediction.
    Leaf { label: Label, confidence: f64 },
    /// Internal split: `term`'s weight `<= threshold` goes left,
    /// otherwise right.
    Split {
        term: u32,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// Configuration + runner for decision-tree training.
///
/// # Examples
///
/// ```
/// use fmeter_ir::SparseVec;
/// use fmeter_ml::DecisionTree;
///
/// let xs = vec![
///     SparseVec::from_pairs(4, [(0, 1.0)]).unwrap(),
///     SparseVec::from_pairs(4, [(0, 0.9)]).unwrap(),
///     SparseVec::from_pairs(4, [(1, 1.0)]).unwrap(),
///     SparseVec::from_pairs(4, [(1, 1.2)]).unwrap(),
/// ];
/// let ys = vec![1, 1, -1, -1];
/// let tree = DecisionTree::trainer().train(&xs, &ys).unwrap();
/// assert_eq!(tree.predict(&xs[0]), 1);
/// assert_eq!(tree.predict(&xs[3]), -1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTreeTrainer {
    max_depth: usize,
    min_leaf_weight: f64,
    min_gain: f64,
    max_thresholds: usize,
}

impl Default for DecisionTreeTrainer {
    fn default() -> Self {
        DecisionTreeTrainer {
            max_depth: 8,
            min_leaf_weight: 1e-9,
            // Zero: split impure nodes even on zero-gain splits (XOR-like
            // structures only pay off two levels down).
            min_gain: 0.0,
            max_thresholds: 16,
        }
    }
}

impl DecisionTreeTrainer {
    /// Maximum tree depth (default 8; depth 1 is a decision stump).
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth.max(1);
        self
    }

    /// Minimum total example weight in a leaf (default ~0).
    pub fn min_leaf_weight(mut self, weight: f64) -> Self {
        self.min_leaf_weight = weight.max(0.0);
        self
    }

    /// Number of candidate thresholds examined per feature (default 16).
    pub fn max_thresholds(mut self, k: usize) -> Self {
        self.max_thresholds = k.max(1);
        self
    }

    /// Trains with uniform example weights.
    ///
    /// # Errors
    ///
    /// * [`MlError::EmptyInput`] — no examples,
    /// * [`MlError::LabelCountMismatch`] — slice lengths differ,
    /// * [`MlError::Ir`] — mixed dimensionality.
    pub fn train(&self, vectors: &[SparseVec], labels: &[Label]) -> Result<DecisionTree, MlError> {
        let weights = vec![1.0 / vectors.len().max(1) as f64; vectors.len()];
        self.train_weighted(vectors, labels, &weights)
    }

    /// Trains with per-example weights (the AdaBoost entry point).
    ///
    /// # Errors
    ///
    /// As [`train`](Self::train); also
    /// [`MlError::LabelCountMismatch`] when `weights` has a different
    /// length and [`MlError::InvalidConfig`] for negative weights.
    pub fn train_weighted(
        &self,
        vectors: &[SparseVec],
        labels: &[Label],
        weights: &[f64],
    ) -> Result<DecisionTree, MlError> {
        if vectors.is_empty() {
            return Err(MlError::EmptyInput);
        }
        if vectors.len() != labels.len() {
            return Err(MlError::LabelCountMismatch {
                vectors: vectors.len(),
                labels: labels.len(),
            });
        }
        if vectors.len() != weights.len() {
            return Err(MlError::LabelCountMismatch {
                vectors: vectors.len(),
                labels: weights.len(),
            });
        }
        if weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
            return Err(MlError::InvalidConfig(
                "weights must be non-negative".into(),
            ));
        }
        let dim = vectors[0].dim();
        for v in vectors {
            if v.dim() != dim {
                return Err(MlError::Ir(fmeter_ir::IrError::DimensionMismatch {
                    left: dim,
                    right: v.dim(),
                }));
            }
        }
        let mut nodes = Vec::new();
        let indices: Vec<usize> = (0..vectors.len()).collect();
        self.grow(&mut nodes, vectors, labels, weights, indices, 0);
        Ok(DecisionTree { nodes, dim })
    }

    /// Recursively grows the tree, returning the created node's index.
    fn grow(
        &self,
        nodes: &mut Vec<Node>,
        vectors: &[SparseVec],
        labels: &[Label],
        weights: &[f64],
        members: Vec<usize>,
        depth: usize,
    ) -> usize {
        let (pos_weight, neg_weight) = class_weights(&members, labels, weights);
        let total = pos_weight + neg_weight;
        let majority: Label = if pos_weight >= neg_weight { 1 } else { -1 };
        let confidence = if total > 0.0 {
            pos_weight.max(neg_weight) / total
        } else {
            1.0
        };
        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf {
                label: majority,
                confidence,
            });
            nodes.len() - 1
        };
        if depth >= self.max_depth
            || pos_weight <= self.min_leaf_weight
            || neg_weight <= self.min_leaf_weight
        {
            return make_leaf(nodes);
        }
        let Some((term, threshold, gain)) = self.best_split(vectors, labels, weights, &members)
        else {
            return make_leaf(nodes);
        };
        if gain < self.min_gain {
            return make_leaf(nodes);
        }
        let (left_members, right_members): (Vec<usize>, Vec<usize>) = members
            .iter()
            .partition(|&&i| vectors[i].get(term) <= threshold);
        if left_members.is_empty() || right_members.is_empty() {
            return make_leaf(nodes);
        }
        // Reserve our slot before growing children so indices stay stable.
        nodes.push(Node::Leaf {
            label: majority,
            confidence,
        });
        let this = nodes.len() - 1;
        let left = self.grow(nodes, vectors, labels, weights, left_members, depth + 1);
        let right = self.grow(nodes, vectors, labels, weights, right_members, depth + 1);
        nodes[this] = Node::Split {
            term,
            threshold,
            left,
            right,
        };
        this
    }

    /// Finds the `(term, threshold)` with the highest information gain.
    fn best_split(
        &self,
        vectors: &[SparseVec],
        labels: &[Label],
        weights: &[f64],
        members: &[usize],
    ) -> Option<(u32, f64, f64)> {
        let (pos_weight, neg_weight) = class_weights(members, labels, weights);
        let total = pos_weight + neg_weight;
        if total <= 0.0 {
            return None;
        }
        let parent_entropy = entropy(pos_weight, neg_weight);
        // Candidate features: every term with a non-zero value among the
        // members (absent terms are zeros — the "<= 0" split is covered
        // by any positive threshold's left branch).
        let mut candidate_terms: Vec<u32> = members
            .iter()
            .flat_map(|&i| vectors[i].iter().map(|(t, _)| t))
            .collect();
        candidate_terms.sort_unstable();
        candidate_terms.dedup();

        let mut best: Option<(u32, f64, f64)> = None;
        for term in candidate_terms {
            // (value, pos_w, neg_w) per member, zeros included.
            let mut values: Vec<(f64, f64, f64)> = members
                .iter()
                .map(|&i| {
                    let v = vectors[i].get(term);
                    if labels[i] > 0 {
                        (v, weights[i], 0.0)
                    } else {
                        (v, 0.0, weights[i])
                    }
                })
                .collect();
            values.sort_by(|a, b| a.0.total_cmp(&b.0));
            // Candidate thresholds: quantile midpoints between distinct
            // neighbouring values.
            let stride = (values.len() / self.max_thresholds).max(1);
            let mut left_pos = 0.0;
            let mut left_neg = 0.0;
            for (idx, window) in values.windows(2).enumerate() {
                left_pos += window[0].1;
                left_neg += window[0].2;
                if window[0].0 == window[1].0 {
                    continue;
                }
                if idx % stride != 0 && values.len() > 2 * self.max_thresholds {
                    continue;
                }
                let threshold = (window[0].0 + window[1].0) / 2.0;
                let right_pos = pos_weight - left_pos;
                let right_neg = neg_weight - left_neg;
                let left_total = left_pos + left_neg;
                let right_total = right_pos + right_neg;
                let children = (left_total / total) * entropy(left_pos, left_neg)
                    + (right_total / total) * entropy(right_pos, right_neg);
                let gain = parent_entropy - children;
                if best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((term, threshold, gain));
                }
            }
        }
        best
    }
}

/// Weighted binary entropy (natural log), zero for pure sets.
fn entropy(pos: f64, neg: f64) -> f64 {
    let total = pos + neg;
    if total <= 0.0 || pos <= 0.0 || neg <= 0.0 {
        return 0.0;
    }
    let p = pos / total;
    let q = neg / total;
    -(p * p.ln() + q * q.ln())
}

fn class_weights(members: &[usize], labels: &[Label], weights: &[f64]) -> (f64, f64) {
    let mut pos = 0.0;
    let mut neg = 0.0;
    for &i in members {
        if labels[i] > 0 {
            pos += weights[i];
        } else {
            neg += weights[i];
        }
    }
    (pos, neg)
}

/// A fitted decision tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    dim: usize,
}

impl DecisionTree {
    /// A trainer with default configuration.
    pub fn trainer() -> DecisionTreeTrainer {
        DecisionTreeTrainer::default()
    }

    /// Predicts `+1` or `-1` for one example.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch with the training data.
    pub fn predict(&self, x: &SparseVec) -> Label {
        assert_eq!(
            x.dim(),
            self.dim,
            "query dimension {} does not match training dimension {}",
            x.dim(),
            self.dim
        );
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { label, .. } => return *label,
                Node::Split {
                    term,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x.get(*term) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predicts a batch.
    pub fn predict_batch(&self, xs: &[SparseVec]) -> Vec<Label> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Number of nodes in the tree.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf nodes.
    pub fn num_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Maximum root-to-leaf depth (a single leaf is depth 0).
    pub fn depth(&self) -> usize {
        fn go(nodes: &[Node], at: usize) -> usize {
            match &nodes[at] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + go(nodes, *left).max(go(nodes, *right)),
            }
        }
        go(&self.nodes, 0)
    }

    /// Dimensionality of the input space.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(pairs: &[(u32, f64)]) -> SparseVec {
        SparseVec::from_pairs(8, pairs.iter().copied()).unwrap()
    }

    fn axis_data() -> (Vec<SparseVec>, Vec<Label>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..10 {
            xs.push(point(&[(0, 1.0 + i as f64 * 0.1)]));
            ys.push(1);
            xs.push(point(&[(1, 1.0 + i as f64 * 0.1)]));
            ys.push(-1);
        }
        (xs, ys)
    }

    #[test]
    fn separates_axis_aligned_classes() {
        let (xs, ys) = axis_data();
        let tree = DecisionTree::trainer().train(&xs, &ys).unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(tree.predict(x), y);
        }
        assert!(tree.depth() >= 1);
        assert!(tree.num_leaves() >= 2);
    }

    #[test]
    fn stump_handles_threshold_split() {
        // Class by magnitude on one feature.
        let xs: Vec<SparseVec> = (0..12).map(|i| point(&[(0, i as f64)])).collect();
        let ys: Vec<Label> = (0..12).map(|i| if i < 6 { -1 } else { 1 }).collect();
        let stump = DecisionTree::trainer()
            .max_depth(1)
            .train(&xs, &ys)
            .unwrap();
        assert_eq!(stump.depth(), 1);
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(stump.predict(x), y);
        }
    }

    #[test]
    fn xor_needs_depth_two() {
        let xs = vec![
            point(&[(0, 0.0), (1, 0.0)]),
            point(&[(0, 1.0), (1, 1.0)]),
            point(&[(0, 0.0), (1, 1.0)]),
            point(&[(0, 1.0), (1, 0.0)]),
        ];
        let ys = vec![1, 1, -1, -1];
        let stump = DecisionTree::trainer()
            .max_depth(1)
            .train(&xs, &ys)
            .unwrap();
        let stump_correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| stump.predict(x) == y)
            .count();
        assert!(stump_correct < 4, "a stump cannot solve XOR");
        let deep = DecisionTree::trainer()
            .max_depth(3)
            .train(&xs, &ys)
            .unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(deep.predict(x), y);
        }
    }

    #[test]
    fn pure_input_yields_single_leaf() {
        let xs = vec![point(&[(0, 1.0)]), point(&[(0, 2.0)])];
        let ys = vec![1, 1];
        let tree = DecisionTree::trainer().train(&xs, &ys).unwrap();
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict(&point(&[(3, 9.0)])), 1);
    }

    #[test]
    fn weighted_training_respects_weights() {
        // Two conflicting points at the same location: the heavier wins.
        let xs = vec![point(&[(0, 1.0)]), point(&[(0, 1.0)])];
        let ys = vec![1, -1];
        let tree = DecisionTree::trainer()
            .train_weighted(&xs, &ys, &[0.9, 0.1])
            .unwrap();
        assert_eq!(tree.predict(&xs[0]), 1);
        let tree = DecisionTree::trainer()
            .train_weighted(&xs, &ys, &[0.1, 0.9])
            .unwrap();
        assert_eq!(tree.predict(&xs[0]), -1);
    }

    #[test]
    fn absent_terms_count_as_zero() {
        // Class +1 has term 2 present, class -1 lacks it entirely.
        let xs = vec![
            point(&[(2, 0.5)]),
            point(&[(2, 0.8)]),
            point(&[(3, 1.0)]),
            point(&[(3, 2.0)]),
        ];
        let ys = vec![1, 1, -1, -1];
        let tree = DecisionTree::trainer().train(&xs, &ys).unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(tree.predict(x), y);
        }
    }

    #[test]
    fn rejects_malformed_input() {
        let (xs, ys) = axis_data();
        assert!(matches!(
            DecisionTree::trainer().train(&[], &[]),
            Err(MlError::EmptyInput)
        ));
        assert!(matches!(
            DecisionTree::trainer().train(&xs, &ys[..3]),
            Err(MlError::LabelCountMismatch { .. })
        ));
        assert!(matches!(
            DecisionTree::trainer().train_weighted(&xs, &ys, &[1.0]),
            Err(MlError::LabelCountMismatch { .. })
        ));
        assert!(matches!(
            DecisionTree::trainer().train_weighted(&xs[..2], &ys[..2], &[-1.0, 1.0]),
            Err(MlError::InvalidConfig(_))
        ));
        let mixed = vec![SparseVec::zeros(2), SparseVec::zeros(3)];
        assert!(matches!(
            DecisionTree::trainer().train(&mixed, &[1, -1]),
            Err(MlError::Ir(_))
        ));
    }

    #[test]
    fn max_depth_bounds_tree() {
        let (xs, ys) = axis_data();
        for depth in 1..4 {
            let tree = DecisionTree::trainer()
                .max_depth(depth)
                .train(&xs, &ys)
                .unwrap();
            assert!(tree.depth() <= depth);
        }
    }
}
