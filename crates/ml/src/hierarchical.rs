use fmeter_ir::{CsrMatrix, Metric, SparseVec};
use serde::{Deserialize, Serialize};

use crate::MlError;

/// Linkage criterion for agglomerative clustering.
///
/// The paper implements complete-, single-, and average-linkage and reports
/// single-linkage results (Figure 4); the flavours behave similarly on
/// Fmeter signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Linkage {
    /// Distance between clusters = minimum pairwise distance.
    #[default]
    Single,
    /// Distance between clusters = maximum pairwise distance.
    Complete,
    /// Unweighted average of pairwise distances (UPGMA).
    Average,
}

/// One merge step of the agglomeration, in scipy-style linkage format.
///
/// Nodes `0..n` are the original points; merge `i` creates node `n + i`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Merge {
    /// First merged node id.
    pub left: usize,
    /// Second merged node id.
    pub right: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
    /// Number of original points under the new node.
    pub size: usize,
}

/// The full merge tree produced by [`Agglomerative::fit`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dendrogram {
    num_points: usize,
    merges: Vec<Merge>,
}

/// Agglomerative hierarchical clustering.
///
/// Starts from singleton clusters and repeatedly merges the closest pair
/// under the configured [`Linkage`], using the Lance–Williams update to
/// maintain inter-cluster distances in O(n²) per merge.
///
/// # Examples
///
/// ```
/// use fmeter_ir::SparseVec;
/// use fmeter_ml::{Agglomerative, Linkage};
///
/// let pts = vec![
///     SparseVec::from_pairs(2, [(0, 0.0)]).unwrap(),
///     SparseVec::from_pairs(2, [(0, 0.1)]).unwrap(),
///     SparseVec::from_pairs(2, [(0, 9.0)]).unwrap(),
///     SparseVec::from_pairs(2, [(0, 9.1)]).unwrap(),
/// ];
/// let tree = Agglomerative::new(Linkage::Single).fit(&pts).unwrap();
/// let cut = tree.cut(2);
/// assert_eq!(cut[0], cut[1]);
/// assert_ne!(cut[0], cut[2]);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Agglomerative {
    linkage: Linkage,
    metric: Metric,
}

impl Agglomerative {
    /// Creates a clusterer with the given linkage and Euclidean distance.
    pub fn new(linkage: Linkage) -> Self {
        Agglomerative {
            linkage,
            metric: Metric::Euclidean,
        }
    }

    /// Sets the point-to-point distance metric (default Euclidean).
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Builds the full dendrogram over `points`.
    ///
    /// Ties in the minimum distance break towards the smallest node ids,
    /// making the tree deterministic.
    ///
    /// # Errors
    ///
    /// * [`MlError::EmptyInput`] when no points are given,
    /// * [`MlError::Ir`] when points disagree on dimensionality.
    pub fn fit(&self, points: &[SparseVec]) -> Result<Dendrogram, MlError> {
        let n = points.len();
        if n == 0 {
            return Err(MlError::EmptyInput);
        }
        // Pack the corpus into one CSR buffer and batch-compute the
        // condensed distance matrix with the parallel pairwise kernel
        // (fans out over std::thread::scope for large inputs), then mirror
        // it into a flat n x n matrix for the merge loop below.
        let csr = CsrMatrix::from_rows(points)?;
        let condensed = csr.pairwise_condensed(self.metric)?;
        // Pairwise distance matrix between *active* nodes, indexed by slot.
        // Slot i < n is point i; merged clusters reuse the lower slot.
        let mut dist = vec![0.0f64; n * n];
        let mut idx = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                let d = condensed[idx];
                idx += 1;
                dist[i * n + j] = d;
                dist[j * n + i] = d;
            }
        }
        let mut active: Vec<bool> = vec![true; n];
        // node id of the cluster currently occupying each slot
        let mut node_of_slot: Vec<usize> = (0..n).collect();
        let mut size_of_slot: Vec<usize> = vec![1; n];
        let mut merges = Vec::with_capacity(n.saturating_sub(1));
        for step in 0..n.saturating_sub(1) {
            // Find the closest active pair (i < j), ties to smallest ids.
            let mut best: Option<(usize, usize, f64)> = None;
            for i in 0..n {
                if !active[i] {
                    continue;
                }
                for j in (i + 1)..n {
                    if !active[j] {
                        continue;
                    }
                    let d = dist[i * n + j];
                    let better = match best {
                        None => true,
                        Some((_, _, bd)) => d < bd,
                    };
                    if better {
                        best = Some((i, j, d));
                    }
                }
            }
            let (i, j, d) = best.expect("at least two active slots remain");
            let new_node = n + step;
            let new_size = size_of_slot[i] + size_of_slot[j];
            merges.push(Merge {
                left: node_of_slot[i],
                right: node_of_slot[j],
                distance: d,
                size: new_size,
            });
            // Lance–Williams update into slot i; slot j is retired.
            for k in 0..n {
                if !active[k] || k == i || k == j {
                    continue;
                }
                let dik = dist[i * n + k];
                let djk = dist[j * n + k];
                let updated = match self.linkage {
                    Linkage::Single => dik.min(djk),
                    Linkage::Complete => dik.max(djk),
                    Linkage::Average => {
                        let (si, sj) = (size_of_slot[i] as f64, size_of_slot[j] as f64);
                        (si * dik + sj * djk) / (si + sj)
                    }
                };
                dist[i * n + k] = updated;
                dist[k * n + i] = updated;
            }
            active[j] = false;
            node_of_slot[i] = new_node;
            size_of_slot[i] = new_size;
        }
        Ok(Dendrogram {
            num_points: n,
            merges,
        })
    }
}

impl Dendrogram {
    /// Number of original points.
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// The merge steps, in merge order (ascending linkage distance for
    /// single linkage; monotone for complete/average too).
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cuts the tree into (at most) `k` clusters by undoing the last
    /// `k - 1` merges; returns per-point cluster ids in `0..k'` where
    /// `k' = min(k, n)`. Cluster ids are assigned in order of first
    /// appearance, so the output is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`; an empty cut is meaningless.
    pub fn cut(&self, k: usize) -> Vec<usize> {
        assert!(k > 0, "cannot cut a dendrogram into zero clusters");
        let n = self.num_points;
        let k = k.min(n);
        // Union-find over nodes, applying only the first n - k merges.
        let total_nodes = n + self.merges.len();
        let mut parent: Vec<usize> = (0..total_nodes).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (step, merge) in self.merges.iter().take(n - k).enumerate() {
            let new_node = n + step;
            let l = find(&mut parent, merge.left);
            let r = find(&mut parent, merge.right);
            parent[l] = new_node;
            parent[r] = new_node;
        }
        let mut cluster_of_root: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        let mut out = Vec::with_capacity(n);
        for p in 0..n {
            let root = find(&mut parent, p);
            let next = cluster_of_root.len();
            let id = *cluster_of_root.entry(root).or_insert(next);
            out.push(id);
        }
        out
    }

    /// Renders the tree in the nested-parenthesis notation of the paper's
    /// Figure 4, labelling leaves with `labels` (falling back to the point
    /// index when out of range): e.g. `((0, 2), (1, 3))`.
    pub fn to_paren_string(&self, labels: &[String]) -> String {
        if self.num_points == 0 {
            return String::new();
        }
        let label_of = |leaf: usize| -> String {
            labels
                .get(leaf)
                .cloned()
                .unwrap_or_else(|| leaf.to_string())
        };
        if self.merges.is_empty() {
            return label_of(0);
        }
        // repr[node] built bottom-up.
        let n = self.num_points;
        let mut repr: Vec<String> = (0..n).map(label_of).collect();
        for merge in &self.merges {
            let combined = format!("({}, {})", repr[merge.left], repr[merge.right]);
            repr.push(combined);
        }
        repr.pop().expect("root exists")
    }

    /// The two subtrees directly below the root, as sorted lists of leaf
    /// indices. Used to check the paper's "perfect separation at the level
    /// immediately below the aggregation tree root".
    ///
    /// Returns `None` for trees with fewer than two points.
    pub fn root_split(&self) -> Option<(Vec<usize>, Vec<usize>)> {
        let last = self.merges.last()?;
        let mut left = self.leaves_under(last.left);
        let mut right = self.leaves_under(last.right);
        left.sort_unstable();
        right.sort_unstable();
        Some((left, right))
    }

    /// Collects the original point indices under `node`.
    fn leaves_under(&self, node: usize) -> Vec<usize> {
        let n = self.num_points;
        if node < n {
            return vec![node];
        }
        let merge = self.merges[node - n];
        let mut leaves = self.leaves_under(merge.left);
        leaves.extend(self.leaves_under(merge.right));
        leaves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_points(values: &[f64]) -> Vec<SparseVec> {
        values
            .iter()
            .map(|&v| SparseVec::from_pairs(2, [(0, v)]).unwrap())
            .collect()
    }

    #[test]
    fn merges_closest_pair_first() {
        let pts = line_points(&[0.0, 10.0, 0.5]);
        let tree = Agglomerative::new(Linkage::Single).fit(&pts).unwrap();
        let first = tree.merges()[0];
        assert_eq!((first.left, first.right), (0, 2));
        assert!((first.distance - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_linkage_chains_through_bridges() {
        // 0 -1- 1 -1- 2 ... single linkage keeps joining at distance 1.
        let pts = line_points(&[0.0, 1.0, 2.0, 3.0]);
        let tree = Agglomerative::new(Linkage::Single).fit(&pts).unwrap();
        for m in tree.merges() {
            assert!((m.distance - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn complete_linkage_grows_distance() {
        let pts = line_points(&[0.0, 1.0, 2.0, 3.0]);
        let tree = Agglomerative::new(Linkage::Complete).fit(&pts).unwrap();
        let last = tree.merges().last().unwrap();
        assert!((last.distance - 3.0).abs() < 1e-12);
    }

    #[test]
    fn average_linkage_is_between_single_and_complete() {
        let pts = line_points(&[0.0, 1.0, 2.0, 3.5, 9.0]);
        let single = Agglomerative::new(Linkage::Single).fit(&pts).unwrap();
        let complete = Agglomerative::new(Linkage::Complete).fit(&pts).unwrap();
        let average = Agglomerative::new(Linkage::Average).fit(&pts).unwrap();
        let root = |d: &Dendrogram| d.merges().last().unwrap().distance;
        assert!(root(&single) <= root(&average) + 1e-12);
        assert!(root(&average) <= root(&complete) + 1e-12);
    }

    #[test]
    fn cut_recovers_two_blobs() {
        let pts = line_points(&[0.0, 0.1, 0.2, 9.0, 9.1, 9.2]);
        let tree = Agglomerative::new(Linkage::Single).fit(&pts).unwrap();
        let cut = tree.cut(2);
        assert_eq!(cut[0], cut[1]);
        assert_eq!(cut[1], cut[2]);
        assert_eq!(cut[3], cut[4]);
        assert_eq!(cut[4], cut[5]);
        assert_ne!(cut[0], cut[3]);
    }

    #[test]
    fn cut_extremes() {
        let pts = line_points(&[0.0, 1.0, 2.0]);
        let tree = Agglomerative::new(Linkage::Single).fit(&pts).unwrap();
        assert_eq!(tree.cut(1), vec![0, 0, 0]);
        // k = n: every point its own cluster.
        let all = tree.cut(3);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
        // k > n clamps to n.
        assert_eq!(tree.cut(10), all);
    }

    #[test]
    #[should_panic(expected = "zero clusters")]
    fn cut_zero_panics() {
        let pts = line_points(&[0.0]);
        let tree = Agglomerative::new(Linkage::Single).fit(&pts).unwrap();
        tree.cut(0);
    }

    #[test]
    fn paren_string_nests_merges() {
        let pts = line_points(&[0.0, 0.1, 9.0]);
        let tree = Agglomerative::new(Linkage::Single).fit(&pts).unwrap();
        let s = tree.to_paren_string(&["a".into(), "b".into(), "c".into()]);
        assert_eq!(s, "((a, b), c)");
        // Missing labels fall back to indices.
        let s = tree.to_paren_string(&[]);
        assert_eq!(s, "((0, 1), 2)");
    }

    #[test]
    fn single_point_tree() {
        let pts = line_points(&[1.0]);
        let tree = Agglomerative::new(Linkage::Single).fit(&pts).unwrap();
        assert!(tree.merges().is_empty());
        assert_eq!(tree.cut(1), vec![0]);
        assert_eq!(tree.to_paren_string(&["x".into()]), "x");
        assert!(tree.root_split().is_none());
    }

    #[test]
    fn root_split_separates_blobs() {
        let pts = line_points(&[0.0, 0.1, 9.0, 9.1]);
        let tree = Agglomerative::new(Linkage::Single).fit(&pts).unwrap();
        let (a, b) = tree.root_split().unwrap();
        let mut sides = [a, b];
        sides.sort();
        assert_eq!(sides[0], vec![0, 1]);
        assert_eq!(sides[1], vec![2, 3]);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(
            Agglomerative::new(Linkage::Single).fit(&[]),
            Err(MlError::EmptyInput)
        ));
    }

    #[test]
    fn merge_sizes_sum_to_n() {
        let pts = line_points(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        let tree = Agglomerative::new(Linkage::Average).fit(&pts).unwrap();
        assert_eq!(tree.merges().last().unwrap().size, 5);
    }
}
