use std::collections::BTreeMap;

use fmeter_ir::{AnnGraph, CsrMatrix, Metric, SparseVec};
use serde::{Deserialize, Serialize};

use crate::MlError;

/// Per-point candidate lists: for each point, its `(neighbour, distance)`
/// edges ranked by exact distance.
type CandidateLists = Vec<Vec<(usize, f64)>>;

/// Linkage criterion for agglomerative clustering.
///
/// The paper implements complete-, single-, and average-linkage and reports
/// single-linkage results (Figure 4); the flavours behave similarly on
/// Fmeter signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Linkage {
    /// Distance between clusters = minimum pairwise distance.
    #[default]
    Single,
    /// Distance between clusters = maximum pairwise distance.
    Complete,
    /// Unweighted average of pairwise distances (UPGMA).
    Average,
}

/// One merge step of the agglomeration, in scipy-style linkage format.
///
/// Nodes `0..n` are the original points; merge `i` creates node `n + i`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Merge {
    /// First merged node id.
    pub left: usize,
    /// Second merged node id.
    pub right: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
    /// Number of original points under the new node.
    pub size: usize,
}

/// The full merge tree produced by [`Agglomerative::fit`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dendrogram {
    num_points: usize,
    merges: Vec<Merge>,
}

/// Tuning knobs for the locality-pruned agglomeration of
/// [`Agglomerative::fit_snn`].
///
/// The candidate graph is the symmetric union of every point's `knn`
/// best candidates, harvested from the layer-0 adjacency of an
/// [`AnnGraph`] built with `max_degree`/`ef_construction` (each
/// point's direct neighbours plus their neighbours, ranked by exact
/// distance). Larger values buy accuracy with time; when
/// `knn >= n - 1` the candidate graph is complete and the path
/// degenerates to the exact NN-chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnnParams {
    /// Nearest neighbours kept per point (candidate edges).
    pub knn: usize,
    /// Maximum degree of the underlying [`AnnGraph`].
    pub max_degree: usize,
    /// Construction-time beam width of the underlying [`AnnGraph`].
    pub ef_construction: usize,
}

impl Default for SnnParams {
    fn default() -> Self {
        SnnParams {
            knn: 32,
            max_degree: 16,
            ef_construction: 80,
        }
    }
}

/// Agglomerative hierarchical clustering.
///
/// Starts from singleton clusters and repeatedly merges mutual nearest
/// neighbours under the configured [`Linkage`], using the
/// nearest-neighbour-chain algorithm over Lance–Williams distance updates
/// on the condensed distance matrix — O(n²) total instead of the O(n³)
/// closest-pair scan, which makes 10k-signature dendrograms interactive.
///
/// # Examples
///
/// ```
/// use fmeter_ir::SparseVec;
/// use fmeter_ml::{Agglomerative, Linkage};
///
/// let pts = vec![
///     SparseVec::from_pairs(2, [(0, 0.0)]).unwrap(),
///     SparseVec::from_pairs(2, [(0, 0.1)]).unwrap(),
///     SparseVec::from_pairs(2, [(0, 9.0)]).unwrap(),
///     SparseVec::from_pairs(2, [(0, 9.1)]).unwrap(),
/// ];
/// let tree = Agglomerative::new(Linkage::Single).fit(&pts).unwrap();
/// let cut = tree.cut(2);
/// assert_eq!(cut[0], cut[1]);
/// assert_ne!(cut[0], cut[2]);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Agglomerative {
    linkage: Linkage,
    metric: Metric,
}

impl Agglomerative {
    /// Creates a clusterer with the given linkage and Euclidean distance.
    pub fn new(linkage: Linkage) -> Self {
        Agglomerative {
            linkage,
            metric: Metric::Euclidean,
        }
    }

    /// Sets the point-to-point distance metric (default Euclidean).
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Builds the full dendrogram over `points`.
    ///
    /// Runs the nearest-neighbour-chain algorithm over the condensed
    /// distance matrix produced by the parallel
    /// [`CsrMatrix::pairwise_condensed`] batch kernel: the chain walks to
    /// a pair of mutual nearest neighbours, merges it, and backtracks,
    /// touching each inter-cluster distance O(1) times per merge — O(n²)
    /// total where the closest-pair scan of
    /// [`fit_brute_force`](Self::fit_brute_force) is O(n³). Merges are
    /// discovered out of height order, so they are canonicalized
    /// afterwards: sorted stably by linkage distance and relabelled so
    /// merge `i` creates node `n + i` (the scipy linkage convention, same
    /// as before). The result is deterministic; on exact distance ties
    /// the tree may differ from the brute-force one, but both are valid
    /// dendrograms of the same height multiset.
    ///
    /// # Degenerate inputs
    ///
    /// All three paths (`fit`, [`fit_brute_force`](Self::fit_brute_force),
    /// [`fit_snn`](Self::fit_snn)) share one contract: zero points is
    /// [`MlError::EmptyInput`]; a single point yields a one-leaf tree
    /// with no merges; all-duplicate points yield `n - 1` merges at
    /// height exactly `0.0`.
    ///
    /// # Errors
    ///
    /// * [`MlError::EmptyInput`] when no points are given,
    /// * [`MlError::Ir`] when points disagree on dimensionality.
    pub fn fit(&self, points: &[SparseVec]) -> Result<Dendrogram, MlError> {
        let n = points.len();
        if let Some(degenerate) = Self::degenerate(points)? {
            return Ok(degenerate);
        }
        let csr = CsrMatrix::from_rows(points)?;
        let mut condensed = csr.pairwise_condensed(self.metric)?;
        Ok(self.merge_nn_chain(n, &mut condensed))
    }

    /// The shared degenerate-input contract of every fit path: `Err`
    /// for zero points, a one-leaf no-merge tree for a single point,
    /// `None` when the input needs a real agglomeration.
    fn degenerate(points: &[SparseVec]) -> Result<Option<Dendrogram>, MlError> {
        match points.len() {
            0 => Err(MlError::EmptyInput),
            1 => Ok(Some(Dendrogram {
                num_points: 1,
                merges: Vec::new(),
            })),
            _ => Ok(None),
        }
    }

    /// The original O(n³) closest-pair implementation, kept as the
    /// executable reference that property tests pin [`fit`](Self::fit)
    /// against. Prefer `fit`; this exists so the fast path can always be
    /// re-validated.
    ///
    /// # Errors
    ///
    /// Same contract as [`fit`](Self::fit).
    pub fn fit_brute_force(&self, points: &[SparseVec]) -> Result<Dendrogram, MlError> {
        let n = points.len();
        if let Some(degenerate) = Self::degenerate(points)? {
            return Ok(degenerate);
        }
        let csr = CsrMatrix::from_rows(points)?;
        let condensed = csr.pairwise_condensed(self.metric)?;
        // Full n x n mirror of the condensed matrix; slots are reused by
        // merged clusters (slot i < n starts as point i).
        let mut dist = vec![0.0f64; n * n];
        let mut idx = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                let d = condensed[idx];
                idx += 1;
                dist[i * n + j] = d;
                dist[j * n + i] = d;
            }
        }
        let mut active: Vec<bool> = vec![true; n];
        // node id of the cluster currently occupying each slot
        let mut node_of_slot: Vec<usize> = (0..n).collect();
        let mut size_of_slot: Vec<usize> = vec![1; n];
        let mut merges = Vec::with_capacity(n.saturating_sub(1));
        for step in 0..n.saturating_sub(1) {
            // Find the closest active pair (i < j), ties to smallest ids.
            let mut best: Option<(usize, usize, f64)> = None;
            for i in 0..n {
                if !active[i] {
                    continue;
                }
                for j in (i + 1)..n {
                    if !active[j] {
                        continue;
                    }
                    let d = dist[i * n + j];
                    let better = match best {
                        None => true,
                        Some((_, _, bd)) => d < bd,
                    };
                    if better {
                        best = Some((i, j, d));
                    }
                }
            }
            let (i, j, d) = best.expect("at least two active slots remain");
            let new_node = n + step;
            let new_size = size_of_slot[i] + size_of_slot[j];
            merges.push(Merge {
                left: node_of_slot[i],
                right: node_of_slot[j],
                distance: d,
                size: new_size,
            });
            // Lance–Williams update into slot i; slot j is retired.
            for k in 0..n {
                if !active[k] || k == i || k == j {
                    continue;
                }
                let dik = dist[i * n + k];
                let djk = dist[j * n + k];
                let updated = match self.linkage {
                    Linkage::Single => dik.min(djk),
                    Linkage::Complete => dik.max(djk),
                    Linkage::Average => {
                        let (si, sj) = (size_of_slot[i] as f64, size_of_slot[j] as f64);
                        (si * dik + sj * djk) / (si + sj)
                    }
                };
                dist[i * n + k] = updated;
                dist[k * n + i] = updated;
            }
            active[j] = false;
            node_of_slot[i] = new_node;
            size_of_slot[i] = new_size;
        }
        Ok(Dendrogram {
            num_points: n,
            merges,
        })
    }

    /// Locality-pruned agglomeration: the sub-quadratic path.
    ///
    /// Instead of the n(n-1)/2-entry condensed matrix, this builds a
    /// *shared-nearest-neighbour candidate graph* — the symmetric union
    /// of every point's `params.knn` approximate nearest neighbours
    /// from an incremental [`AnnGraph`] — and runs the same
    /// nearest-neighbour-chain / Lance–Williams merge engine as
    /// [`fit`](Self::fit), but only ever over graph-connected
    /// candidates: cluster-to-cluster distances live in per-cluster
    /// sparse maps that merge in O(degree) per step. Memory is
    /// O(n · knn) and time is dominated by the O(n · ef · degree) ANN
    /// build, so 10k-point dendrograms cost milliseconds-to-
    /// hundreds-of-milliseconds instead of seconds (see
    /// `cluster/snn_agglomerative_10k` in `BENCH_ir.json`).
    ///
    /// Accuracy contract (pinned by `crates/ml/tests/ann_clustering.rs`
    /// and tabulated in `docs/CLUSTERING.md`): when the candidate graph
    /// is complete (`params.knn >= n - 1` with a generous `ef`) the
    /// result is *identical* to [`fit`](Self::fit); on sparser graphs a
    /// missing candidate edge means the Lance–Williams update falls
    /// back to the distances it has (exact for single linkage as long
    /// as the true merge edge is in the graph; an approximation for
    /// complete/average), so cut partitions are approximate with high
    /// agreement (ARI ≥ 0.95 on clustered corpora). Disconnected
    /// candidate graphs are bridged with exact distances between
    /// component representatives before merging, so the dendrogram is
    /// always complete. Degenerate inputs follow the shared contract
    /// documented on [`fit`](Self::fit).
    ///
    /// # Errors
    ///
    /// * [`MlError::EmptyInput`] when no points are given,
    /// * [`MlError::Ir`] when points disagree on dimensionality or the
    ///   metric is invalid.
    pub fn fit_snn(&self, points: &[SparseVec], params: &SnnParams) -> Result<Dendrogram, MlError> {
        let n = points.len();
        if let Some(degenerate) = Self::degenerate(points)? {
            return Ok(degenerate);
        }
        self.metric.validate()?;
        let k = params.knn.min(n - 1).max(1);
        // Symmetric union of the k-NN lists; BTreeMaps so every
        // nearest-neighbour scan iterates candidates in ascending slot
        // order — the same deterministic tie order as the dense chain.
        let mut adj: Vec<BTreeMap<usize, f64>> = vec![BTreeMap::new(); n];
        if k >= n - 1 {
            // `knn >= n-1` *requests* the complete candidate graph — the
            // exact-oracle configuration the reference tests pin. Build
            // it directly from exact pairwise distances rather than
            // through beam searches, so exactness never depends on ANN
            // recall.
            for i in 0..n {
                for j in (i + 1)..n {
                    let d = self.metric.distance(&points[i], &points[j])?;
                    adj[i].insert(j, d);
                    adj[j].insert(i, d);
                }
            }
        } else {
            let mut graph = AnnGraph::new(points[0].dim())
                .metric(self.metric)
                .max_degree(params.max_degree)
                .ef_construction(params.ef_construction);
            graph.extend(points)?;
            for (i, list) in self
                .harvest_candidates(points, &graph, k)?
                .into_iter()
                .enumerate()
            {
                for (j, d) in list {
                    adj[i].insert(j, d);
                    adj[j].insert(i, d);
                }
            }
        }
        self.bridge_components(points, &mut adj)?;
        Ok(self.merge_nn_chain_sparse(n, &mut adj))
    }

    /// Harvests each point's `k` best candidate edges from the built
    /// graph's layer-0 adjacency: the point's direct neighbours plus
    /// their neighbours (the 2-hop closure), ranked by exact distance.
    /// With degree `d` that is at most `d + d²` candidates per point —
    /// a fixed, beam-free cost — and the closure recovers near
    /// neighbours the diversity pruning displaced to a mutual
    /// neighbour's list. Each point's list is an independent exact
    /// computation, so the result is deterministic regardless of the
    /// worker count (the fan-out mirrors the K-means assignment step).
    fn harvest_candidates(
        &self,
        points: &[SparseVec],
        graph: &AnnGraph,
        k: usize,
    ) -> Result<CandidateLists, MlError> {
        let n = points.len();
        let harvest_one = |i: usize| -> Result<Vec<(usize, f64)>, MlError> {
            let mut cand: Vec<usize> = Vec::new();
            for &j in graph.neighbors(i) {
                cand.push(j as usize);
                for &h in graph.neighbors(j as usize) {
                    cand.push(h as usize);
                }
            }
            cand.sort_unstable();
            cand.dedup();
            cand.retain(|&j| j != i);
            let mut ranked: Vec<(usize, f64)> = cand
                .into_iter()
                .map(|j| Ok((j, self.metric.distance(&points[i], &points[j])?)))
                .collect::<Result<_, MlError>>()?;
            ranked.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            ranked.truncate(k);
            Ok(ranked)
        };
        let threads = if n >= 2048 {
            std::thread::available_parallelism()
                .map_or(1, |p| p.get())
                .min(n)
        } else {
            1
        };
        if threads <= 1 {
            return (0..n).map(harvest_one).collect();
        }
        let chunk = n.div_ceil(threads);
        let mut lists = Vec::with_capacity(n);
        let results: Vec<Result<CandidateLists, MlError>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(n);
                    let harvest_one = &harvest_one;
                    s.spawn(move || (lo..hi).map(harvest_one).collect())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("harvest worker panicked"))
                .collect()
        });
        for r in results {
            lists.extend(r?);
        }
        Ok(lists)
    }

    /// Connects the candidate graph when the k-NN union left it in
    /// multiple components (possible on corpora with far-apart blobs):
    /// each component gains one exact-distance edge to its nearest
    /// other component, judged over up to 8 representative members, and
    /// the pass repeats until one component remains. Component count at
    /// least halves per pass, so the loop is O(log n) passes of
    /// bounded-size distance scans.
    fn bridge_components(
        &self,
        points: &[SparseVec],
        adj: &mut [BTreeMap<usize, f64>],
    ) -> Result<(), MlError> {
        const REPS: usize = 8;
        let n = points.len();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        loop {
            let mut parent: Vec<usize> = (0..n).collect();
            for (i, nbrs) in adj.iter().enumerate() {
                for &j in nbrs.keys() {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
            let mut members: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for i in 0..n {
                let root = find(&mut parent, i);
                let m = members.entry(root).or_default();
                if m.len() < REPS {
                    m.push(i);
                }
            }
            if members.len() <= 1 {
                return Ok(());
            }
            let comps: Vec<Vec<usize>> = members.into_values().collect();
            for (ci, reps) in comps.iter().enumerate() {
                let mut best: Option<(usize, usize, f64)> = None;
                for (cj, other) in comps.iter().enumerate() {
                    if ci == cj {
                        continue;
                    }
                    for &a in reps {
                        for &b in other {
                            let d = self.metric.distance(&points[a], &points[b])?;
                            if best.is_none_or(|(_, _, bd)| d < bd) {
                                best = Some((a, b, d));
                            }
                        }
                    }
                }
                let (a, b, d) = best.expect("at least two components remain");
                adj[a].insert(b, d);
                adj[b].insert(a, d);
            }
        }
    }

    /// The NN-chain merge engine over a sparse candidate graph: the
    /// same chain/mutual-pair/Lance–Williams logic as
    /// [`merge_nn_chain`](Self::merge_nn_chain), with cluster-to-
    /// cluster distances held in per-slot maps instead of the condensed
    /// matrix. On a complete graph the two are step-for-step identical
    /// (same slot bookkeeping, same ascending-index tie order); on a
    /// pruned graph a Lance–Williams update missing one side keeps the
    /// side it has.
    fn merge_nn_chain_sparse(&self, n: usize, adj: &mut [BTreeMap<usize, f64>]) -> Dendrogram {
        let mut size = vec![1usize; n];
        let mut chain: Vec<usize> = Vec::with_capacity(n);
        let mut raw: Vec<(usize, usize, f64)> = Vec::with_capacity(n.saturating_sub(1));
        for _ in 0..n.saturating_sub(1) {
            if chain.is_empty() {
                let start = size
                    .iter()
                    .position(|&s| s > 0)
                    .expect("an active cluster remains");
                chain.push(start);
            }
            let (x, y, height) = loop {
                let x = *chain.last().expect("chain is non-empty");
                let mut y = usize::MAX;
                let mut best = f64::INFINITY;
                if chain.len() > 1 {
                    y = chain[chain.len() - 2];
                    best = *adj[x]
                        .get(&y)
                        .expect("chain predecessors stay graph-adjacent");
                }
                for (&i, &dist) in adj[x].iter() {
                    if dist < best {
                        best = dist;
                        y = i;
                    }
                }
                assert!(y != usize::MAX, "candidate graph must stay connected");
                if chain.len() > 1 && y == chain[chain.len() - 2] {
                    break (x, y, best);
                }
                chain.push(y);
            };
            chain.pop();
            chain.pop();
            let (x, y) = if x > y { (y, x) } else { (x, y) };
            let (nx, ny) = (size[x], size[y]);
            raw.push((x, y, height));
            // The merged cluster takes slot y; slot x is retired and its
            // candidate edges fold into y's map.
            size[x] = 0;
            size[y] = nx + ny;
            let x_map = std::mem::take(&mut adj[x]);
            adj[y].remove(&x);
            for (i, dxi) in x_map {
                if i == y {
                    continue;
                }
                adj[i].remove(&x);
                let updated = match (self.linkage, adj[y].get(&i)) {
                    (Linkage::Single, Some(&dyi)) => dxi.min(dyi),
                    (Linkage::Complete, Some(&dyi)) => dxi.max(dyi),
                    (Linkage::Average, Some(&dyi)) => {
                        ((nx as f64) * dxi + (ny as f64) * dyi) / ((nx + ny) as f64)
                    }
                    // Candidate edge exists on x's side only: keep it.
                    (_, None) => dxi,
                };
                adj[y].insert(i, updated);
                adj[i].insert(y, updated);
            }
        }
        Dendrogram {
            num_points: n,
            merges: canonicalize_merges(n, raw),
        }
    }

    /// Nearest-neighbour-chain agglomeration over a condensed distance
    /// matrix, destroying `d` in the process (Lance–Williams updates are
    /// written in place, so no n × n mirror is ever allocated — at 10k
    /// points that alone halves the working set).
    fn merge_nn_chain(&self, n: usize, d: &mut [f64]) -> Dendrogram {
        debug_assert_eq!(d.len(), n * n.saturating_sub(1) / 2);
        let idx = |a: usize, b: usize| -> usize {
            let (i, j) = if a < b { (a, b) } else { (b, a) };
            i * (2 * n - i - 1) / 2 + (j - i - 1)
        };
        // size[s] doubles as the active flag (0 = retired slot); clusters
        // are represented by the original point index of one member.
        let mut size = vec![1usize; n];
        let mut chain: Vec<usize> = Vec::with_capacity(n);
        // Raw merges as (slot, slot, height); node relabelling happens in
        // the canonicalization pass below.
        let mut raw: Vec<(usize, usize, f64)> = Vec::with_capacity(n.saturating_sub(1));
        for _ in 0..n.saturating_sub(1) {
            if chain.is_empty() {
                let start = size
                    .iter()
                    .position(|&s| s > 0)
                    .expect("an active cluster remains");
                chain.push(start);
            }
            // Extend the chain with nearest neighbours until it reaches a
            // mutual pair. Ties prefer the previous chain element (strict
            // `<` below), which is what guarantees termination.
            let (x, y, height) = loop {
                let x = *chain.last().expect("chain is non-empty");
                let mut y = usize::MAX;
                let mut best = f64::INFINITY;
                if chain.len() > 1 {
                    y = chain[chain.len() - 2];
                    best = d[idx(x, y)];
                }
                for i in 0..n {
                    if size[i] == 0 || i == x {
                        continue;
                    }
                    let dist = d[idx(x, i)];
                    if dist < best {
                        best = dist;
                        y = i;
                    }
                }
                if chain.len() > 1 && y == chain[chain.len() - 2] {
                    break (x, y, best);
                }
                chain.push(y);
            };
            chain.pop();
            chain.pop();
            let (x, y) = if x > y { (y, x) } else { (x, y) };
            let (nx, ny) = (size[x], size[y]);
            raw.push((x, y, height));
            // The merged cluster takes slot y; slot x is retired.
            size[x] = 0;
            size[y] = nx + ny;
            for i in 0..n {
                if size[i] == 0 || i == y {
                    continue;
                }
                let dxi = d[idx(x, i)];
                let dyi = d[idx(y, i)];
                d[idx(y, i)] = match self.linkage {
                    Linkage::Single => dxi.min(dyi),
                    Linkage::Complete => dxi.max(dyi),
                    Linkage::Average => {
                        ((nx as f64) * dxi + (ny as f64) * dyi) / ((nx + ny) as f64)
                    }
                };
            }
        }
        Dendrogram {
            num_points: n,
            merges: canonicalize_merges(n, raw),
        }
    }
}

/// Canonicalizes raw NN-chain merges: stable-sorts by height (single,
/// complete, and average linkage are reducible, so the sorted sequence is
/// a valid monotone merge order) and relabels clusters with a union-find
/// so merge `i` creates node `n + i`. `left` is the side containing the
/// smallest original point index, matching the brute-force slot
/// convention.
fn canonicalize_merges(n: usize, mut raw: Vec<(usize, usize, f64)>) -> Vec<Merge> {
    raw.sort_by(|a, b| a.2.total_cmp(&b.2));
    let total_nodes = 2 * n - 1;
    let mut parent: Vec<usize> = (0..total_nodes).collect();
    let mut min_leaf: Vec<usize> = (0..total_nodes).collect();
    let mut node_size: Vec<usize> = vec![1; total_nodes];
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut merges = Vec::with_capacity(raw.len());
    for (step, (a, b, height)) in raw.into_iter().enumerate() {
        let ra = find(&mut parent, a);
        let rb = find(&mut parent, b);
        let new_node = n + step;
        let (left, right) = if min_leaf[ra] < min_leaf[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        let new_size = node_size[ra] + node_size[rb];
        parent[ra] = new_node;
        parent[rb] = new_node;
        min_leaf[new_node] = min_leaf[ra].min(min_leaf[rb]);
        node_size[new_node] = new_size;
        merges.push(Merge {
            left,
            right,
            distance: height,
            size: new_size,
        });
    }
    merges
}

impl Dendrogram {
    /// Number of original points.
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// The merge steps, sorted by ascending linkage distance (the
    /// canonical order; merge `i` creates node `num_points + i`).
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cuts the tree into (at most) `k` clusters by undoing the last
    /// `k - 1` merges; returns per-point cluster ids in `0..k'` where
    /// `k' = min(k, n)`. Cluster ids are assigned in order of first
    /// appearance, so the output is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`; an empty cut is meaningless.
    pub fn cut(&self, k: usize) -> Vec<usize> {
        assert!(k > 0, "cannot cut a dendrogram into zero clusters");
        let n = self.num_points;
        let k = k.min(n);
        // Union-find over nodes, applying only the first n - k merges.
        let total_nodes = n + self.merges.len();
        let mut parent: Vec<usize> = (0..total_nodes).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (step, merge) in self.merges.iter().take(n - k).enumerate() {
            let new_node = n + step;
            let l = find(&mut parent, merge.left);
            let r = find(&mut parent, merge.right);
            parent[l] = new_node;
            parent[r] = new_node;
        }
        let mut cluster_of_root: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        let mut out = Vec::with_capacity(n);
        for p in 0..n {
            let root = find(&mut parent, p);
            let next = cluster_of_root.len();
            let id = *cluster_of_root.entry(root).or_insert(next);
            out.push(id);
        }
        out
    }

    /// Renders the tree in the nested-parenthesis notation of the paper's
    /// Figure 4, labelling leaves with `labels` (falling back to the point
    /// index when out of range): e.g. `((0, 2), (1, 3))`.
    pub fn to_paren_string(&self, labels: &[String]) -> String {
        if self.num_points == 0 {
            return String::new();
        }
        let label_of = |leaf: usize| -> String {
            labels
                .get(leaf)
                .cloned()
                .unwrap_or_else(|| leaf.to_string())
        };
        if self.merges.is_empty() {
            return label_of(0);
        }
        // repr[node] built bottom-up.
        let n = self.num_points;
        let mut repr: Vec<String> = (0..n).map(label_of).collect();
        for merge in &self.merges {
            let combined = format!("({}, {})", repr[merge.left], repr[merge.right]);
            repr.push(combined);
        }
        repr.pop().expect("root exists")
    }

    /// The two subtrees directly below the root, as sorted lists of leaf
    /// indices. Used to check the paper's "perfect separation at the level
    /// immediately below the aggregation tree root".
    ///
    /// Returns `None` for trees with fewer than two points.
    pub fn root_split(&self) -> Option<(Vec<usize>, Vec<usize>)> {
        let last = self.merges.last()?;
        let mut left = self.leaves_under(last.left);
        let mut right = self.leaves_under(last.right);
        left.sort_unstable();
        right.sort_unstable();
        Some((left, right))
    }

    /// Collects the original point indices under `node`.
    fn leaves_under(&self, node: usize) -> Vec<usize> {
        let n = self.num_points;
        if node < n {
            return vec![node];
        }
        let merge = self.merges[node - n];
        let mut leaves = self.leaves_under(merge.left);
        leaves.extend(self.leaves_under(merge.right));
        leaves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_points(values: &[f64]) -> Vec<SparseVec> {
        values
            .iter()
            .map(|&v| SparseVec::from_pairs(2, [(0, v)]).unwrap())
            .collect()
    }

    #[test]
    fn merges_closest_pair_first() {
        let pts = line_points(&[0.0, 10.0, 0.5]);
        let tree = Agglomerative::new(Linkage::Single).fit(&pts).unwrap();
        let first = tree.merges()[0];
        assert_eq!((first.left, first.right), (0, 2));
        assert!((first.distance - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_linkage_chains_through_bridges() {
        // 0 -1- 1 -1- 2 ... single linkage keeps joining at distance 1.
        let pts = line_points(&[0.0, 1.0, 2.0, 3.0]);
        let tree = Agglomerative::new(Linkage::Single).fit(&pts).unwrap();
        for m in tree.merges() {
            assert!((m.distance - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn complete_linkage_grows_distance() {
        let pts = line_points(&[0.0, 1.0, 2.0, 3.0]);
        let tree = Agglomerative::new(Linkage::Complete).fit(&pts).unwrap();
        let last = tree.merges().last().unwrap();
        assert!((last.distance - 3.0).abs() < 1e-12);
    }

    #[test]
    fn average_linkage_is_between_single_and_complete() {
        let pts = line_points(&[0.0, 1.0, 2.0, 3.5, 9.0]);
        let single = Agglomerative::new(Linkage::Single).fit(&pts).unwrap();
        let complete = Agglomerative::new(Linkage::Complete).fit(&pts).unwrap();
        let average = Agglomerative::new(Linkage::Average).fit(&pts).unwrap();
        let root = |d: &Dendrogram| d.merges().last().unwrap().distance;
        assert!(root(&single) <= root(&average) + 1e-12);
        assert!(root(&average) <= root(&complete) + 1e-12);
    }

    #[test]
    fn cut_recovers_two_blobs() {
        let pts = line_points(&[0.0, 0.1, 0.2, 9.0, 9.1, 9.2]);
        let tree = Agglomerative::new(Linkage::Single).fit(&pts).unwrap();
        let cut = tree.cut(2);
        assert_eq!(cut[0], cut[1]);
        assert_eq!(cut[1], cut[2]);
        assert_eq!(cut[3], cut[4]);
        assert_eq!(cut[4], cut[5]);
        assert_ne!(cut[0], cut[3]);
    }

    #[test]
    fn cut_extremes() {
        let pts = line_points(&[0.0, 1.0, 2.0]);
        let tree = Agglomerative::new(Linkage::Single).fit(&pts).unwrap();
        assert_eq!(tree.cut(1), vec![0, 0, 0]);
        // k = n: every point its own cluster.
        let all = tree.cut(3);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
        // k > n clamps to n.
        assert_eq!(tree.cut(10), all);
    }

    #[test]
    #[should_panic(expected = "zero clusters")]
    fn cut_zero_panics() {
        let pts = line_points(&[0.0]);
        let tree = Agglomerative::new(Linkage::Single).fit(&pts).unwrap();
        tree.cut(0);
    }

    #[test]
    fn paren_string_nests_merges() {
        let pts = line_points(&[0.0, 0.1, 9.0]);
        let tree = Agglomerative::new(Linkage::Single).fit(&pts).unwrap();
        let s = tree.to_paren_string(&["a".into(), "b".into(), "c".into()]);
        assert_eq!(s, "((a, b), c)");
        // Missing labels fall back to indices.
        let s = tree.to_paren_string(&[]);
        assert_eq!(s, "((0, 1), 2)");
    }

    #[test]
    fn single_point_tree() {
        let pts = line_points(&[1.0]);
        let tree = Agglomerative::new(Linkage::Single).fit(&pts).unwrap();
        assert!(tree.merges().is_empty());
        assert_eq!(tree.cut(1), vec![0]);
        assert_eq!(tree.to_paren_string(&["x".into()]), "x");
        assert!(tree.root_split().is_none());
    }

    #[test]
    fn root_split_separates_blobs() {
        let pts = line_points(&[0.0, 0.1, 9.0, 9.1]);
        let tree = Agglomerative::new(Linkage::Single).fit(&pts).unwrap();
        let (a, b) = tree.root_split().unwrap();
        let mut sides = [a, b];
        sides.sort();
        assert_eq!(sides[0], vec![0, 1]);
        assert_eq!(sides[1], vec![2, 3]);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(
            Agglomerative::new(Linkage::Single).fit(&[]),
            Err(MlError::EmptyInput)
        ));
    }

    /// Every fit path under one closure, for the degenerate-contract
    /// regressions below.
    type FitPath = Box<dyn Fn(&[SparseVec]) -> Result<Dendrogram, MlError>>;
    fn all_paths() -> Vec<(&'static str, FitPath)> {
        let agg = || Agglomerative::new(Linkage::Single);
        vec![
            ("fit", Box::new(move |p: &[SparseVec]| agg().fit(p))),
            (
                "fit_brute_force",
                Box::new(move |p: &[SparseVec]| agg().fit_brute_force(p)),
            ),
            (
                "fit_snn",
                Box::new(move |p: &[SparseVec]| agg().fit_snn(p, &SnnParams::default())),
            ),
        ]
    }

    #[test]
    fn degenerate_contract_empty_input_uniform() {
        for (name, path) in all_paths() {
            assert!(
                matches!(path(&[]), Err(MlError::EmptyInput)),
                "{name} must reject empty input"
            );
        }
    }

    #[test]
    fn degenerate_contract_single_point_uniform() {
        let pts = line_points(&[1.0]);
        for (name, path) in all_paths() {
            let tree = path(&pts).unwrap_or_else(|e| panic!("{name} on 1 point: {e}"));
            assert_eq!(tree.num_points(), 1, "{name}");
            assert!(tree.merges().is_empty(), "{name}");
            assert_eq!(tree.cut(1), vec![0], "{name}");
            assert_eq!(tree.cut(7), vec![0], "{name} (k clamps to n)");
            assert!(tree.root_split().is_none(), "{name}");
        }
    }

    #[test]
    fn degenerate_contract_all_duplicates_uniform() {
        let pts = line_points(&[2.5; 6]);
        for (name, path) in all_paths() {
            let tree = path(&pts).unwrap_or_else(|e| panic!("{name} on duplicates: {e}"));
            assert_eq!(tree.merges().len(), 5, "{name}");
            for m in tree.merges() {
                assert_eq!(m.distance, 0.0, "{name}: duplicate heights are exact zeros");
            }
            assert_eq!(tree.merges().last().unwrap().size, 6, "{name}");
            for k in 1..=6 {
                let cut = tree.cut(k);
                let mut ids = cut.clone();
                ids.sort_unstable();
                ids.dedup();
                assert_eq!(ids.len(), k, "{name}: cut({k}) has {k} clusters");
            }
        }
    }

    #[test]
    fn snn_complete_graph_matches_brute_force() {
        // knn >= n - 1: the candidate graph is complete, so the pruned
        // path must reproduce the exact tree (distinct heights).
        let pts = line_points(&[0.0, 0.7, 1.9, 5.0, 5.4, 11.0, 11.9, 30.0]);
        let params = SnnParams {
            knn: pts.len(),
            ..SnnParams::default()
        };
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let snn = Agglomerative::new(linkage).fit_snn(&pts, &params).unwrap();
            let slow = Agglomerative::new(linkage).fit_brute_force(&pts).unwrap();
            for (a, b) in snn.merges().iter().zip(slow.merges()) {
                assert!((a.distance - b.distance).abs() < 1e-12, "{linkage:?}");
            }
            for k in 1..=pts.len() {
                assert_eq!(snn.cut(k), slow.cut(k), "{linkage:?} cut at k={k}");
            }
        }
    }

    #[test]
    fn snn_pruned_graph_recovers_blobs() {
        // Two tight blobs, pruned candidate lists: the approximate tree
        // still separates them perfectly at k = 2.
        let pts = line_points(&[0.0, 0.1, 0.2, 0.3, 9.0, 9.1, 9.2, 9.3]);
        let params = SnnParams {
            knn: 2,
            ..SnnParams::default()
        };
        let tree = Agglomerative::new(Linkage::Single)
            .fit_snn(&pts, &params)
            .unwrap();
        let cut = tree.cut(2);
        for i in 0..4 {
            assert_eq!(cut[i], cut[0]);
            assert_eq!(cut[4 + i], cut[4]);
        }
        assert_ne!(cut[0], cut[4]);
    }

    #[test]
    fn nn_chain_matches_brute_force_on_distinct_heights() {
        // Irregular spacing: all pairwise single-linkage heights distinct,
        // so NN-chain and the closest-pair scan must produce the same tree.
        let pts = line_points(&[0.0, 0.7, 1.9, 5.0, 5.4, 11.0, 11.9, 30.0]);
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let fast = Agglomerative::new(linkage).fit(&pts).unwrap();
            let slow = Agglomerative::new(linkage).fit_brute_force(&pts).unwrap();
            let heights =
                |t: &Dendrogram| -> Vec<f64> { t.merges().iter().map(|m| m.distance).collect() };
            let mut slow_heights = heights(&slow);
            slow_heights.sort_by(f64::total_cmp);
            for (a, b) in heights(&fast).iter().zip(&slow_heights) {
                assert!((a - b).abs() < 1e-12, "height {a} vs {b}");
            }
            for k in 1..=pts.len() {
                assert_eq!(fast.cut(k), slow.cut(k), "{linkage:?} cut at k={k}");
            }
        }
    }

    #[test]
    fn nn_chain_merge_heights_are_sorted() {
        let pts = line_points(&[3.0, 0.0, 9.5, 1.2, 7.7, 4.4]);
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let tree = Agglomerative::new(linkage).fit(&pts).unwrap();
            for pair in tree.merges().windows(2) {
                assert!(pair[0].distance <= pair[1].distance);
            }
        }
    }

    #[test]
    fn merge_sizes_sum_to_n() {
        let pts = line_points(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        let tree = Agglomerative::new(Linkage::Average).fit(&pts).unwrap();
        assert_eq!(tree.merges().last().unwrap().size, 5);
    }
}
