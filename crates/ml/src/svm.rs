use fmeter_ir::SparseVec;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::{Label, MlError};

/// Kernel function for the SVM.
///
/// The paper uses `SVMlight` with "the default polynomial function" kernel;
/// [`Kernel::polynomial`] with degree 3 mirrors that default. A linear and
/// an RBF kernel are provided for completeness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    /// `K(x, y) = x . y`
    Linear,
    /// `K(x, y) = (gamma * x . y + coef0)^degree`
    Polynomial {
        /// Polynomial degree (SVMlight default: 3).
        degree: u32,
        /// Scale applied to the dot product.
        gamma: f64,
        /// Additive constant (SVMlight default: 1).
        coef0: f64,
    },
    /// `K(x, y) = exp(-gamma * ||x - y||^2)`
    Rbf {
        /// Width parameter.
        gamma: f64,
    },
}

impl Kernel {
    /// The paper's kernel: cubic polynomial `(x.y + 1)^3`.
    pub fn polynomial() -> Self {
        Kernel::Polynomial {
            degree: 3,
            gamma: 1.0,
            coef0: 1.0,
        }
    }

    /// Evaluates the kernel on two vectors.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch — training and query vectors must live
    /// in the same space.
    pub fn eval(&self, a: &SparseVec, b: &SparseVec) -> f64 {
        let dot = a.dot(b).expect("kernel operands share one vector space");
        match *self {
            Kernel::Linear => dot,
            Kernel::Polynomial {
                degree,
                gamma,
                coef0,
            } => (gamma * dot + coef0).powi(degree as i32),
            Kernel::Rbf { gamma } => {
                let aa = a.dot(a).expect("same space");
                let bb = b.dot(b).expect("same space");
                let dist2 = (aa + bb - 2.0 * dot).max(0.0);
                (-gamma * dist2).exp()
            }
        }
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::polynomial()
    }
}

/// Configuration + runner for soft-margin C-SVM training via sequential
/// minimal optimisation (Platt's SMO with an error cache and the
/// second-choice heuristic).
///
/// # Examples
///
/// ```
/// use fmeter_ir::SparseVec;
/// use fmeter_ml::{Kernel, SvmTrainer};
///
/// let xs = vec![
///     SparseVec::from_pairs(2, [(0, 1.0)]).unwrap(),
///     SparseVec::from_pairs(2, [(0, 0.9)]).unwrap(),
///     SparseVec::from_pairs(2, [(1, 1.0)]).unwrap(),
///     SparseVec::from_pairs(2, [(1, 1.1)]).unwrap(),
/// ];
/// let ys = vec![1, 1, -1, -1];
/// let model = SvmTrainer::new().kernel(Kernel::Linear).train(&xs, &ys).unwrap();
/// assert_eq!(model.predict(&xs[0]), 1);
/// assert_eq!(model.predict(&xs[2]), -1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SvmTrainer {
    c: f64,
    kernel: Kernel,
    tol: f64,
    eps: f64,
    max_passes: usize,
    seed: u64,
    cache_rows: usize,
}

/// Auto-sizing budget for the Gram row cache: rows are evicted so the
/// cache never exceeds ~32 MB (a full 10k x 10k matrix would be 800 MB).
const KERNEL_CACHE_BYTES: usize = 32 << 20;

/// Lazily computed Gram matrix rows behind a small bounded LRU cache.
///
/// SMO only ever touches two rows per optimisation step (plus the
/// diagonal, which is precomputed), and keeps revisiting the same
/// unbound examples — so a cache of a few hundred rows serves almost
/// every access without materialising the O(n²) matrix.
struct KernelCache<'a> {
    kernel: Kernel,
    vectors: &'a [SparseVec],
    diag: Vec<f64>,
    capacity: usize,
    slots: Vec<RowSlot>,
    /// `slot_of_row[i]` is the slot caching row `i`, or `usize::MAX`.
    slot_of_row: Vec<usize>,
    clock: u64,
}

struct RowSlot {
    row: usize,
    values: Vec<f64>,
    last_used: u64,
}

impl<'a> KernelCache<'a> {
    fn new(kernel: Kernel, vectors: &'a [SparseVec], capacity: usize) -> Self {
        let n = vectors.len();
        let diag = vectors.iter().map(|v| kernel.eval(v, v)).collect();
        KernelCache {
            kernel,
            vectors,
            diag,
            capacity: capacity.clamp(2, n.max(2)),
            slots: Vec::new(),
            slot_of_row: vec![usize::MAX; n],
            clock: 0,
        }
    }

    /// `K(x_i, x_i)` from the precomputed diagonal.
    fn diag(&self, i: usize) -> f64 {
        self.diag[i]
    }

    /// Row `i` of the Gram matrix, computed on first use and then served
    /// from the cache until evicted (least-recently-used).
    fn row(&mut self, i: usize) -> &[f64] {
        self.clock += 1;
        let clock = self.clock;
        let cached = self.slot_of_row[i];
        if cached != usize::MAX {
            self.slots[cached].last_used = clock;
            return &self.slots[cached].values;
        }
        let slot = if self.slots.len() < self.capacity {
            self.slots.push(RowSlot {
                row: i,
                values: Vec::new(),
                last_used: clock,
            });
            self.slots.len() - 1
        } else {
            let victim = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .expect("capacity >= 2")
                .0;
            self.slot_of_row[self.slots[victim].row] = usize::MAX;
            victim
        };
        self.slot_of_row[i] = slot;
        let kernel = self.kernel;
        let vectors = self.vectors;
        let vi = &vectors[i];
        let out = &mut self.slots[slot];
        out.row = i;
        out.last_used = clock;
        out.values.clear();
        out.values
            .extend(vectors.iter().map(|vj| kernel.eval(vi, vj)));
        &out.values
    }
}

impl Default for SvmTrainer {
    fn default() -> Self {
        Self::new()
    }
}

impl SvmTrainer {
    /// Creates a trainer with `C = 1`, the paper's polynomial kernel,
    /// KKT tolerance `1e-3`, and a deterministic seed.
    pub fn new() -> Self {
        SvmTrainer {
            c: 1.0,
            kernel: Kernel::default(),
            tol: 1e-3,
            eps: 1e-9,
            max_passes: 200,
            seed: 0,
            cache_rows: 0,
        }
    }

    /// Caps the Gram row cache at `rows` rows (`0`, the default, sizes it
    /// automatically to a ~32 MB budget). Training computes kernel rows
    /// lazily instead of materialising the n × n matrix, so memory is
    /// `O(cache_rows * n)` — at 10k points the full matrix would be
    /// ~800 MB. The cache only changes *when* kernel values are computed,
    /// never their values, so the trained model is identical for any
    /// capacity.
    pub fn cache_rows(mut self, rows: usize) -> Self {
        self.cache_rows = rows;
        self
    }

    /// Sets the error/margin trade-off `C` (the paper tunes exactly this
    /// parameter on the validation folds).
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0`.
    pub fn c(mut self, c: f64) -> Self {
        assert!(c > 0.0, "C must be positive, got {c}");
        self.c = c;
        self
    }

    /// Sets the kernel (default: cubic polynomial).
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the KKT violation tolerance (default `1e-3`).
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the RNG seed used for the SMO sweep order (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the number of full passes without progress (default 200).
    pub fn max_passes(mut self, passes: usize) -> Self {
        self.max_passes = passes;
        self
    }

    /// Trains on `vectors` with labels `+1`/`-1`.
    ///
    /// # Errors
    ///
    /// * [`MlError::EmptyInput`] — no examples,
    /// * [`MlError::LabelCountMismatch`] — slice lengths differ,
    /// * [`MlError::SingleClass`] — only one class present,
    /// * [`MlError::Ir`] — vectors disagree on dimensionality.
    pub fn train(&self, vectors: &[SparseVec], labels: &[Label]) -> Result<SvmModel, MlError> {
        if vectors.is_empty() {
            return Err(MlError::EmptyInput);
        }
        if vectors.len() != labels.len() {
            return Err(MlError::LabelCountMismatch {
                vectors: vectors.len(),
                labels: labels.len(),
            });
        }
        let dim = vectors[0].dim();
        for v in vectors {
            if v.dim() != dim {
                return Err(MlError::Ir(fmeter_ir::IrError::DimensionMismatch {
                    left: dim,
                    right: v.dim(),
                }));
            }
        }
        let has_pos = labels.iter().any(|&l| l > 0);
        let has_neg = labels.iter().any(|&l| l <= 0);
        if !has_pos || !has_neg {
            return Err(MlError::SingleClass);
        }
        let y: Vec<f64> = labels
            .iter()
            .map(|&l| if l > 0 { 1.0 } else { -1.0 })
            .collect();
        let n = vectors.len();

        // Kernel rows are computed lazily behind a bounded LRU cache: the
        // paper's experiments (a few hundred points) still effectively
        // see a fully materialised matrix, while a 10k-point corpus stays
        // within the ~32 MB cache budget instead of an ~800 MB Gram
        // matrix.
        let capacity = if self.cache_rows > 0 {
            self.cache_rows
        } else {
            (KERNEL_CACHE_BYTES / (n.max(1) * std::mem::size_of::<f64>())).max(2)
        };
        let cache = KernelCache::new(self.kernel, vectors, capacity);

        let mut smo = Smo {
            n,
            c: self.c,
            tol: self.tol,
            eps: self.eps,
            cache,
            y: &y,
            alpha: vec![0.0; n],
            b: 0.0,
            errors: vec![0.0; n],
            row_buf: Vec::with_capacity(n),
        };
        for (error, &label) in smo.errors.iter_mut().zip(&y) {
            *error = -label; // f(x) = 0 initially, E = f - y
        }

        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..n).collect();
        let mut examine_all = true;
        let mut num_changed = 1;
        let mut passes = 0;
        while (num_changed > 0 || examine_all) && passes < self.max_passes {
            num_changed = 0;
            order.shuffle(&mut rng);
            for &i in &order {
                if examine_all || smo.is_unbound(i) {
                    num_changed += smo.examine(i) as usize;
                }
            }
            if examine_all {
                examine_all = false;
            } else if num_changed == 0 {
                examine_all = true;
            }
            passes += 1;
        }

        // Keep only support vectors.
        let mut support = Vec::new();
        let mut sv_alpha_y = Vec::new();
        for i in 0..n {
            if smo.alpha[i] > 0.0 {
                support.push(vectors[i].clone());
                sv_alpha_y.push(smo.alpha[i] * y[i]);
            }
        }
        Ok(SvmModel {
            kernel: self.kernel,
            support,
            sv_alpha_y,
            bias: smo.b,
            dim,
        })
    }
}

/// SMO working state over a lazily cached kernel matrix.
struct Smo<'a> {
    n: usize,
    c: f64,
    tol: f64,
    eps: f64,
    cache: KernelCache<'a>,
    y: &'a [f64],
    alpha: Vec<f64>,
    b: f64,
    /// Error cache: `errors[i] = f(x_i) - y_i`, kept exact after each step.
    errors: Vec<f64>,
    /// Scratch copy of row `i1` during a step, so the error update runs
    /// as one fused loop over both rows (bit-identical to the old
    /// precomputed-matrix arithmetic) even if fetching row `i2` evicts
    /// row `i1` from the cache.
    row_buf: Vec<f64>,
}

impl Smo<'_> {
    fn is_unbound(&self, i: usize) -> bool {
        self.alpha[i] > 0.0 && self.alpha[i] < self.c
    }

    /// Platt's examineExample: returns true if a pair was optimised.
    fn examine(&mut self, i2: usize) -> bool {
        let y2 = self.y[i2];
        let alph2 = self.alpha[i2];
        let e2 = self.errors[i2];
        let r2 = e2 * y2;
        let violates = (r2 < -self.tol && alph2 < self.c) || (r2 > self.tol && alph2 > 0.0);
        if !violates {
            return false;
        }
        // Heuristic 1: maximise |E1 - E2| over unbound examples.
        let mut best: Option<(usize, f64)> = None;
        for i1 in 0..self.n {
            if i1 == i2 || !self.is_unbound(i1) {
                continue;
            }
            let gap = (self.errors[i1] - e2).abs();
            if best.is_none_or(|(_, g)| gap > g) {
                best = Some((i1, gap));
            }
        }
        if let Some((i1, _)) = best {
            if self.take_step(i1, i2) {
                return true;
            }
        }
        // Heuristic 2: any unbound example.
        for i1 in 0..self.n {
            if i1 != i2 && self.is_unbound(i1) && self.take_step(i1, i2) {
                return true;
            }
        }
        // Heuristic 3: the whole training set.
        for i1 in 0..self.n {
            if i1 != i2 && self.take_step(i1, i2) {
                return true;
            }
        }
        false
    }

    fn take_step(&mut self, i1: usize, i2: usize) -> bool {
        let (y1, y2) = (self.y[i1], self.y[i2]);
        let (alph1, alph2) = (self.alpha[i1], self.alpha[i2]);
        let (e1, e2) = (self.errors[i1], self.errors[i2]);
        let s = y1 * y2;
        let (low, high) = if s < 0.0 {
            (
                (alph2 - alph1).max(0.0),
                (self.c + alph2 - alph1).min(self.c),
            )
        } else {
            (
                (alph2 + alph1 - self.c).max(0.0),
                (alph2 + alph1).min(self.c),
            )
        };
        if low >= high {
            return false;
        }
        let k11 = self.cache.diag(i1);
        let k22 = self.cache.diag(i2);
        let k12 = self.cache.row(i1)[i2];
        let eta = k11 + k22 - 2.0 * k12;
        let mut a2 = if eta > 0.0 {
            (alph2 + y2 * (e1 - e2) / eta).clamp(low, high)
        } else {
            // Degenerate kernel direction: evaluate the objective at the
            // clip bounds and move to the better endpoint.
            let f1 = y1 * e1 - alph1 * k11 - s * alph2 * k12;
            let f2 = y2 * e2 - s * alph1 * k12 - alph2 * k22;
            let l1 = alph1 + s * (alph2 - low);
            let h1 = alph1 + s * (alph2 - high);
            let obj_low = l1 * f1
                + low * f2
                + 0.5 * l1 * l1 * k11
                + 0.5 * low * low * k22
                + s * low * l1 * k12;
            let obj_high = h1 * f1
                + high * f2
                + 0.5 * h1 * h1 * k11
                + 0.5 * high * high * k22
                + s * high * h1 * k12;
            if obj_low < obj_high - self.eps {
                low
            } else if obj_low > obj_high + self.eps {
                high
            } else {
                return false;
            }
        };
        // Snap to the box to avoid lingering 1e-17 support vectors.
        if a2 < 1e-12 {
            a2 = 0.0;
        } else if a2 > self.c - 1e-12 {
            a2 = self.c;
        }
        if (a2 - alph2).abs() < self.eps * (a2 + alph2 + self.eps) {
            return false;
        }
        let a1 = alph1 + s * (alph2 - a2);
        let a1 = if a1 < 1e-12 {
            0.0
        } else if a1 > self.c - 1e-12 {
            self.c
        } else {
            a1
        };

        // Threshold update (Platt eq. 20-21), f(x) = sum a_j y_j K + b.
        let b1 = self.b - e1 - y1 * (a1 - alph1) * k11 - y2 * (a2 - alph2) * k12;
        let b2 = self.b - e2 - y1 * (a1 - alph1) * k12 - y2 * (a2 - alph2) * k22;
        let new_b = if a1 > 0.0 && a1 < self.c {
            b1
        } else if a2 > 0.0 && a2 < self.c {
            b2
        } else {
            (b1 + b2) / 2.0
        };
        let delta_b = new_b - self.b;
        let (d1, d2) = (y1 * (a1 - alph1), y2 * (a2 - alph2));
        self.row_buf.clear();
        let row1 = self.cache.row(i1);
        self.row_buf.extend_from_slice(row1);
        let row2 = self.cache.row(i2);
        for ((e, &k1), &k2) in self.errors.iter_mut().zip(&self.row_buf).zip(row2) {
            *e += d1 * k1 + d2 * k2 + delta_b;
        }
        self.b = new_b;
        self.alpha[i1] = a1;
        self.alpha[i2] = a2;
        // Unbound support vectors sit exactly on the margin: pin their
        // cached error to zero to stop drift.
        if a1 > 0.0 && a1 < self.c {
            self.errors[i1] = 0.0;
        }
        if a2 > 0.0 && a2 < self.c {
            self.errors[i2] = 0.0;
        }
        true
    }
}

/// A trained SVM decision function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SvmModel {
    kernel: Kernel,
    support: Vec<SparseVec>,
    /// `alpha_i * y_i` per support vector.
    sv_alpha_y: Vec<f64>,
    bias: f64,
    dim: usize,
}

impl SvmModel {
    /// Signed distance-like score: positive means class `+1`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has a different dimensionality than the training data.
    pub fn decision_function(&self, x: &SparseVec) -> f64 {
        assert_eq!(
            x.dim(),
            self.dim,
            "query dimension {} does not match training dimension {}",
            x.dim(),
            self.dim
        );
        let mut f = self.bias;
        for (sv, ay) in self.support.iter().zip(&self.sv_alpha_y) {
            f += ay * self.kernel.eval(sv, x);
        }
        f
    }

    /// Predicts `+1` or `-1` ("which side of the hyperplane").
    ///
    /// # Panics
    ///
    /// Panics if `x` has a different dimensionality than the training data.
    pub fn predict(&self, x: &SparseVec) -> Label {
        if self.decision_function(x) >= 0.0 {
            1
        } else {
            -1
        }
    }

    /// Predicts a batch of examples.
    pub fn predict_batch(&self, xs: &[SparseVec]) -> Vec<Label> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Number of support vectors retained by training.
    pub fn num_support_vectors(&self) -> usize {
        self.support.len()
    }

    /// The kernel the model was trained with.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Dimensionality of the input space.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(dim: usize, pairs: &[(u32, f64)]) -> SparseVec {
        SparseVec::from_pairs(dim, pairs.iter().copied()).unwrap()
    }

    /// Linearly separable blobs in 2D.
    fn separable() -> (Vec<SparseVec>, Vec<Label>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..10 {
            let off = i as f64 * 0.03;
            xs.push(point(2, &[(0, 1.0 + off), (1, 1.0 - off)]));
            ys.push(1);
            xs.push(point(2, &[(0, -1.0 - off), (1, -1.0 + off)]));
            ys.push(-1);
        }
        (xs, ys)
    }

    #[test]
    fn kernel_values() {
        let a = point(2, &[(0, 1.0), (1, 2.0)]);
        let b = point(2, &[(0, 3.0), (1, 4.0)]);
        assert_eq!(Kernel::Linear.eval(&a, &b), 11.0);
        let poly = Kernel::Polynomial {
            degree: 2,
            gamma: 1.0,
            coef0: 1.0,
        };
        assert_eq!(poly.eval(&a, &b), 144.0);
        let rbf = Kernel::Rbf { gamma: 1.0 };
        let d2 = 4.0 + 4.0; // (1-3)^2 + (2-4)^2
        assert!((rbf.eval(&a, &b) - (-d2f64()).exp()).abs() < 1e-12);
        fn d2f64() -> f64 {
            8.0
        }
        let _ = d2;
    }

    #[test]
    fn rbf_of_self_is_one() {
        let a = point(2, &[(0, 0.5)]);
        let rbf = Kernel::Rbf { gamma: 2.5 };
        assert!((rbf.eval(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_svm_separates_blobs() {
        let (xs, ys) = separable();
        let model = SvmTrainer::new()
            .kernel(Kernel::Linear)
            .train(&xs, &ys)
            .unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(model.predict(x), y);
        }
    }

    #[test]
    fn polynomial_svm_separates_blobs() {
        let (xs, ys) = separable();
        let model = SvmTrainer::new().train(&xs, &ys).unwrap();
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| model.predict(x) == y)
            .count();
        assert_eq!(correct, xs.len());
    }

    #[test]
    fn rbf_svm_handles_xor() {
        // XOR is not linearly separable; RBF should fit it.
        let xs = vec![
            point(2, &[(0, 0.0), (1, 0.0)]),
            point(2, &[(0, 1.0), (1, 1.0)]),
            point(2, &[(0, 0.0), (1, 1.0)]),
            point(2, &[(0, 1.0), (1, 0.0)]),
        ];
        let ys = vec![1, 1, -1, -1];
        let model = SvmTrainer::new()
            .kernel(Kernel::Rbf { gamma: 2.0 })
            .c(100.0)
            .train(&xs, &ys)
            .unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(model.predict(x), y, "misclassified {x:?}");
        }
    }

    #[test]
    fn training_is_deterministic_for_seed() {
        let (xs, ys) = separable();
        let m1 = SvmTrainer::new().seed(9).train(&xs, &ys).unwrap();
        let m2 = SvmTrainer::new().seed(9).train(&xs, &ys).unwrap();
        let probe = point(2, &[(0, 0.3), (1, 0.2)]);
        assert_eq!(m1.decision_function(&probe), m2.decision_function(&probe));
    }

    #[test]
    fn alphas_respect_box_constraint() {
        let (xs, ys) = separable();
        let c = 0.5;
        let model = SvmTrainer::new()
            .kernel(Kernel::Linear)
            .c(c)
            .train(&xs, &ys)
            .unwrap();
        for ay in &model.sv_alpha_y {
            assert!(ay.abs() <= c + 1e-9, "alpha {} exceeds C {}", ay.abs(), c);
        }
    }

    #[test]
    fn margin_examples_have_unit_decision_value() {
        // With separable data and large C, unbound SVs satisfy |f(x)| ~ 1.
        let (xs, ys) = separable();
        let model = SvmTrainer::new()
            .kernel(Kernel::Linear)
            .c(1000.0)
            .train(&xs, &ys)
            .unwrap();
        // All training points must be outside or on the margin.
        for (x, &y) in xs.iter().zip(&ys) {
            let f = model.decision_function(x) * y as f64;
            assert!(f >= 1.0 - 1e-2, "functional margin {f} below 1");
        }
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let (xs, ys) = separable();
        assert!(matches!(
            SvmTrainer::new().train(&[], &[]),
            Err(MlError::EmptyInput)
        ));
        assert!(matches!(
            SvmTrainer::new().train(&xs, &ys[..3]),
            Err(MlError::LabelCountMismatch { .. })
        ));
        let one_class = vec![1, 1, 1, 1];
        assert!(matches!(
            SvmTrainer::new().train(&xs[..4], &one_class),
            Err(MlError::SingleClass)
        ));
        let mixed = vec![SparseVec::zeros(2), SparseVec::zeros(3)];
        assert!(matches!(
            SvmTrainer::new().train(&mixed, &[1, -1]),
            Err(MlError::Ir(_))
        ));
    }

    #[test]
    #[should_panic(expected = "C must be positive")]
    fn c_must_be_positive() {
        let _ = SvmTrainer::new().c(0.0);
    }

    #[test]
    fn tiny_row_cache_trains_identical_model() {
        // Kernel values never depend on the cache, only when they are
        // computed — a 2-row cache (the minimum: SMO touches two rows per
        // step) must reproduce the effectively-unbounded default exactly.
        let (xs, ys) = separable();
        let unbounded = SvmTrainer::new().seed(3).train(&xs, &ys).unwrap();
        let bounded = SvmTrainer::new()
            .seed(3)
            .cache_rows(2)
            .train(&xs, &ys)
            .unwrap();
        assert_eq!(
            bounded.num_support_vectors(),
            unbounded.num_support_vectors()
        );
        for x in &xs {
            assert_eq!(bounded.decision_function(x), unbounded.decision_function(x));
        }
    }

    #[test]
    fn predict_batch_matches_predict() {
        let (xs, ys) = separable();
        let model = SvmTrainer::new()
            .kernel(Kernel::Linear)
            .train(&xs, &ys)
            .unwrap();
        let batch = model.predict_batch(&xs);
        for (i, x) in xs.iter().enumerate() {
            assert_eq!(batch[i], model.predict(x));
        }
    }

    #[test]
    fn overlapping_data_still_trains() {
        // Noisy labels: a few flipped points should not break training.
        let (mut xs, mut ys) = separable();
        ys[0] = -1; // flip one label
        xs.push(point(2, &[(0, 0.0), (1, 0.0)]));
        ys.push(1);
        let model = SvmTrainer::new()
            .kernel(Kernel::Linear)
            .c(1.0)
            .train(&xs, &ys)
            .unwrap();
        let acc = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| model.predict(x) == y)
            .count() as f64
            / xs.len() as f64;
        assert!(acc >= 0.8, "accuracy {acc} too low on noisy data");
    }
}
