//! Evaluation metrics: binary confusion counts, accuracy/precision/recall,
//! the majority-class baseline, and cluster purity.
//!
//! These are exactly the quantities reported in the paper's Tables 4 and 5
//! (classification) and Figures 5 and 6 (purity).

use serde::{Deserialize, Serialize};

use crate::{Label, MlError};

/// Confusion counts for a binary classifier with labels `+1` / `-1`.
///
/// # Examples
///
/// ```
/// use fmeter_ml::metrics::BinaryConfusion;
///
/// let truth = [1, 1, -1, -1];
/// let predicted = [1, -1, -1, -1];
/// let c = BinaryConfusion::from_labels(&truth, &predicted).unwrap();
/// assert_eq!(c.accuracy(), 0.75);
/// assert_eq!(c.precision(), 1.0);
/// assert_eq!(c.recall(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BinaryConfusion {
    /// Positives classified as positive.
    pub true_positives: usize,
    /// Negatives classified as positive.
    pub false_positives: usize,
    /// Negatives classified as negative.
    pub true_negatives: usize,
    /// Positives classified as negative.
    pub false_negatives: usize,
}

impl BinaryConfusion {
    /// Tallies confusion counts from parallel truth/prediction slices.
    ///
    /// Any label `> 0` counts as positive, anything else as negative.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::LabelCountMismatch`] when the slices differ in
    /// length and [`MlError::EmptyInput`] when they are empty.
    pub fn from_labels(truth: &[Label], predicted: &[Label]) -> Result<Self, MlError> {
        if truth.len() != predicted.len() {
            return Err(MlError::LabelCountMismatch {
                vectors: truth.len(),
                labels: predicted.len(),
            });
        }
        if truth.is_empty() {
            return Err(MlError::EmptyInput);
        }
        let mut c = BinaryConfusion::default();
        for (&t, &p) in truth.iter().zip(predicted) {
            match (t > 0, p > 0) {
                (true, true) => c.true_positives += 1,
                (true, false) => c.false_negatives += 1,
                (false, true) => c.false_positives += 1,
                (false, false) => c.true_negatives += 1,
            }
        }
        Ok(c)
    }

    /// Total number of examples.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Fraction of examples classified correctly.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.true_positives + self.true_negatives) as f64 / total as f64
    }

    /// `tp / (tp + fp)`; defined as `0.0` when nothing was predicted
    /// positive (no claims, no correct claims).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            return 0.0;
        }
        self.true_positives as f64 / denom as f64
    }

    /// `tp / (tp + fn)`; defined as `0.0` when the data contains no
    /// positives.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            return 0.0;
        }
        self.true_positives as f64 / denom as f64
    }

    /// Harmonic mean of precision and recall (`0.0` when both are zero).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

/// Accuracy of the pseudo-classifier that always answers with the majority
/// class — the paper's "baseline accuracy" columns in Tables 4 and 5.
///
/// # Errors
///
/// Returns [`MlError::EmptyInput`] for an empty slice.
///
/// # Examples
///
/// ```
/// use fmeter_ml::metrics::majority_baseline;
///
/// // 150 of 250 examples are negative -> baseline 0.6, as in the paper.
/// let labels: Vec<i8> = std::iter::repeat(1).take(100)
///     .chain(std::iter::repeat(-1).take(150)).collect();
/// assert_eq!(majority_baseline(&labels).unwrap(), 0.6);
/// ```
pub fn majority_baseline(labels: &[Label]) -> Result<f64, MlError> {
    if labels.is_empty() {
        return Err(MlError::EmptyInput);
    }
    let positives = labels.iter().filter(|&&l| l > 0).count();
    let negatives = labels.len() - positives;
    Ok(positives.max(negatives) as f64 / labels.len() as f64)
}

/// Cluster purity: each cluster is assigned its most frequent true class and
/// purity is the fraction of points that agree with their cluster's class.
///
/// `assignments[i]` is the cluster of point `i` and `classes[i]` its true
/// class. Returns a probability in `(0, 1]`; it evaluates to `1.0` whenever
/// every cluster is class-homogeneous — including the degenerate case of one
/// cluster per point that the paper leverages in Figure 6.
///
/// # Errors
///
/// Returns [`MlError::LabelCountMismatch`] when the slices differ in length
/// and [`MlError::EmptyInput`] when they are empty.
///
/// # Examples
///
/// ```
/// use fmeter_ml::metrics::purity;
///
/// let assignments = [0, 0, 1, 1];
/// let classes = [0, 0, 1, 0];
/// assert_eq!(purity(&assignments, &classes).unwrap(), 0.75);
/// ```
pub fn purity(assignments: &[usize], classes: &[usize]) -> Result<f64, MlError> {
    if assignments.len() != classes.len() {
        return Err(MlError::LabelCountMismatch {
            vectors: assignments.len(),
            labels: classes.len(),
        });
    }
    if assignments.is_empty() {
        return Err(MlError::EmptyInput);
    }
    let num_clusters = assignments.iter().max().map_or(0, |&m| m + 1);
    let num_classes = classes.iter().max().map_or(0, |&m| m + 1);
    // contingency[cluster][class] = count
    let mut contingency = vec![vec![0usize; num_classes]; num_clusters];
    for (&a, &c) in assignments.iter().zip(classes) {
        contingency[a][c] += 1;
    }
    let correct: usize = contingency
        .iter()
        .map(|row| row.iter().copied().max().unwrap_or(0))
        .sum();
    Ok(correct as f64 / assignments.len() as f64)
}

/// Builds the cluster-by-class contingency table behind the clustering
/// quality metrics.
///
/// # Errors
///
/// Returns [`MlError::LabelCountMismatch`] / [`MlError::EmptyInput`] for
/// malformed input.
fn contingency(assignments: &[usize], classes: &[usize]) -> Result<Vec<Vec<usize>>, MlError> {
    if assignments.len() != classes.len() {
        return Err(MlError::LabelCountMismatch {
            vectors: assignments.len(),
            labels: classes.len(),
        });
    }
    if assignments.is_empty() {
        return Err(MlError::EmptyInput);
    }
    let num_clusters = assignments.iter().max().map_or(0, |&m| m + 1);
    let num_classes = classes.iter().max().map_or(0, |&m| m + 1);
    let mut table = vec![vec![0usize; num_classes]; num_clusters];
    for (&a, &c) in assignments.iter().zip(classes) {
        table[a][c] += 1;
    }
    Ok(table)
}

/// Normalized mutual information between a clustering and the true
/// classes: `NMI = 2 I(C; K) / (H(C) + H(K))`, in `[0, 1]`.
///
/// One of the alternative clustering-quality measures the paper lists in
/// §4.2.2. Unlike [`purity`], NMI penalises over-clustering: splitting
/// every point into its own cluster gives purity 1.0 but low NMI.
///
/// Degenerate single-cluster/single-class inputs carry no information
/// and evaluate to `0.0`.
///
/// # Errors
///
/// Returns [`MlError::LabelCountMismatch`] / [`MlError::EmptyInput`] for
/// malformed input.
pub fn normalized_mutual_information(
    assignments: &[usize],
    classes: &[usize],
) -> Result<f64, MlError> {
    let table = contingency(assignments, classes)?;
    let n = assignments.len() as f64;
    let cluster_sizes: Vec<usize> = table.iter().map(|row| row.iter().sum()).collect();
    let mut class_sizes = vec![0usize; table.first().map_or(0, Vec::len)];
    for row in &table {
        for (c, &v) in row.iter().enumerate() {
            class_sizes[c] += v;
        }
    }
    let entropy = |sizes: &[usize]| -> f64 {
        sizes
            .iter()
            .filter(|&&s| s > 0)
            .map(|&s| {
                let p = s as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let h_clusters = entropy(&cluster_sizes);
    let h_classes = entropy(&class_sizes);
    if h_clusters == 0.0 || h_classes == 0.0 {
        return Ok(0.0);
    }
    let mut mutual_information = 0.0;
    for (k, row) in table.iter().enumerate() {
        for (c, &v) in row.iter().enumerate() {
            if v == 0 {
                continue;
            }
            let p_joint = v as f64 / n;
            let p_k = cluster_sizes[k] as f64 / n;
            let p_c = class_sizes[c] as f64 / n;
            mutual_information += p_joint * (p_joint / (p_k * p_c)).ln();
        }
    }
    Ok((2.0 * mutual_information / (h_clusters + h_classes)).clamp(0.0, 1.0))
}

/// Rand index: the fraction of point pairs on which the clustering and
/// the true classes agree (same/same or different/different), in `[0, 1]`.
///
/// # Errors
///
/// Returns [`MlError::LabelCountMismatch`] / [`MlError::EmptyInput`] for
/// malformed input; requires at least two points (no pairs otherwise).
pub fn rand_index(assignments: &[usize], classes: &[usize]) -> Result<f64, MlError> {
    let table = contingency(assignments, classes)?;
    let n = assignments.len();
    if n < 2 {
        return Err(MlError::NotEnoughData { have: n, need: 2 });
    }
    let choose2 = |x: usize| (x * x.saturating_sub(1) / 2) as f64;
    let total_pairs = choose2(n);
    let cluster_sizes: Vec<usize> = table.iter().map(|row| row.iter().sum()).collect();
    let mut class_sizes = vec![0usize; table.first().map_or(0, Vec::len)];
    for row in &table {
        for (c, &v) in row.iter().enumerate() {
            class_sizes[c] += v;
        }
    }
    let same_both: f64 = table.iter().flatten().map(|&v| choose2(v)).sum();
    let same_cluster: f64 = cluster_sizes.iter().map(|&s| choose2(s)).sum();
    let same_class: f64 = class_sizes.iter().map(|&s| choose2(s)).sum();
    // Agreements = pairs together in both + pairs separated in both.
    let agreements = same_both + (total_pairs - same_cluster - same_class + same_both);
    Ok(agreements / total_pairs)
}

/// Adjusted Rand index: the [`rand_index`] corrected for chance, so a
/// random labelling scores `~0.0` and a perfect one `1.0` (it can go
/// negative for worse-than-chance agreement).
///
/// `ARI = (Σ_{ij} C(n_{ij},2) − E) / (max − E)` where
/// `E = Σ_i C(a_i,2) · Σ_j C(b_j,2) / C(n,2)` and
/// `max = ½ (Σ_i C(a_i,2) + Σ_j C(b_j,2))`. This is the agreement score
/// the sub-quadratic clustering tests use to pin [`Agglomerative::fit_snn`]
/// against the exact NN-chain at scales where exact cut equality is too
/// strict.
///
/// Degenerate inputs where `max == E` (e.g. both sides a single cluster,
/// or every point alone) carry no pair decisions to adjust and evaluate
/// to `1.0` when the clusterings agree perfectly, matching the usual
/// convention.
///
/// [`Agglomerative::fit_snn`]: crate::Agglomerative::fit_snn
///
/// # Errors
///
/// Returns [`MlError::LabelCountMismatch`] / [`MlError::EmptyInput`] for
/// malformed input; requires at least two points (no pairs otherwise).
pub fn adjusted_rand_index(assignments: &[usize], classes: &[usize]) -> Result<f64, MlError> {
    let table = contingency(assignments, classes)?;
    let n = assignments.len();
    if n < 2 {
        return Err(MlError::NotEnoughData { have: n, need: 2 });
    }
    let choose2 = |x: usize| (x * x.saturating_sub(1) / 2) as f64;
    let cluster_sizes: Vec<usize> = table.iter().map(|row| row.iter().sum()).collect();
    let mut class_sizes = vec![0usize; table.first().map_or(0, Vec::len)];
    for row in &table {
        for (c, &v) in row.iter().enumerate() {
            class_sizes[c] += v;
        }
    }
    let index: f64 = table.iter().flatten().map(|&v| choose2(v)).sum();
    let sum_a: f64 = cluster_sizes.iter().map(|&s| choose2(s)).sum();
    let sum_b: f64 = class_sizes.iter().map(|&s| choose2(s)).sum();
    let expected = sum_a * sum_b / choose2(n);
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < f64::EPSILON {
        return Ok(1.0);
    }
    Ok((index - expected) / (max_index - expected))
}

/// Clustering F-measure (F1 over pair decisions): precision = of the
/// pairs the clustering put together, how many share a class; recall = of
/// the same-class pairs, how many the clustering put together.
///
/// # Errors
///
/// Returns [`MlError::LabelCountMismatch`] / [`MlError::EmptyInput`] for
/// malformed input; requires at least two points.
pub fn clustering_f_measure(assignments: &[usize], classes: &[usize]) -> Result<f64, MlError> {
    let table = contingency(assignments, classes)?;
    let n = assignments.len();
    if n < 2 {
        return Err(MlError::NotEnoughData { have: n, need: 2 });
    }
    let choose2 = |x: usize| (x * x.saturating_sub(1) / 2) as f64;
    let cluster_sizes: Vec<usize> = table.iter().map(|row| row.iter().sum()).collect();
    let mut class_sizes = vec![0usize; table.first().map_or(0, Vec::len)];
    for row in &table {
        for (c, &v) in row.iter().enumerate() {
            class_sizes[c] += v;
        }
    }
    let tp: f64 = table.iter().flatten().map(|&v| choose2(v)).sum();
    let positives: f64 = cluster_sizes.iter().map(|&s| choose2(s)).sum();
    let actual: f64 = class_sizes.iter().map(|&s| choose2(s)).sum();
    if positives == 0.0 || actual == 0.0 {
        return Ok(0.0);
    }
    let precision = tp / positives;
    let recall = tp / actual;
    if precision + recall == 0.0 {
        return Ok(0.0);
    }
    Ok(2.0 * precision * recall / (precision + recall))
}

/// Mean and *standard error of the mean* of a sample — the error-bar
/// statistic used throughout the paper's tables and figures.
///
/// Returns `(mean, sem)`; the SEM of a single observation (or an empty
/// sample) is `0.0`.
pub fn mean_sem(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, (var / n).sqrt())
}

/// Mean and (sample) standard deviation, as reported in Tables 4 and 5
/// ("average ± standard deviation, over all folds").
pub fn mean_std(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts_all_quadrants() {
        let truth = [1, 1, 1, -1, -1, -1];
        let pred = [1, 1, -1, 1, -1, -1];
        let c = BinaryConfusion::from_labels(&truth, &pred).unwrap();
        assert_eq!(c.true_positives, 2);
        assert_eq!(c.false_negatives, 1);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.true_negatives, 2);
        assert_eq!(c.total(), 6);
        assert!((c.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_rejects_mismatched_and_empty() {
        assert!(matches!(
            BinaryConfusion::from_labels(&[1], &[1, 1]),
            Err(MlError::LabelCountMismatch { .. })
        ));
        assert!(matches!(
            BinaryConfusion::from_labels(&[], &[]),
            Err(MlError::EmptyInput)
        ));
    }

    #[test]
    fn degenerate_metrics_are_zero_not_nan() {
        // Nothing predicted positive, no positives in data.
        let c = BinaryConfusion::from_labels(&[-1, -1], &[-1, -1]).unwrap();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn majority_baseline_matches_paper_example() {
        // Paper §4.2.1: 100 positive + 150 negative -> 0.6.
        let labels: Vec<Label> = std::iter::repeat_n(1, 100)
            .chain(std::iter::repeat_n(-1, 150))
            .collect();
        assert_eq!(majority_baseline(&labels).unwrap(), 0.6);
    }

    #[test]
    fn majority_baseline_is_at_least_half() {
        let labels = [1, -1, 1, -1];
        assert_eq!(majority_baseline(&labels).unwrap(), 0.5);
    }

    #[test]
    fn purity_perfect_clustering_is_one() {
        let assignments = [0, 0, 1, 1, 2, 2];
        let classes = [1, 1, 0, 0, 2, 2];
        assert_eq!(purity(&assignments, &classes).unwrap(), 1.0);
    }

    #[test]
    fn purity_singleton_clusters_is_one() {
        // Figure 6's observation: K = n gives purity 1.0 trivially.
        let assignments = [0, 1, 2, 3];
        let classes = [0, 0, 1, 1];
        assert_eq!(purity(&assignments, &classes).unwrap(), 1.0);
    }

    #[test]
    fn purity_single_cluster_is_majority_fraction() {
        let assignments = [0, 0, 0, 0];
        let classes = [0, 0, 0, 1];
        assert_eq!(purity(&assignments, &classes).unwrap(), 0.75);
    }

    #[test]
    fn purity_rejects_bad_input() {
        assert!(purity(&[0], &[0, 1]).is_err());
        assert!(purity(&[], &[]).is_err());
    }

    #[test]
    fn nmi_perfect_and_degenerate() {
        // Perfect clustering (up to relabelling): NMI = 1.
        let assignments = [1, 1, 0, 0, 2, 2];
        let classes = [0, 0, 1, 1, 2, 2];
        let nmi = normalized_mutual_information(&assignments, &classes).unwrap();
        assert!((nmi - 1.0).abs() < 1e-12);
        // Single cluster carries no information.
        let nmi = normalized_mutual_information(&[0, 0, 0, 0], &[0, 0, 1, 1]).unwrap();
        assert_eq!(nmi, 0.0);
    }

    #[test]
    fn nmi_penalizes_overclustering_where_purity_does_not() {
        // One cluster per point: purity 1.0 but NMI < 1.
        let classes = [0, 0, 1, 1];
        let singleton: Vec<usize> = (0..4).collect();
        assert_eq!(purity(&singleton, &classes).unwrap(), 1.0);
        let nmi = normalized_mutual_information(&singleton, &classes).unwrap();
        assert!(
            nmi < 1.0,
            "NMI should penalise singleton clusters, got {nmi}"
        );
    }

    #[test]
    fn rand_index_extremes() {
        let classes = [0, 0, 1, 1];
        assert_eq!(rand_index(&[0, 0, 1, 1], &classes).unwrap(), 1.0);
        assert_eq!(rand_index(&[1, 1, 0, 0], &classes).unwrap(), 1.0);
        // Maximally wrong pairing: split every true pair, join every
        // cross pair.
        let ri = rand_index(&[0, 1, 0, 1], &classes).unwrap();
        assert!(
            ri < 0.5,
            "anti-clustering should agree on few pairs, got {ri}"
        );
        assert!(matches!(
            rand_index(&[0], &[0]),
            Err(MlError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn adjusted_rand_index_extremes_and_chance() {
        let classes = [0, 0, 1, 1];
        // Perfect agreement (label permutation is irrelevant).
        assert_eq!(adjusted_rand_index(&[0, 0, 1, 1], &classes).unwrap(), 1.0);
        assert_eq!(adjusted_rand_index(&[1, 1, 0, 0], &classes).unwrap(), 1.0);
        // Anti-clustering agrees on no same-pair decisions: ARI < 0.
        let ari = adjusted_rand_index(&[0, 1, 0, 1], &classes).unwrap();
        assert!(
            ari < 0.0,
            "anti-clustering should score below chance: {ari}"
        );
        // Hand-computed mixed case: clusters {0,0,1}, {1}; classes {0,0},{1,1}.
        // index = C(2,2)=1; sum_a = C(3,2)+C(1,2)=3; sum_b = 2; C(4,2)=6.
        // E = 3*2/6 = 1; max = 2.5; ARI = (1-1)/(2.5-1) = 0.
        let mixed = adjusted_rand_index(&[0, 0, 0, 1], &classes).unwrap();
        assert!(mixed.abs() < 1e-12, "chance-level split: {mixed}");
        // Degenerate: both sides one big cluster — no decisions to adjust.
        assert_eq!(adjusted_rand_index(&[0, 0, 0], &[0, 0, 0]).unwrap(), 1.0);
        assert!(matches!(
            adjusted_rand_index(&[0], &[0]),
            Err(MlError::NotEnoughData { .. })
        ));
        assert!(matches!(
            adjusted_rand_index(&[0], &[0, 1]),
            Err(MlError::LabelCountMismatch { .. })
        ));
    }

    #[test]
    fn f_measure_matches_hand_computation() {
        // Clusters: {a,a,b}, {b}. Same-cluster pairs: 3 (aa, ab, ab);
        // tp = 1 (the aa pair). Same-class pairs: aa + bb = 2.
        let assignments = [0, 0, 0, 1];
        let classes = [0, 0, 1, 1];
        let f = clustering_f_measure(&assignments, &classes).unwrap();
        let precision: f64 = 1.0 / 3.0;
        let recall: f64 = 1.0 / 2.0;
        let expected = 2.0 * precision * recall / (precision + recall);
        assert!((f - expected).abs() < 1e-12);
        // Perfect clustering: F = 1.
        assert_eq!(clustering_f_measure(&[0, 0, 1, 1], &classes).unwrap(), 1.0);
    }

    #[test]
    fn clustering_metrics_reject_malformed_input() {
        for result in [
            normalized_mutual_information(&[0], &[0, 1]).err(),
            rand_index(&[0], &[0, 1]).err(),
            clustering_f_measure(&[0], &[0, 1]).err(),
        ] {
            assert!(matches!(result, Some(MlError::LabelCountMismatch { .. })));
        }
        assert!(normalized_mutual_information(&[], &[]).is_err());
    }

    #[test]
    fn mean_sem_and_std() {
        let (m, s) = mean_sem(&[1.0, 1.0, 1.0]);
        assert_eq!(m, 1.0);
        assert_eq!(s, 0.0);
        let (m, sem) = mean_sem(&[0.0, 2.0]);
        assert_eq!(m, 1.0);
        assert!(sem > 0.0);
        let (_, sd) = mean_std(&[0.0, 2.0]);
        assert!((sd - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(mean_sem(&[]), (0.0, 0.0));
        assert_eq!(mean_sem(&[5.0]), (5.0, 0.0));
    }
}
