//! Ensembles over decision trees: AdaBoost and bagging — the two
//! ensemble techniques the paper names in §4.2.1 ("bagging and boosting
//! of decision trees").

use fmeter_ir::SparseVec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{DecisionTree, DecisionTreeTrainer, Label, MlError};

/// AdaBoost.M1 over depth-limited decision trees.
///
/// Each round trains a weak tree on re-weighted examples, then boosts the
/// weight of misclassified examples; the final prediction is the
/// alpha-weighted vote of all rounds.
///
/// # Examples
///
/// ```
/// use fmeter_ir::SparseVec;
/// use fmeter_ml::AdaBoost;
///
/// // XOR, which a single stump cannot solve.
/// let xs = vec![
///     SparseVec::from_pairs(2, [(0, 0.0), (1, 0.0)]).unwrap(),
///     SparseVec::from_pairs(2, [(0, 1.0), (1, 1.0)]).unwrap(),
///     SparseVec::from_pairs(2, [(0, 0.0), (1, 1.0)]).unwrap(),
///     SparseVec::from_pairs(2, [(0, 1.0), (1, 0.0)]).unwrap(),
/// ];
/// let ys = vec![1, 1, -1, -1];
/// let model = AdaBoost::new(10).weak_depth(2).train(&xs, &ys).unwrap();
/// for (x, &y) in xs.iter().zip(&ys) {
///     assert_eq!(model.predict(x), y);
/// }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaBoost {
    rounds: usize,
    weak_depth: usize,
}

/// A trained AdaBoost ensemble.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaBoostModel {
    trees: Vec<(DecisionTree, f64)>,
    dim: usize,
}

impl AdaBoost {
    /// Creates a booster running `rounds` rounds of depth-1 stumps.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero.
    pub fn new(rounds: usize) -> Self {
        assert!(rounds > 0, "need at least one boosting round");
        AdaBoost {
            rounds,
            weak_depth: 1,
        }
    }

    /// Depth of each weak learner (default 1 — decision stumps).
    pub fn weak_depth(mut self, depth: usize) -> Self {
        self.weak_depth = depth.max(1);
        self
    }

    /// Trains the ensemble.
    ///
    /// # Errors
    ///
    /// Propagates tree-training failures (empty input, mismatched
    /// labels, mixed dimensions).
    pub fn train(&self, vectors: &[SparseVec], labels: &[Label]) -> Result<AdaBoostModel, MlError> {
        if vectors.is_empty() {
            return Err(MlError::EmptyInput);
        }
        let n = vectors.len();
        let mut weights = vec![1.0 / n as f64; n];
        let mut trees = Vec::with_capacity(self.rounds);
        let trainer = DecisionTreeTrainer::default().max_depth(self.weak_depth);
        for _ in 0..self.rounds {
            let tree = trainer.train_weighted(vectors, labels, &weights)?;
            let predictions = tree.predict_batch(vectors);
            let error: f64 = weights
                .iter()
                .zip(labels.iter().zip(&predictions))
                .filter(|(_, (&y, &p))| y != p)
                .map(|(&w, _)| w)
                .sum();
            // A perfect weak learner ends boosting; a useless one (error
            // >= 1/2) cannot help and also ends it.
            if error <= 1e-12 {
                trees.push((tree, 10.0)); // decisive vote
                break;
            }
            if error >= 0.5 {
                break;
            }
            let alpha = 0.5 * ((1.0 - error) / error).ln();
            // Re-weight: misclassified examples up, correct ones down.
            let mut total = 0.0;
            for (w, (&y, &p)) in weights.iter_mut().zip(labels.iter().zip(&predictions)) {
                *w *= (-alpha * f64::from(y) * f64::from(p)).exp();
                total += *w;
            }
            for w in &mut weights {
                *w /= total;
            }
            trees.push((tree, alpha));
        }
        if trees.is_empty() {
            // Fall back to a single unweighted tree (error >= 0.5 on round
            // one — degenerate data); keeps the model total.
            let tree = trainer.train(vectors, labels)?;
            trees.push((tree, 1.0));
        }
        Ok(AdaBoostModel {
            trees,
            dim: vectors[0].dim(),
        })
    }
}

impl AdaBoostModel {
    /// The alpha-weighted vote score (positive means class `+1`).
    pub fn decision_function(&self, x: &SparseVec) -> f64 {
        self.trees
            .iter()
            .map(|(tree, alpha)| alpha * f64::from(tree.predict(x)))
            .sum()
    }

    /// Predicts `+1` or `-1`.
    pub fn predict(&self, x: &SparseVec) -> Label {
        if self.decision_function(x) >= 0.0 {
            1
        } else {
            -1
        }
    }

    /// Predicts a batch.
    pub fn predict_batch(&self, xs: &[SparseVec]) -> Vec<Label> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Number of weak learners kept.
    pub fn num_rounds(&self) -> usize {
        self.trees.len()
    }
}

/// Bootstrap-aggregated decision trees (bagging).
///
/// Each round trains a full-depth tree on a bootstrap resample; the
/// ensemble predicts by majority vote.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bagging {
    rounds: usize,
    max_depth: usize,
    seed: u64,
}

/// A trained bagging ensemble.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaggingModel {
    trees: Vec<DecisionTree>,
}

impl Bagging {
    /// Creates a bagger with `rounds` bootstrap trees.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero.
    pub fn new(rounds: usize) -> Self {
        assert!(rounds > 0, "need at least one bagging round");
        Bagging {
            rounds,
            max_depth: 8,
            seed: 0,
        }
    }

    /// Depth bound for each tree (default 8).
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth.max(1);
        self
    }

    /// Bootstrap RNG seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Trains the ensemble.
    ///
    /// # Errors
    ///
    /// Propagates tree-training failures.
    pub fn train(&self, vectors: &[SparseVec], labels: &[Label]) -> Result<BaggingModel, MlError> {
        if vectors.is_empty() {
            return Err(MlError::EmptyInput);
        }
        if vectors.len() != labels.len() {
            return Err(MlError::LabelCountMismatch {
                vectors: vectors.len(),
                labels: labels.len(),
            });
        }
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let trainer = DecisionTreeTrainer::default().max_depth(self.max_depth);
        let n = vectors.len();
        let mut trees = Vec::with_capacity(self.rounds);
        for _ in 0..self.rounds {
            let mut xs = Vec::with_capacity(n);
            let mut ys = Vec::with_capacity(n);
            for _ in 0..n {
                let pick = rng.random_range(0..n);
                xs.push(vectors[pick].clone());
                ys.push(labels[pick]);
            }
            // A bootstrap may draw a single class; retry once with the
            // full data in that degenerate case.
            let tree = if ys.iter().all(|&y| y == ys[0]) {
                trainer.train(vectors, labels)?
            } else {
                trainer.train(&xs, &ys)?
            };
            trees.push(tree);
        }
        Ok(BaggingModel { trees })
    }
}

impl BaggingModel {
    /// Majority vote over the ensemble.
    pub fn predict(&self, x: &SparseVec) -> Label {
        let votes: i64 = self.trees.iter().map(|t| i64::from(t.predict(x))).sum();
        if votes >= 0 {
            1
        } else {
            -1
        }
    }

    /// Predicts a batch.
    pub fn predict_batch(&self, xs: &[SparseVec]) -> Vec<Label> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Number of trees in the ensemble.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(pairs: &[(u32, f64)]) -> SparseVec {
        SparseVec::from_pairs(8, pairs.iter().copied()).unwrap()
    }

    fn noisy_bands(seed: u64) -> (Vec<SparseVec>, Vec<Label>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..30 {
            xs.push(point(&[
                (0, 1.0 + rng.random::<f64>()),
                (2, rng.random::<f64>()),
            ]));
            ys.push(1);
            xs.push(point(&[
                (1, 1.0 + rng.random::<f64>()),
                (2, rng.random::<f64>()),
            ]));
            ys.push(-1);
        }
        (xs, ys)
    }

    #[test]
    fn boosting_beats_a_single_stump_on_xor() {
        let xs = vec![
            point(&[(0, 0.0), (1, 0.0)]),
            point(&[(0, 1.0), (1, 1.0)]),
            point(&[(0, 0.0), (1, 1.0)]),
            point(&[(0, 1.0), (1, 0.0)]),
        ];
        let ys = vec![1, 1, -1, -1];
        let model = AdaBoost::new(12).weak_depth(2).train(&xs, &ys).unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(model.predict(x), y);
        }
        assert!(model.num_rounds() >= 1);
    }

    #[test]
    fn boosting_stops_early_on_perfect_learner() {
        let (xs, ys) = noisy_bands(1);
        let model = AdaBoost::new(50).weak_depth(4).train(&xs, &ys).unwrap();
        // Separable by one tree: should terminate well before 50 rounds.
        assert!(model.num_rounds() < 5, "rounds = {}", model.num_rounds());
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| model.predict(x) == y)
            .count();
        assert_eq!(correct, xs.len());
    }

    #[test]
    fn decision_function_sign_matches_predict() {
        let (xs, ys) = noisy_bands(2);
        let model = AdaBoost::new(5).train(&xs, &ys).unwrap();
        for x in &xs {
            let f = model.decision_function(x);
            assert_eq!(model.predict(x), if f >= 0.0 { 1 } else { -1 });
        }
    }

    #[test]
    fn bagging_separates_and_is_deterministic() {
        let (xs, ys) = noisy_bands(3);
        let m1 = Bagging::new(7).seed(4).train(&xs, &ys).unwrap();
        let m2 = Bagging::new(7).seed(4).train(&xs, &ys).unwrap();
        assert_eq!(m1.num_trees(), 7);
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| m1.predict(x) == y)
            .count();
        assert!(correct as f64 / xs.len() as f64 > 0.95);
        assert_eq!(m1.predict_batch(&xs), m2.predict_batch(&xs));
    }

    #[test]
    fn ensembles_reject_empty_input() {
        assert!(matches!(
            AdaBoost::new(3).train(&[], &[]),
            Err(MlError::EmptyInput)
        ));
        assert!(matches!(
            Bagging::new(3).train(&[], &[]),
            Err(MlError::EmptyInput)
        ));
    }

    #[test]
    #[should_panic(expected = "at least one boosting round")]
    fn zero_rounds_panics() {
        let _ = AdaBoost::new(0);
    }

    #[test]
    fn boosting_handles_label_noise() {
        let (xs, mut ys) = noisy_bands(5);
        // Flip a few labels.
        ys[0] = -ys[0];
        ys[7] = -ys[7];
        let model = AdaBoost::new(20).weak_depth(2).train(&xs, &ys).unwrap();
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| model.predict(x) == y)
            .count();
        assert!(correct as f64 / xs.len() as f64 > 0.85);
    }
}
