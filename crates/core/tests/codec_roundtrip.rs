//! Property tests for the v5 binary codec: arbitrary churned databases
//! must round-trip through the binary envelope *bit-identically* — and
//! land on exactly the same bits as the legacy all-JSON v4 path, so the
//! codec switch is invisible to every consumer of the data.
//!
//! (The companion property — any single-bit flip in a binary section
//! payload is caught by checksum and attributed to the right section —
//! lives in `durability.rs`, where the negative-persistence suite is.)

use fmeter_core::{RawSignature, SignatureDb, WalOp};
use fmeter_ir::codec::{decode_from_slice, encode_to_vec};
use fmeter_kernel_sim::Nanos;
use proptest::prelude::*;

const DIM: usize = 8;

fn raw(mut counts: Vec<u64>, i: u64, label: Option<String>) -> RawSignature {
    // Keep every document non-empty so builds never degenerate.
    if counts.iter().all(|&c| c == 0) {
        counts[i as usize % DIM] = 1;
    }
    RawSignature {
        counts,
        started_at: Nanos(i * 10),
        ended_at: Nanos((i + 1) * 10),
        label,
    }
}

fn arb_label() -> impl Strategy<Value = Option<String>> {
    prop_oneof![
        Just(None),
        Just(Some("alpha".to_string())),
        Just(Some("beta".to_string())),
        // Exercise non-ASCII labels through the length-prefixed UTF-8
        // string encoding.
        Just(Some("düsseldorf-零".to_string())),
    ]
}

#[derive(Debug, Clone)]
enum Churn {
    Insert(Vec<u64>),
    Remove(usize),
    Refit,
    Vacuum,
}

fn arb_churn() -> impl Strategy<Value = Churn> {
    prop_oneof![
        prop::collection::vec(0u64..100, DIM..DIM + 1).prop_map(Churn::Insert),
        (0usize..64).prop_map(Churn::Remove),
        Just(Churn::Refit),
        Just(Churn::Vacuum),
    ]
}

fn churned_db(seeds: &[(Vec<u64>, u64)], churn: &[Churn]) -> SignatureDb {
    let raws: Vec<RawSignature> = seeds
        .iter()
        .enumerate()
        .map(|(i, (counts, salt))| {
            let label = match salt % 3 {
                0 => None,
                1 => Some("alpha".to_string()),
                _ => Some("beta".to_string()),
            };
            raw(counts.clone(), i as u64, label)
        })
        .collect();
    let mut db = SignatureDb::build(&raws).expect("seed corpus builds");
    for (i, op) in churn.iter().enumerate() {
        match op {
            Churn::Insert(counts) => {
                db.insert(&raw(counts.clone(), 100 + i as u64, None))
                    .expect("insert");
            }
            Churn::Remove(selector) => {
                if db.len() > 1 {
                    let live: Vec<usize> = (0..db.num_slots()).filter(|&d| db.is_live(d)).collect();
                    db.remove(live[selector % live.len()]).expect("remove live");
                }
            }
            Churn::Refit => {
                db.refit();
            }
            Churn::Vacuum => {
                db.vacuum();
            }
        }
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Save-v5 → load → save-v5 is a byte-level fixed point, and the
    /// v4 JSON detour (save-v4 → load → save-v5) lands on the *same*
    /// bytes. Byte equality of the binary envelope is `f64::to_bits`
    /// equality of every stored weight — the binary codec loses
    /// nothing the JSON path kept.
    #[test]
    fn churned_dbs_round_trip_bit_identically_vs_the_v4_path(
        seeds in prop::collection::vec(
            (prop::collection::vec(0u64..100, DIM..DIM + 1), 0u64..100),
            2..8,
        ),
        churn in prop::collection::vec(arb_churn(), 0..12),
    ) {
        let db = churned_db(&seeds, &churn);

        let mut v5 = Vec::new();
        db.save(&mut v5).expect("save v5");
        let from5 = SignatureDb::load(&v5[..]).expect("load v5");
        let mut v5_again = Vec::new();
        from5.save(&mut v5_again).expect("re-save v5");
        // v5 save/load must be a byte fixed point.
        prop_assert_eq!(&v5, &v5_again);

        let mut v4 = Vec::new();
        db.save_as_version(4, &mut v4).expect("save v4");
        let from4 = SignatureDb::load(&v4[..]).expect("load v4 (migrates)");
        let mut v4_to_v5 = Vec::new();
        from4.save(&mut v4_to_v5).expect("save migrated db as v5");
        // The v4 JSON path and the v5 binary path must not diverge
        // bit-wise.
        prop_assert_eq!(&v5, &v4_to_v5);
    }

    /// Every [`WalOp`] round-trips exactly through the binary WAL
    /// payload codec, arbitrary counts / timestamps / labels included.
    #[test]
    fn wal_ops_round_trip_through_the_binary_codec(
        counts in prop::collection::vec(any::<u64>(), 0..12),
        start in any::<u64>(),
        len in 0u64..1_000_000,
        label in arb_label(),
        batch in prop::collection::vec(
            (prop::collection::vec(any::<u64>(), 0..6), any::<u64>()),
            0..4,
        ),
        doc in any::<usize>(),
    ) {
        let sig = RawSignature {
            counts,
            started_at: Nanos(start),
            ended_at: Nanos(start.saturating_add(len)),
            label,
        };
        let batch: Vec<RawSignature> = batch
            .into_iter()
            .map(|(counts, t)| RawSignature {
                counts,
                started_at: Nanos(t),
                ended_at: Nanos(t.saturating_add(1)),
                label: None,
            })
            .collect();
        let ops = [
            WalOp::Insert(sig),
            WalOp::InsertBatch(batch),
            WalOp::Remove(doc),
            WalOp::Refit,
            WalOp::Vacuum,
        ];
        for op in &ops {
            let bytes = encode_to_vec(op);
            let back: WalOp = decode_from_slice(&bytes).expect("decode WalOp");
            prop_assert_eq!(&back, op);
        }
    }
}
