//! Kill-and-replay: the crash-consistency contract of the durability
//! layer, driven end to end through the real code paths.
//!
//! The property under test (for any interleave of insert / batch /
//! remove / refit / vacuum and a crash at *any* byte offset of the WAL
//! or the newest checkpoint): recovery reconstructs exactly the flat
//! replay of the durably-acked op prefix — same live set, same epochs,
//! bit-identical search scores and classifications. Alongside it, the
//! negative-persistence suite locks in that damaged envelopes are
//! *rejected loudly* (named section, never garbage data), and the
//! service-level tests prove a durable [`SignatureService`] recovers,
//! degrades, and heals without poisoning its writer.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use fmeter_core::fault::FailPlan;
use fmeter_core::persist::{split_envelope, CURRENT_FORMAT_VERSION};
use fmeter_core::{
    CheckpointPolicy, DurableDb, DurableOptions, FmeterError, RawSignature, SignatureDb,
    SignatureService, SyncPolicy, WalHealth, WalOp,
};
use fmeter_kernel_sim::Nanos;
use proptest::prelude::*;

const DIM: usize = 10;

/// A unique scratch directory per call (no tempfile crate in-tree).
fn test_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "fmeter-durability-{}-{tag}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).expect("create scratch dir");
    for entry in fs::read_dir(src).expect("read durable dir") {
        let entry = entry.expect("dir entry");
        fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy durable file");
    }
}

fn raw(counts: Vec<u64>, i: u64, label: &str) -> RawSignature {
    RawSignature {
        counts,
        started_at: Nanos(i * 10),
        ended_at: Nanos((i + 1) * 10),
        label: Some(label.to_string()),
    }
}

/// Two term-band classes so searches and classifications have structure.
fn seed_corpus() -> Vec<RawSignature> {
    (0..5u64)
        .flat_map(|i| {
            [
                raw(vec![40 + i, 30, 20, 10, 0, 0, 1, 0, 0, 0], i, "alpha"),
                raw(vec![0, 0, 1, 0, 0, 50, 40 + i, 30, 20, 10], i, "beta"),
            ]
        })
        .collect()
}

fn seed_db() -> SignatureDb {
    SignatureDb::build(&seed_corpus()).expect("seed corpus builds")
}

fn probes() -> Vec<RawSignature> {
    vec![
        raw(vec![42, 29, 21, 11, 0, 0, 1, 0, 0, 0], 90, "alpha"),
        raw(vec![0, 0, 1, 0, 0, 48, 41, 31, 19, 9], 91, "beta"),
        raw(vec![10, 10, 10, 10, 10, 10, 10, 10, 10, 10], 92, "flat"),
    ]
}

/// WAL-syncs every record and never checkpoints on its own, so the
/// whole interleave stays in one WAL file for the tail sweep.
fn manual_opts() -> DurableOptions {
    DurableOptions {
        sync: SyncPolicy::EveryRecord,
        checkpoint: CheckpointPolicy::Manual,
    }
}

/// Asserts two databases are the same state: structure equal, stored
/// vectors bit-equal, search scores and classifications bit-identical.
fn assert_states_identical(a: &SignatureDb, b: &SignatureDb) {
    assert_eq!(a.len(), b.len(), "live counts diverged");
    assert_eq!(a.num_slots(), b.num_slots(), "slot spaces diverged");
    assert_eq!(a.epoch(), b.epoch(), "idf epochs diverged");
    for d in 0..a.num_slots() {
        assert_eq!(a.is_live(d), b.is_live(d), "liveness diverged at {d}");
        let (x, y) = (&a.signatures()[d].vector, &b.signatures()[d].vector);
        assert_eq!(x.dim(), y.dim());
        for t in 0..x.dim() as u32 {
            assert_eq!(
                x.get(t).to_bits(),
                y.get(t).to_bits(),
                "doc {d} term {t} not bit-equal"
            );
        }
    }
    for probe in probes() {
        let q = probe.to_term_counts();
        let hits_a = a.search(&q, 5).expect("search");
        let hits_b = b.search(&q, 5).expect("search");
        assert_eq!(hits_a.len(), hits_b.len());
        for ((s1, x1), (s2, x2)) in hits_a.iter().zip(&hits_b) {
            assert_eq!(s1.label, s2.label, "hit labels diverged");
            assert_eq!(x1.to_bits(), x2.to_bits(), "scores not bit-identical");
        }
        assert_eq!(
            a.classify(&q, 3).expect("classify"),
            b.classify(&q, 3).expect("classify"),
            "classifications diverged"
        );
    }
}

/// One scripted mutation against the durable database under test.
#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u64>),
    /// Insert a batch of `1 + n % 3` derived signatures.
    Batch(u8),
    /// Remove the `selector % live`-th live signature.
    Remove(usize),
    Refit,
    Vacuum,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        prop::collection::vec(0u64..60, DIM..DIM + 1).prop_map(Op::Insert),
        (0u8..6).prop_map(Op::Batch),
        (0usize..64).prop_map(Op::Remove),
        Just(Op::Refit),
        Just(Op::Vacuum),
    ]
}

/// Applies one op to the durable database, mirroring what was logged
/// (for the flat-replay oracle) and the WAL byte boundary it acked at.
fn apply_op(
    durable: &mut DurableDb,
    i: usize,
    op: &Op,
    logged: &mut Vec<WalOp>,
    boundaries: &mut Vec<u64>,
) {
    match op {
        Op::Insert(counts) => {
            let label = if i.is_multiple_of(2) { "alpha" } else { "beta" };
            let r = raw(counts.clone(), 200 + i as u64, label);
            logged.push(WalOp::Insert(r.clone()));
            durable.insert(&r).expect("insert succeeds");
        }
        Op::Batch(n) => {
            let rs: Vec<RawSignature> = (0..u64::from(n % 3) + 1)
                .map(|j| {
                    let mut counts = vec![1u64; DIM];
                    counts[(i + j as usize) % DIM] = 30 + j;
                    raw(counts, 300 + i as u64 * 4 + j, "beta")
                })
                .collect();
            logged.push(WalOp::InsertBatch(rs.clone()));
            durable.insert_batch(&rs).expect("batch insert succeeds");
        }
        Op::Remove(selector) => {
            let db = durable.db();
            if db.len() <= 1 {
                return; // keep the corpus non-empty; nothing is logged
            }
            let live: Vec<usize> = (0..db.num_slots()).filter(|&d| db.is_live(d)).collect();
            let victim = live[selector % live.len()];
            logged.push(WalOp::Remove(victim));
            durable.remove(victim).expect("victim is live");
        }
        Op::Refit => {
            logged.push(WalOp::Refit);
            durable.refit();
        }
        Op::Vacuum => {
            logged.push(WalOp::Vacuum);
            durable.vacuum();
        }
    }
    if logged.len() > boundaries.len() {
        boundaries.push(durable.log().wal_bytes());
    }
}

/// The flat-replay oracle: the checkpointed base plus the first `m`
/// logged ops, applied exactly like WAL replay applies them.
fn oracle(base: &SignatureDb, logged: &[WalOp], m: usize) -> SignatureDb {
    let mut db = base.clone();
    for op in &logged[..m] {
        let _ = op.apply(&mut db);
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// THE tentpole property: crash the WAL at an arbitrary byte and
    /// recovery must equal the flat replay of exactly the op prefix
    /// whose records survived on disk — no more, no less, bit-identical.
    #[test]
    fn recovery_equals_flat_replay_of_the_acked_prefix(
        ops in prop::collection::vec(arb_op(), 1..12),
        cut_frac in 0.0f64..=1.0,
    ) {
        let dir = test_dir("kill");
        let scratch = test_dir("kill-scratch");
        let base = seed_db();
        let mut durable =
            DurableDb::create(&dir, base.clone(), manual_opts()).expect("create durable dir");
        let header_len = durable.log().wal_bytes();
        let (mut logged, mut boundaries) = (Vec::new(), Vec::new());
        for (i, op) in ops.iter().enumerate() {
            apply_op(&mut durable, i, op, &mut logged, &mut boundaries);
        }
        let generation = durable.log().generation();
        let wal_len = durable.log().wal_bytes();
        drop(durable); // crash: nothing checkpointed since create

        let cut = (wal_len as f64 * cut_frac) as u64;
        copy_dir(&dir, &scratch);
        let wal = scratch.join(format!("wal-{generation:010}.log"));
        let bytes = fs::read(&wal).expect("read wal");
        fs::write(&wal, &bytes[..cut.min(bytes.len() as u64) as usize]).expect("truncate wal");

        let (recovered, report) =
            DurableDb::recover_with(&scratch, manual_opts()).expect("recovery succeeds");
        let acked = boundaries.iter().filter(|&&b| b <= cut).count();
        // Replay must stop exactly at the torn record.
        prop_assert_eq!(report.replayed_ops, acked);
        let clean_cut = cut >= wal_len || cut == header_len || boundaries.contains(&cut);
        prop_assert_eq!(report.torn_tail, !clean_cut);
        assert_states_identical(recovered.db(), &oracle(&base, &logged, acked));
        // Recovery is self-healing: the recovered instance keeps going.
        let mut recovered = recovered;
        recovered.insert(&probes()[0]).expect("post-recovery insert");
        recovered.checkpoint().expect("post-recovery checkpoint");
        prop_assert_eq!(recovered.health(), WalHealth::Healthy);
        drop(recovered);
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&scratch);
    }

    /// A crash that tears the *newest checkpoint* (at any byte) must
    /// fall back a generation and still recover everything acked, by
    /// chaining the previous generation's WAL into the newer one.
    #[test]
    fn truncated_newest_checkpoint_falls_back_a_generation(
        ops_a in prop::collection::vec(arb_op(), 1..7),
        ops_b in prop::collection::vec(arb_op(), 1..7),
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = test_dir("ckpt");
        let base = seed_db();
        let mut durable =
            DurableDb::create(&dir, base.clone(), manual_opts()).expect("create durable dir");
        let first_gen = durable.log().generation();
        let (mut logged, mut boundaries) = (Vec::new(), Vec::new());
        for (i, op) in ops_a.iter().enumerate() {
            apply_op(&mut durable, i, op, &mut logged, &mut boundaries);
        }
        durable.checkpoint().expect("mid-stream checkpoint");
        let newest_gen = durable.log().generation();
        prop_assert_eq!(newest_gen, first_gen + 1);
        for (i, op) in ops_b.iter().enumerate() {
            apply_op(&mut durable, 100 + i, op, &mut logged, &mut boundaries);
        }
        drop(durable); // crash

        // Tear the newest checkpoint at an arbitrary interior byte.
        let ckpt = dir.join(format!("checkpoint-{newest_gen:010}.fmdb"));
        let bytes = fs::read(&ckpt).expect("read checkpoint");
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        fs::write(&ckpt, &bytes[..cut]).expect("truncate checkpoint");

        let (recovered, report) =
            DurableDb::recover_with(&dir, manual_opts()).expect("fallback recovery succeeds");
        // Recovered from the previous generation, whose WAL chains into
        // the newer one — nothing acked is lost.
        prop_assert_eq!(report.generation, first_gen);
        prop_assert_eq!(report.checkpoints_skipped, 1);
        prop_assert_eq!(report.replayed_ops, logged.len());
        assert_states_identical(recovered.db(), &oracle(&base, &logged, logged.len()));
        drop(recovered);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Any single-bit flip inside any section payload — binary or JSON
    /// — fails that section's checksum on load, by name, before any
    /// payload parses. (Under v5 the heavy sections are binary, so the
    /// full 0..8 bit range applies; there is no UTF-8 layer to trip
    /// over first.)
    #[test]
    fn any_single_bit_flip_in_a_section_payload_is_caught(
        section_frac in 0.0f64..1.0,
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = Vec::new();
        seed_db().save(&mut bytes).expect("save");
        let (version, sections) = split_envelope(&bytes).expect("well-formed envelope");
        prop_assert_eq!(version, CURRENT_FORMAT_VERSION);

        let magic_end = bytes.iter().position(|&b| b == b'\n').expect("magic line") + 1;
        let body_start = magic_end
            + bytes[magic_end..]
                .iter()
                .position(|&b| b == b'\n')
                .expect("header line")
            + 1;
        let k = ((sections.len() as f64 * section_frac) as usize).min(sections.len() - 1);
        let payload = &sections[k].payload;
        let offset_in_section =
            ((payload.len() as f64 * byte_frac) as usize).min(payload.len() - 1);
        let pos = body_start
            + sections[..k].iter().map(|s| s.payload.len()).sum::<usize>()
            + offset_in_section;
        bytes[pos] ^= 1 << bit;
        match SignatureDb::load(&bytes[..]) {
            Err(FmeterError::CorruptEnvelope { section, .. }) => {
                // The checksum failure names the damaged section.
                prop_assert_eq!(&section, &sections[k].name);
            }
            Err(other) => prop_assert!(false, "expected CorruptEnvelope, got: {other}"),
            Ok(_) => prop_assert!(
                false,
                "bit flip in `{}` loaded successfully",
                sections[k].name
            ),
        }
    }
}

/// The deterministic sweep companion to the property test: one fixed
/// interleave, a crash at *every* interesting byte offset of the WAL
/// (all record boundaries, their neighbours, and a dense stride), and a
/// read-only recovery compared against the oracle at each.
#[test]
fn wal_tail_sweep_recovers_the_clean_prefix_at_every_offset() {
    use fmeter_core::DurableLog;

    let dir = test_dir("sweep");
    let base = seed_db();
    let mut durable =
        DurableDb::create(&dir, base.clone(), manual_opts()).expect("create durable dir");
    let header_len = durable.log().wal_bytes();
    let (mut logged, mut boundaries) = (Vec::new(), Vec::new());
    let script = [
        Op::Insert(vec![9, 8, 7, 6, 5, 4, 3, 2, 1, 0]),
        Op::Remove(3),
        Op::Refit,
        Op::Batch(4),
        Op::Vacuum,
        Op::Insert(vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1]),
    ];
    for (i, op) in script.iter().enumerate() {
        apply_op(&mut durable, i, op, &mut logged, &mut boundaries);
    }
    let generation = durable.log().generation();
    let wal_len = durable.log().wal_bytes();
    drop(durable);

    let scratch = test_dir("sweep-scratch");
    copy_dir(&dir, &scratch);
    let wal_path = scratch.join(format!("wal-{generation:010}.log"));
    let full = fs::read(&wal_path).expect("read wal");
    assert_eq!(full.len() as u64, wal_len);

    // Every record boundary and its immediate neighbours, plus a dense
    // stride over the whole file (the byte-exhaustive scan lives in the
    // wal module's unit tests; this sweep re-proves it through full
    // checkpoint-load + replay recovery).
    let mut cuts: Vec<u64> = vec![0, header_len.saturating_sub(1), header_len, wal_len];
    for &b in &boundaries {
        cuts.extend([b.saturating_sub(1), b, b + 1]);
    }
    cuts.extend((0..wal_len).step_by(7));
    cuts.sort_unstable();
    cuts.dedup();
    for cut in cuts {
        let cut = cut.min(wal_len);
        fs::write(&wal_path, &full[..cut as usize]).expect("truncate wal");
        let (db, _, report) = DurableLog::recover_state(&scratch).expect("read-only recovery");
        let acked = boundaries.iter().filter(|&&b| b <= cut).count();
        assert_eq!(
            report.replayed_ops, acked,
            "cut at byte {cut}: wrong replay length"
        );
        assert_states_identical(&db, &oracle(&base, &logged, acked));
    }
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&scratch);
}

/// A durable service crashes with a torn WAL tail, recovers everything
/// acked minus the torn record, and continues streaming durably.
#[test]
fn durable_service_survives_a_torn_tail_and_continues() {
    let dir = test_dir("svc");
    let base = seed_db();
    let service = SignatureService::from_db_durable(base.clone(), 3, &dir, manual_opts())
        .expect("durable service");
    let mut logged = Vec::new();
    let mut boundaries = Vec::new();
    for (i, probe) in probes().iter().cycle().take(6).enumerate() {
        let mut r = probe.clone();
        r.started_at = Nanos(500 + i as u64);
        logged.push(WalOp::Insert(r.clone()));
        service.insert(&r).expect("stream insert");
        boundaries.push(
            service
                .with_durable_log(|log| log.wal_bytes())
                .expect("service is durable"),
        );
    }
    let generation = service
        .with_durable_log(|log| log.generation())
        .expect("service is durable");
    drop(service); // crash

    // Tear the tail mid-way through the last record: it must be lost.
    let wal = dir.join(format!("wal-{generation:010}.log"));
    let bytes = fs::read(&wal).expect("read wal");
    let cut = (boundaries[boundaries.len() - 2] + 4) as usize;
    fs::write(&wal, &bytes[..cut]).expect("truncate wal");

    let (recovered, report) =
        SignatureService::recover_durable(&dir, manual_opts()).expect("service recovery");
    assert_eq!(report.replayed_ops, logged.len() - 1);
    assert!(report.torn_tail);
    let expect = oracle(&base, &logged, logged.len() - 1);
    assert_eq!(recovered.len(), expect.len());
    for probe in probes() {
        let q = probe.to_term_counts();
        let got = recovered.search(&q, 5).expect("recovered search");
        let want = expect.search(&q, 5).expect("oracle search");
        assert_eq!(got.len(), want.len());
        for ((_, s1, x1), (s2, x2)) in got.iter().zip(&want) {
            assert_eq!(s1.label, s2.label);
            assert_eq!(x1.to_bits(), x2.to_bits(), "scores not bit-identical");
        }
    }
    // ... and the recovered service keeps streaming durably.
    recovered
        .insert(&probes()[1])
        .expect("post-recovery insert");
    recovered.checkpoint().expect("post-recovery checkpoint");
    assert_eq!(recovered.durability_health(), Some(WalHealth::Healthy));
    drop(recovered);
    let _ = fs::remove_dir_all(&dir);
}

/// A failing WAL degrades the service's durability health — mutations
/// and queries keep working — and a later checkpoint heals it, instead
/// of poisoning the writer.
#[test]
fn durable_service_degrades_and_heals_without_poisoning_the_writer() {
    let dir = test_dir("degrade");
    let service = SignatureService::from_db_durable(seed_db(), 2, &dir, manual_opts())
        .expect("durable service");
    service
        .with_durable_log(|log| log.set_wal_fail_plan(Some(FailPlan::kill_at(0))))
        .expect("service is durable");
    service
        .insert(&probes()[0])
        .expect("insert applies in memory");
    assert!(
        matches!(
            service.durability_health(),
            Some(WalHealth::Degraded { .. })
        ),
        "a WAL failure must surface as degraded health"
    );
    // Queries are unaffected while degraded.
    let q = probes()[0].to_term_counts();
    assert!(!service.search(&q, 3).expect("degraded search").is_empty());

    // Disarm the fault; backoff'd checkpoint retries heal the log.
    service
        .with_durable_log(|log| log.set_wal_fail_plan(None))
        .expect("service is durable");
    let mut healed = false;
    for i in 0..600 {
        service
            .insert(&probes()[i % 3])
            .expect("insert while healing");
        if service.durability_health() == Some(WalHealth::Healthy) {
            healed = true;
            break;
        }
    }
    assert!(healed, "backoff'd retries never re-established durability");
    // Everything applied in memory — including the ops from the
    // degraded window — is durable again: recover and compare.
    let expected_len = service.len();
    drop(service);
    let (recovered, _) =
        SignatureService::recover_durable(&dir, manual_opts()).expect("recovery after heal");
    assert_eq!(recovered.len(), expected_len);
    drop(recovered);
    let _ = fs::remove_dir_all(&dir);
}

// ---- negative persistence (satellite) --------------------------------

/// Replaces the first occurrence of `needle` in `bytes` (the v5
/// envelope is no longer UTF-8, so edits are byte surgery).
fn replace_once(bytes: &[u8], needle: &[u8], replacement: &[u8]) -> Vec<u8> {
    let pos = bytes
        .windows(needle.len())
        .position(|w| w == needle)
        .expect("needle present in envelope");
    let mut out = Vec::with_capacity(bytes.len() - needle.len() + replacement.len());
    out.extend_from_slice(&bytes[..pos]);
    out.extend_from_slice(replacement);
    out.extend_from_slice(&bytes[pos + needle.len()..]);
    out
}

#[test]
fn future_format_versions_are_rejected() {
    let mut bytes = Vec::new();
    seed_db().save(&mut bytes).expect("save");
    let cur = CURRENT_FORMAT_VERSION;
    let bumped = replace_once(&bytes, format!("FMETERDB {cur}").as_bytes(), b"FMETERDB 9");
    let bumped = replace_once(
        &bumped,
        format!("\"format_version\":{cur}").as_bytes(),
        b"\"format_version\":9",
    );
    match SignatureDb::load(&bumped[..]) {
        Err(FmeterError::UnsupportedFormat { found, supported }) => {
            assert_eq!(found, 9);
            assert_eq!(supported, cur);
        }
        other => panic!("expected UnsupportedFormat, got: {other:?}"),
    }
}

#[test]
fn bad_magic_and_garbage_are_rejected() {
    let mut bytes = Vec::new();
    seed_db().save(&mut bytes).expect("save");
    let mangled = replace_once(&bytes, b"FMETERDB", b"NOTMYDBX");
    assert!(SignatureDb::load(&mangled[..]).is_err(), "bad magic");
    assert!(SignatureDb::load(&b""[..]).is_err(), "empty input");
    assert!(
        SignatureDb::load(&b"\x00\xff\x00\xff garbage"[..]).is_err(),
        "binary garbage"
    );
}

#[test]
fn recovery_on_empty_or_partially_created_directories_fails_loudly() {
    let missing = test_dir("missing").join("never-created");
    assert!(DurableDb::recover(&missing).is_err(), "missing directory");

    let empty = test_dir("empty");
    fs::create_dir_all(&empty).expect("mkdir");
    assert!(DurableDb::recover(&empty).is_err(), "empty directory");
    assert!(
        SignatureService::recover_durable(&empty, DurableOptions::default()).is_err(),
        "service recovery on an empty directory"
    );

    // A directory holding only the debris of an interrupted create —
    // a temp file and a manifest, but no committed checkpoint.
    let partial = test_dir("partial");
    fs::create_dir_all(&partial).expect("mkdir");
    fs::write(partial.join("checkpoint-0000000001.fmdb.tmp"), b"half").expect("write tmp");
    fs::write(partial.join("MANIFEST"), b"FMMANIFEST bogus\n{}\n").expect("write manifest");
    assert!(
        DurableDb::recover(&partial).is_err(),
        "tmp-and-manifest-only directory"
    );
    for dir in [missing.parent().unwrap().to_path_buf(), empty, partial] {
        let _ = fs::remove_dir_all(dir);
    }
}
