//! Property tests for the sharded [`SignatureService`]: under any
//! shard count and any interleave of insert / remove / refit / vacuum,
//! service search and classification must be bit-identical to the flat
//! [`SignatureDb`] replaying the same history (the issue's acceptance
//! bound is 1e-9; the implementation delivers exact equality and these
//! tests pin the stronger claim). The sharded save/load path must
//! round-trip the layout.

use fmeter_core::{RawSignature, RefitPolicy, SignatureDb, SignatureService};
use fmeter_ir::TermCounts;
use fmeter_kernel_sim::Nanos;
use proptest::prelude::*;

const DIM: usize = 10;

/// One scripted mutation applied to both stores in lockstep.
#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u64>),
    /// Remove the `selector % live`-th live signature.
    Remove(usize),
    Refit,
    Vacuum,
}

fn arb_counts() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..60, DIM..DIM + 1)
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_counts().prop_map(Op::Insert),
        (0usize..64).prop_map(Op::Remove),
        Just(Op::Refit),
        Just(Op::Vacuum),
    ]
}

fn raw(counts: Vec<u64>, i: u64, label: &str) -> RawSignature {
    RawSignature {
        counts,
        started_at: Nanos(i * 10),
        ended_at: Nanos((i + 1) * 10),
        label: Some(label.to_string()),
    }
}

fn seed_corpus(n_each: usize) -> Vec<RawSignature> {
    let mut out = Vec::new();
    for i in 0..n_each as u64 {
        out.push(raw(vec![40 + i, 30, 20, 10, 0, 0, 1, 0, 0, 0], i, "alpha"));
        out.push(raw(vec![0, 0, 1, 0, 0, 50, 40 + i, 30, 20, 10], i, "beta"));
    }
    out
}

/// Applies `ops` to the flat database and the sharded service in
/// lockstep. The flat database is the oracle; the service must mirror
/// its doc-id space exactly (same ids minted, same remaps).
fn apply_ops(db: &mut SignatureDb, service: &SignatureService, ops: &[Op]) {
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Insert(counts) => {
                let label = if i % 2 == 0 { "alpha" } else { "beta" };
                let r = raw(counts.clone(), 100 + i as u64, label);
                let flat_id = db.insert(&r).expect("flat insert");
                let svc_id = service.insert(&r).expect("service insert");
                assert_eq!(flat_id, svc_id, "doc-id spaces diverged");
            }
            Op::Remove(selector) => {
                if db.len() <= 1 {
                    continue;
                }
                let live: Vec<usize> = (0..db.num_slots()).filter(|&d| db.is_live(d)).collect();
                let victim = live[selector % live.len()];
                db.remove(victim).expect("flat remove");
                service.remove(victim).expect("service remove");
            }
            Op::Refit => {
                let a = db.refit();
                let b = service.refit();
                assert_eq!(a, b, "refit stats diverged");
            }
            Op::Vacuum => {
                let a = db.vacuum();
                let b = service.vacuum();
                assert_eq!(a.remap, b.remap, "vacuum remaps diverged");
                assert_eq!(a.dropped_slots, b.dropped_slots);
            }
        }
    }
}

/// Asserts service search/classify equals the flat oracle bit-for-bit
/// on a battery of probes: same hit docs (verified live in the flat
/// store), same labels, scores equal to the last bit.
fn assert_search_identical(db: &SignatureDb, service: &SignatureService) {
    let probes = [
        TermCounts::from_dense(&[41, 29, 21, 11, 0, 0, 1, 0, 0, 0]),
        TermCounts::from_dense(&[0, 0, 1, 0, 0, 49, 41, 29, 21, 11]),
        TermCounts::from_dense(&[10, 10, 10, 10, 10, 10, 10, 10, 10, 10]),
    ];
    for (i, q) in probes.iter().enumerate() {
        for k in [1usize, 4, 64] {
            let flat = db.search(q, k).expect("flat search");
            let sharded = service.search(q, k).expect("service search");
            assert_eq!(flat.len(), sharded.len(), "probe {i} k={k}: hit count");
            for ((fs, fx), (doc, ss, sx)) in flat.iter().zip(&sharded) {
                assert!(db.is_live(*doc), "probe {i} k={k}: hit on dead doc {doc}");
                assert!(
                    std::ptr::eq(*fs, &db.signatures()[*doc]),
                    "probe {i} k={k}: hit docs diverged"
                );
                assert_eq!(fs.label, ss.label, "probe {i} k={k}: labels");
                assert_eq!(
                    fx.to_bits(),
                    sx.to_bits(),
                    "probe {i} k={k}: scores not bit-identical: {fx} vs {sx}"
                );
            }
        }
        assert_eq!(
            db.classify(q, 3).expect("flat classify"),
            service.classify(q, 3).expect("service classify"),
            "probe {i}: classification diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sharded_service_matches_flat_db_for_any_shard_count(
        num_shards in 1usize..=8,
        ops in prop::collection::vec(arb_op(), 0..20),
        n_each in 2usize..5,
    ) {
        let raws = seed_corpus(n_each);
        let mut db = SignatureDb::build(&raws).expect("flat build");
        db.set_refit_policy(RefitPolicy::Manual);
        let service = SignatureService::build(&raws, num_shards).expect("service build");
        service.set_refit_policy(RefitPolicy::Manual).unwrap();
        prop_assert_eq!(service.num_shards(), num_shards);
        apply_ops(&mut db, &service, &ops);
        prop_assert_eq!(service.len(), db.len());
        prop_assert_eq!(service.num_slots(), db.num_slots());
        prop_assert_eq!(service.epoch(), db.epoch());
        for d in 0..db.num_slots() {
            prop_assert_eq!(service.is_live(d), db.is_live(d));
        }
        assert_search_identical(&db, &service);
    }

    #[test]
    fn sharded_save_load_round_trips_layout_and_results(
        num_shards in 1usize..=8,
        ops in prop::collection::vec(arb_op(), 0..12),
    ) {
        let raws = seed_corpus(3);
        let mut db = SignatureDb::build(&raws).expect("flat build");
        db.set_refit_policy(RefitPolicy::Manual);
        let service = SignatureService::build(&raws, num_shards).expect("service build");
        service.set_refit_policy(RefitPolicy::Manual).unwrap();
        apply_ops(&mut db, &service, &ops);

        let mut buf = Vec::new();
        service.save(&mut buf).expect("service save");
        let restored = SignatureService::load(&buf[..]).expect("service load");
        prop_assert_eq!(restored.num_shards(), num_shards);
        prop_assert_eq!(restored.len(), service.len());
        prop_assert_eq!(restored.epoch(), service.epoch());
        assert_search_identical(&db, &restored);

        // A flat load of the same bytes sees the same corpus — the
        // sharding section is advisory for flat readers.
        let flat = SignatureDb::load(&buf[..]).expect("flat load of sharded save");
        prop_assert_eq!(flat.len(), db.len());
        prop_assert_eq!(flat.epoch(), db.epoch());
    }
}
