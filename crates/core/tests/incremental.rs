//! Property tests for the incremental `SignatureDb`: any interleave of
//! insert / remove / refit / vacuum must, once refitted, be
//! indistinguishable from a from-scratch `build` over the surviving
//! corpus, and the epoch state must survive save/load.

use fmeter_core::{RawSignature, RefitPolicy, SignatureDb, Syndrome};
use fmeter_ir::TermCounts;
use fmeter_kernel_sim::Nanos;
use proptest::prelude::*;
use std::collections::HashMap;

const DIM: usize = 10;

/// One scripted mutation against the database under test.
#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u64>),
    /// Remove the `selector % live`-th live signature.
    Remove(usize),
    Refit,
    /// Compact dead slots, renumbering every doc id.
    Vacuum,
}

fn arb_counts() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..60, DIM..DIM + 1)
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_counts().prop_map(Op::Insert),
        (0usize..64).prop_map(Op::Remove),
        Just(Op::Refit),
        Just(Op::Vacuum),
    ]
}

fn raw(counts: Vec<u64>, i: u64, label: &str) -> RawSignature {
    RawSignature {
        counts,
        started_at: Nanos(i * 10),
        ended_at: Nanos((i + 1) * 10),
        label: Some(label.to_string()),
    }
}

/// Seed corpora: two term-band classes so searches have structure.
fn seed_corpus(n_each: usize) -> Vec<RawSignature> {
    let mut out = Vec::new();
    for i in 0..n_each as u64 {
        out.push(raw(vec![40 + i, 30, 20, 10, 0, 0, 1, 0, 0, 0], i, "alpha"));
        out.push(raw(vec![0, 0, 1, 0, 0, 50, 40 + i, 30, 20, 10], i, "beta"));
    }
    out
}

/// Applies `ops`, mirroring the raw corpus, and returns the surviving
/// raw signatures in doc-id order.
fn apply_ops(db: &mut SignatureDb, raws: &mut Vec<RawSignature>, ops: &[Op]) {
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Insert(counts) => {
                let label = if i % 2 == 0 { "alpha" } else { "beta" };
                let r = raw(counts.clone(), 100 + i as u64, label);
                let id = db.insert(&r).expect("insert succeeds");
                assert_eq!(id, raws.len(), "doc ids stay dense over the slot space");
                raws.push(r);
            }
            Op::Remove(selector) => {
                if db.len() <= 1 {
                    continue; // keep the db non-empty so build() stays comparable
                }
                let live: Vec<usize> = (0..db.num_slots()).filter(|&d| db.is_live(d)).collect();
                let victim = live[selector % live.len()];
                db.remove(victim).expect("victim is live");
            }
            Op::Refit => {
                db.refit();
            }
            Op::Vacuum => {
                let slots_before = db.num_slots();
                let live_before: Vec<usize> =
                    (0..slots_before).filter(|&d| db.is_live(d)).collect();
                let stats = db.vacuum();
                assert_eq!(stats.remap.len(), slots_before);
                assert_eq!(stats.live_docs, db.len());
                assert_eq!(db.num_slots(), db.len(), "vacuum leaves no holes");
                // The remap is exactly "live ids keep their order,
                // renumbered densely"; the raw mirror compacts the same
                // way so doc-id alignment survives.
                for (new_id, &old_id) in live_before.iter().enumerate() {
                    assert_eq!(stats.remap[old_id], Some(new_id));
                }
                *raws = live_before.iter().map(|&d| raws[d].clone()).collect();
            }
        }
    }
}

fn surviving(db: &SignatureDb, raws: &[RawSignature]) -> Vec<RawSignature> {
    (0..db.num_slots())
        .filter(|&d| db.is_live(d))
        .map(|d| raws[d].clone())
        .collect()
}

/// Asserts the incremental database matches a fresh build over the
/// surviving corpus: identical live vectors (doc-order aligned) and
/// identical search/classify behaviour within 1e-9.
fn assert_equivalent(db: &SignatureDb, fresh: &SignatureDb, probes: &[RawSignature]) {
    assert_eq!(db.len(), fresh.len());
    let live: Vec<usize> = (0..db.num_slots()).filter(|&d| db.is_live(d)).collect();
    for (&d, f) in live.iter().zip(fresh.signatures()) {
        let a = &db.signatures()[d].vector;
        let b = &f.vector;
        assert_eq!(a.dim(), b.dim());
        for t in 0..a.dim() as u32 {
            let (x, y) = (a.get(t), b.get(t));
            assert!(
                (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())),
                "doc {d} term {t}: {x} vs {y}"
            );
        }
    }
    for probe in probes.iter().take(5) {
        let q = probe.to_term_counts();
        let a = db.search(&q, 4).expect("search");
        let b = fresh.search(&q, 4).expect("search");
        assert_eq!(a.len(), b.len(), "hit counts diverged");
        for ((s1, d1), (s2, d2)) in a.iter().zip(&b) {
            assert_eq!(s1.label, s2.label, "hit labels diverged");
            assert!((d1 - d2).abs() < 1e-9, "scores diverged: {d1} vs {d2}");
        }
        assert_eq!(
            db.classify(&q, 3).expect("classify"),
            fresh.classify(&q, 3).expect("classify"),
            "classification diverged"
        );
    }
}

/// One scripted mutation for the recluster churn test: inserts stay
/// class-shaped (a jittered member of one of the two seed bands) so the
/// ground-truth partition survives arbitrary interleaves and purity is
/// a stable yardstick between independently converged clusterings.
#[derive(Debug, Clone)]
enum ChurnOp {
    InsertAlpha(u64),
    InsertBeta(u64),
    Remove(usize),
    Vacuum,
}

fn arb_churn_op() -> impl Strategy<Value = ChurnOp> {
    prop_oneof![
        (0u64..20).prop_map(ChurnOp::InsertAlpha),
        (0u64..20).prop_map(ChurnOp::InsertBeta),
        (0usize..64).prop_map(ChurnOp::Remove),
        Just(ChurnOp::Vacuum),
    ]
}

fn apply_churn(db: &mut SignatureDb, ops: &[ChurnOp]) {
    for (i, op) in ops.iter().enumerate() {
        match op {
            ChurnOp::InsertAlpha(j) => {
                let r = raw(
                    vec![40 + j, 30, 20, 10, 0, 0, 1, 0, 0, 0],
                    200 + i as u64,
                    "alpha",
                );
                db.insert(&r).expect("insert succeeds");
            }
            ChurnOp::InsertBeta(j) => {
                let r = raw(
                    vec![0, 0, 1, 0, 0, 50, 40 + j, 30, 20, 10],
                    200 + i as u64,
                    "beta",
                );
                db.insert(&r).expect("insert succeeds");
            }
            ChurnOp::Remove(selector) => {
                // Keep enough points for a k=2 clustering to stay sane.
                if db.len() <= 4 {
                    continue;
                }
                let live: Vec<usize> = (0..db.num_slots()).filter(|&d| db.is_live(d)).collect();
                db.remove(live[selector % live.len()])
                    .expect("victim is live");
            }
            ChurnOp::Vacuum => {
                db.vacuum();
            }
        }
    }
}

/// Label purity of a clustering: the fraction of members whose stored
/// label agrees with their syndrome's majority label.
fn purity(db: &SignatureDb, syndromes: &[Syndrome]) -> f64 {
    let mut agree = 0usize;
    let mut total = 0usize;
    for s in syndromes {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for &m in &s.members {
            if let Some(label) = db.signatures()[m].label.as_deref() {
                *counts.entry(label).or_insert(0) += 1;
            }
        }
        agree += counts.values().copied().max().unwrap_or(0);
        total += s.members.len();
    }
    agree as f64 / total.max(1) as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn interleaved_mutations_match_rebuild_after_refit(
        ops in prop::collection::vec(arb_op(), 0..24),
        n_each in 2usize..5,
    ) {
        let mut raws = seed_corpus(n_each);
        let mut db = SignatureDb::build(&raws).expect("seed corpus builds");
        db.set_refit_policy(RefitPolicy::Manual);
        apply_ops(&mut db, &mut raws, &ops);
        // The equivalence contract is *post-refit*: between refits the
        // stored vectors deliberately ride a stale idf generation.
        db.refit();
        let survivors = surviving(&db, &raws);
        prop_assert!(!survivors.is_empty());
        let fresh = SignatureDb::build(&survivors).expect("survivors build");
        assert_equivalent(&db, &fresh, &survivors);
    }

    #[test]
    fn automatic_policies_preserve_equivalence_too(
        ops in prop::collection::vec(arb_op(), 0..16),
        every_n in 1usize..5,
    ) {
        // Same contract, but with refits firing mid-interleave via the
        // EveryN policy (exercising auto-refit on both mutation paths).
        let mut raws = seed_corpus(3);
        let mut db = SignatureDb::build(&raws).expect("seed corpus builds");
        db.set_refit_policy(RefitPolicy::EveryN(every_n));
        apply_ops(&mut db, &mut raws, &ops);
        db.refit();
        let survivors = surviving(&db, &raws);
        let fresh = SignatureDb::build(&survivors).expect("survivors build");
        assert_equivalent(&db, &fresh, &survivors);
    }

    #[test]
    fn vacuum_after_churn_matches_rebuild_and_drops_slots(
        ops in prop::collection::vec(arb_op(), 0..24),
        n_each in 2usize..5,
    ) {
        let mut raws = seed_corpus(n_each);
        let mut db = SignatureDb::build(&raws).expect("seed corpus builds");
        db.set_refit_policy(RefitPolicy::Manual);
        apply_ops(&mut db, &mut raws, &ops);
        let slots_with_holes = db.num_slots();
        let dead = slots_with_holes - db.len();
        // Capture the survivors while the raw mirror still aligns with
        // the pre-vacuum slot space (the vacuum renumbers it).
        let survivors = surviving(&db, &raws);
        let stats = db.vacuum();
        prop_assert_eq!(stats.dropped_slots, dead);
        prop_assert_eq!(db.num_slots(), db.len());
        prop_assert_eq!(db.dead_fraction(), 0.0);
        // Post-vacuum (and post-refit, to land on the fresh idf
        // generation) the database is indistinguishable from a rebuild:
        // search, classification, and syndrome extraction all agree.
        db.refit();
        prop_assert!(!survivors.is_empty());
        let fresh = SignatureDb::build(&survivors).expect("survivors build");
        assert_equivalent(&db, &fresh, &survivors);
        if db.len() >= 4 {
            let a = db.syndromes(2, 11).expect("syndromes");
            let b = fresh.syndromes(2, 11).expect("syndromes");
            for (sa, sb) in a.iter().zip(&b) {
                prop_assert_eq!(&sa.members, &sb.members);
                prop_assert_eq!(&sa.dominant_label, &sb.dominant_label);
            }
        }
    }

    #[test]
    fn recluster_after_churn_matches_cold_purity(
        ops in prop::collection::vec(arb_churn_op(), 0..24),
        manual in any::<bool>(),
        every_n in 1usize..5,
    ) {
        // The warm-start contract under streaming churn: a recluster
        // that reuses the cached assignment must land on a partition as
        // label-pure as an independent cold clustering of the same
        // state — under both refit policies, since auto-refits rewrite
        // the tf-idf vectors mid-interleave.
        let raws = seed_corpus(4);
        let mut db = SignatureDb::build(&raws).expect("seed corpus builds");
        db.set_refit_policy(if manual {
            RefitPolicy::Manual
        } else {
            RefitPolicy::EveryN(every_n)
        });
        // Prime the cache: the first call is always cold.
        let first = db.recluster(2, 7).expect("recluster");
        prop_assert!(!first.warm);
        apply_churn(&mut db, &ops);
        let warm = db.recluster(2, 7).expect("recluster");
        let cold = db.syndromes(2, 7).expect("syndromes");
        let (wp, cp) = (purity(&db, &warm.syndromes), purity(&db, &cold));
        prop_assert!(
            (wp - cp).abs() <= 1e-9,
            "warm recluster purity {} drifted from cold {} (warm path: {})",
            wp, cp, warm.warm
        );
        // And the syndromes it reports are exactly the database's own
        // view of the cached partition: reclustering again without any
        // intervening mutation reproduces them bit for bit.
        let again = db.recluster(2, 7).expect("recluster");
        prop_assert!(again.warm);
        prop_assert_eq!(again.syndromes, warm.syndromes);
    }

    #[test]
    fn save_load_round_trips_epoch_state(
        ops in prop::collection::vec(arb_op(), 0..16),
    ) {
        let mut raws = seed_corpus(3);
        let mut db = SignatureDb::build(&raws).expect("seed corpus builds");
        db.set_refit_policy(RefitPolicy::EveryN(3));
        apply_ops(&mut db, &mut raws, &ops);
        let mut buf = Vec::new();
        db.save(&mut buf).expect("save");
        let mut restored = SignatureDb::load(&buf[..]).expect("load");
        prop_assert_eq!(restored.epoch(), db.epoch());
        prop_assert_eq!(restored.len(), db.len());
        prop_assert_eq!(restored.num_slots(), db.num_slots());
        prop_assert_eq!(restored.refit_policy(), db.refit_policy());
        prop_assert_eq!(restored.mutations_since_refit(), db.mutations_since_refit());
        prop_assert_eq!(restored.vacuums(), db.vacuums());
        for d in 0..db.num_slots() {
            prop_assert_eq!(restored.is_live(d), db.is_live(d));
            prop_assert_eq!(restored.doc_epoch(d), db.doc_epoch(d));
        }
        // The restored copy continues the stream identically: same next
        // doc id, same refit outcome.
        let extra = raw(vec![1, 2, 3, 4, 5, 0, 0, 0, 0, 1], 999, "alpha");
        prop_assert_eq!(
            restored.insert(&extra).expect("insert"),
            db.insert(&extra).expect("insert")
        );
        prop_assert_eq!(restored.refit(), db.refit());
        let q = TermCounts::from_dense(&extra.counts);
        prop_assert_eq!(
            restored.classify(&q, 3).expect("classify"),
            db.classify(&q, 3).expect("classify")
        );
    }
}
