//! Stress test for the sharded [`SignatureService`]: concurrent
//! searchers against a writer looping insert/remove/refit/vacuum.
//!
//! The contract under test is snapshot consistency: every pooled
//! fan-out search must return exactly what a serial replay of the same
//! snapshot returns ([`ShardSnapshot::search`]), generations must never
//! move backwards under a reader, and searches must never block behind
//! the writer — enforced here as a (generous) per-search latency
//! ceiling that a lock-coupled implementation would blow through the
//! moment a vacuum or refit holds the writer busy.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use fmeter_core::{RawSignature, RefitPolicy, SignatureService, VacuumPolicy};
use fmeter_ir::{SearchScratch, TermCounts};
use fmeter_kernel_sim::Nanos;

const DIM: usize = 12;
const ROUNDS: u64 = 60;
const NET_PER_ROUND: usize = 4; // 6 inserted, 2 removed
/// Far above any real per-search cost at this corpus size (micro-
/// seconds in debug builds); a search that serializes behind the
/// writer's refit/vacuum loop blows through it immediately.
const LATENCY_CEILING: Duration = Duration::from_millis(500);

fn raw(i: u64, class: usize) -> RawSignature {
    let mut counts = vec![0u64; DIM];
    let base = class * 4;
    counts[base] = 50 + i % 13;
    counts[base + 1] = 35 + i % 7;
    counts[base + 2] = 20;
    counts[base + 3] = 10 + i % 3;
    counts[(base + 6) % DIM] = 1; // cross-class noise term
    RawSignature {
        counts,
        started_at: Nanos(i * 1_000),
        ended_at: Nanos((i + 1) * 1_000),
        label: Some(["io", "net", "sched"][class].to_string()),
    }
}

fn seed_corpus() -> Vec<RawSignature> {
    (0..24u64).map(|i| raw(i, (i % 3) as usize)).collect()
}

fn probe_queries() -> Vec<TermCounts> {
    (0..4u64)
        .map(|i| TermCounts::from_dense(&raw(100 + i, (i % 3) as usize).counts))
        .collect()
}

/// Asserts a pooled fan-out result equals the serial replay of the
/// same snapshot: same docs, bit-identical scores, same labels.
fn assert_replay_identical(
    pooled: &[(usize, fmeter_core::Signature, f64)],
    serial: &[(usize, fmeter_core::Signature, f64)],
) {
    assert_eq!(pooled.len(), serial.len(), "hit counts diverged");
    for ((d1, s1, x1), (d2, s2, x2)) in pooled.iter().zip(serial) {
        assert_eq!(d1, d2, "doc ids diverged");
        assert_eq!(s1.label, s2.label, "labels diverged");
        assert_eq!(
            x1.to_bits(),
            x2.to_bits(),
            "scores not bit-identical: {x1} vs {x2}"
        );
    }
}

#[test]
fn concurrent_searches_stay_consistent_under_writer_churn() {
    let service = SignatureService::build(&seed_corpus(), 4).expect("seed corpus builds");
    service.set_refit_policy(RefitPolicy::Manual).unwrap();
    service.set_vacuum_policy(VacuumPolicy::Never).unwrap();
    let queries = probe_queries();
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        let svc = &service;
        let done = &done;
        let queries = &queries;

        let writer = s.spawn(move || {
            for round in 0..ROUNDS {
                let batch: Vec<RawSignature> = (0..6)
                    .map(|j| raw(1_000 + round * 6 + j, ((round + j) % 3) as usize))
                    .collect();
                let ids = svc.insert_batch(&batch).expect("batch insert");
                // Remove two of the ids we just minted: they are live
                // by construction and this round's vacuum (if any)
                // renumbers them only after the removes land.
                svc.remove(ids[0]).expect("remove fresh doc");
                svc.remove(ids[3]).expect("remove fresh doc");
                if round % 5 == 4 {
                    svc.refit();
                }
                if round % 7 == 6 {
                    let stats = svc.vacuum();
                    assert_eq!(stats.live_docs, svc.len());
                }
            }
            done.store(true, Ordering::Release);
        });

        let readers: Vec<_> = (0..3)
            .map(|_| {
                s.spawn(move || {
                    let mut scratch = SearchScratch::new();
                    let mut last_generation = 0u64;
                    let mut iterations = 0usize;
                    let mut max_latency = Duration::ZERO;
                    // Keep reading while the writer runs, with an
                    // iteration floor so the test still exercises the
                    // path when the scheduler starves a reader.
                    while !done.load(Ordering::Acquire) || iterations < 25 {
                        let snapshot = svc.snapshot();
                        assert!(
                            snapshot.generation() >= last_generation,
                            "generation went backwards: {} after {}",
                            snapshot.generation(),
                            last_generation
                        );
                        last_generation = snapshot.generation();
                        // Snapshot-internal consistency: the liveness
                        // bitmap and the live count agree, always.
                        let live = (0..snapshot.num_slots())
                            .filter(|&d| snapshot.is_live(d))
                            .count();
                        assert_eq!(live, snapshot.len(), "liveness drifted inside a snapshot");
                        for q in queries {
                            let t0 = Instant::now();
                            let pooled =
                                svc.search_snapshot(&snapshot, q, 8).expect("pooled search");
                            max_latency = max_latency.max(t0.elapsed());
                            let serial =
                                snapshot.search(q, 8, &mut scratch).expect("serial replay");
                            assert_replay_identical(&pooled, &serial);
                        }
                        iterations += 1;
                    }
                    (iterations, max_latency, last_generation)
                })
            })
            .collect();

        writer.join().expect("writer thread");
        for handle in readers {
            let (iterations, max_latency, last_generation) = handle.join().expect("reader thread");
            assert!(
                iterations >= 25,
                "reader barely ran: {iterations} iterations"
            );
            assert!(
                max_latency < LATENCY_CEILING,
                "search latency {max_latency:?} exceeded the no-blocking ceiling"
            );
            assert!(
                last_generation > 0,
                "reader never saw a published generation"
            );
        }
    });

    // Final state: every round nets +4 docs, vacuums change none.
    assert_eq!(
        service.len(),
        seed_corpus().len() + ROUNDS as usize * NET_PER_ROUND
    );
    let snapshot = service.snapshot();
    let serial = snapshot
        .search(&probe_queries()[0], 8, &mut SearchScratch::new())
        .expect("final serial search");
    let pooled = service
        .search(&probe_queries()[0], 8)
        .expect("final pooled search");
    assert_replay_identical(&pooled, &serial);
}

/// Worker death is a degradation, not an outage: after killing one
/// pooled worker — or every one of them — mid-stream, searches keep
/// succeeding and stay bit-identical to the serial replay of the same
/// snapshot (dead workers' shards are scored inline on the caller).
#[test]
fn worker_death_degrades_gracefully_and_stays_bit_identical() {
    let service = SignatureService::build(&seed_corpus(), 4).expect("seed corpus builds");
    let queries = probe_queries();
    let mut scratch = SearchScratch::new();
    let pool = service.live_workers();
    assert!(pool >= 1, "pool spun up");

    // Kill one worker while a reader hammers the service from another
    // thread: no search may fail or diverge across the transition.
    std::thread::scope(|s| {
        let svc = &service;
        let queries = &queries;
        let reader = s.spawn(move || {
            let mut scratch = SearchScratch::new();
            for round in 0..200 {
                let snapshot = svc.snapshot();
                let q = &queries[round % queries.len()];
                let pooled = svc.search_snapshot(&snapshot, q, 8).expect("pooled search");
                let serial = snapshot.search(q, 8, &mut scratch).expect("serial replay");
                assert_replay_identical(&pooled, &serial);
            }
        });
        svc.kill_worker(0);
        reader.join().expect("reader thread");
    });
    assert_eq!(service.live_workers(), pool - 1, "the kill took a thread");

    // The writer is untouched by dead readers: mutations still publish.
    let ids = service
        .insert_batch(
            &(0..4)
                .map(|j| raw(9_000 + j, (j % 3) as usize))
                .collect::<Vec<_>>(),
        )
        .expect("insert after worker death");
    service.remove(ids[1]).expect("remove after worker death");
    service.refit();

    // Kill the entire pool: every shard falls back to inline scoring,
    // still against the same immutable snapshot.
    for i in 0..pool {
        service.kill_worker(i);
    }
    assert_eq!(service.live_workers(), 0, "the whole pool is gone");
    let snapshot = service.snapshot();
    for q in &queries {
        let pooled = service
            .search_snapshot(&snapshot, q, 8)
            .expect("search with a dead pool");
        let serial = snapshot.search(q, 8, &mut scratch).expect("serial replay");
        assert_replay_identical(&pooled, &serial);
        assert!(service.classify(q, 5).expect("classify").is_some());
    }
}

/// A snapshot taken before a burst of mutations keeps answering with
/// its own generation's corpus even while new generations publish —
/// readers pay zero coordination with the writer.
#[test]
fn old_snapshots_survive_concurrent_churn() {
    let service = SignatureService::build(&seed_corpus(), 3).expect("seed corpus builds");
    service.set_refit_policy(RefitPolicy::Manual).unwrap();
    let query = probe_queries().remove(0);
    let before = service.snapshot();
    let mut scratch = SearchScratch::new();
    let frozen = before.search(&query, 6, &mut scratch).expect("search");

    std::thread::scope(|s| {
        let svc = &service;
        let writer = s.spawn(move || {
            for round in 0..20u64 {
                let batch: Vec<RawSignature> = (0..4)
                    .map(|j| raw(5_000 + round * 4 + j, (j % 3) as usize))
                    .collect();
                svc.insert_batch(&batch).expect("insert");
                if round % 4 == 3 {
                    svc.refit();
                }
            }
        });
        // Interleave reads of the frozen snapshot with the writer.
        for _ in 0..50 {
            let again = before.search(&query, 6, &mut scratch).expect("search");
            assert_replay_identical(&frozen, &again);
        }
        writer.join().expect("writer thread");
    });

    // The frozen generation still answers identically afterwards, and
    // the live service has moved on.
    let again = before.search(&query, 6, &mut scratch).expect("search");
    assert_replay_identical(&frozen, &again);
    assert!(service.generation() > before.generation());
    assert_eq!(service.len(), seed_corpus().len() + 20 * 4);
}
