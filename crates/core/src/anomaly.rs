//! Anomaly detection over syndromes.
//!
//! The paper's operator workflow (§2.2) stores syndromes of known
//! behaviours; a key property it highlights is "that it allows for
//! unknown behaviors to be classified as similar to some syndrome S, even
//! though the unknown behaviors may belong to a distinct class of their
//! own". [`AnomalyDetector`] operationalises that: a fresh signature is
//! matched to its nearest syndrome, and flagged as *novel* when its
//! distance exceeds what the training population ever exhibited.

use fmeter_ir::{euclidean_distance, SparseVec, TermCounts};
use serde::{Deserialize, Serialize};

use crate::{FmeterError, SignatureDb, Syndrome};

/// Verdict for one inspected signature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnomalyVerdict {
    /// Index of the nearest syndrome.
    pub syndrome: usize,
    /// The nearest syndrome's dominant label, if any.
    pub label: Option<String>,
    /// Distance to the nearest syndrome centroid.
    pub distance: f64,
    /// The detector's threshold at decision time.
    pub threshold: f64,
    /// Whether the signature lies beyond every known behaviour.
    pub is_anomalous: bool,
}

/// A syndrome-based novelty detector.
///
/// # Examples
///
/// ```no_run
/// # use fmeter_core::{AnomalyDetector, SignatureDb};
/// # let db: SignatureDb = unimplemented!();
/// let detector = AnomalyDetector::fit(&db, 3, 1.5, 42)?;
/// # Ok::<(), fmeter_core::FmeterError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnomalyDetector {
    syndromes: Vec<Syndrome>,
    threshold: f64,
}

impl AnomalyDetector {
    /// Fits a detector on a labelled database: clusters it into `k`
    /// syndromes and sets the novelty threshold to `margin` times the
    /// largest member-to-centroid distance observed in training.
    ///
    /// # Errors
    ///
    /// Propagates clustering failures; rejects `margin < 1` (a threshold
    /// below the training radius flags training data itself).
    pub fn fit(db: &SignatureDb, k: usize, margin: f64, seed: u64) -> Result<Self, FmeterError> {
        if margin < 1.0 {
            return Err(FmeterError::Ml(fmeter_ml::MlError::InvalidConfig(
                "margin must be >= 1".into(),
            )));
        }
        let syndromes = db.syndromes(k, seed)?;
        Self::from_syndromes(db, syndromes, margin)
    }

    /// Like [`fit`](Self::fit), but routed through
    /// [`SignatureDb::recluster`]: the first call clusters cold, and a
    /// detector refreshed after streaming churn warm-starts from the
    /// database's cached assignment — O(changed docs) of Lloyd work
    /// instead of a full multi-restart K-means — while the threshold is
    /// recomputed over the full surviving membership either way.
    ///
    /// # Errors
    ///
    /// Propagates clustering failures; rejects `margin < 1` like
    /// [`fit`](Self::fit).
    pub fn fit_incremental(
        db: &mut SignatureDb,
        k: usize,
        margin: f64,
        seed: u64,
    ) -> Result<Self, FmeterError> {
        if margin < 1.0 {
            return Err(FmeterError::Ml(fmeter_ml::MlError::InvalidConfig(
                "margin must be >= 1".into(),
            )));
        }
        let recluster = db.recluster(k, seed)?;
        Self::from_syndromes(db, recluster.syndromes, margin)
    }

    /// Shared tail of the fit paths: derive the novelty threshold from
    /// the training population's largest member-to-centroid distance.
    fn from_syndromes(
        db: &SignatureDb,
        syndromes: Vec<Syndrome>,
        margin: f64,
    ) -> Result<Self, FmeterError> {
        let mut max_radius: f64 = 0.0;
        for syndrome in &syndromes {
            for &member in &syndrome.members {
                let d = euclidean_distance(&db.signatures()[member].vector, &syndrome.centroid)?;
                max_radius = max_radius.max(d);
            }
        }
        // A degenerate all-identical corpus has radius 0; keep a floor so
        // exact repeats still pass.
        let threshold = (max_radius * margin).max(1e-9);
        Ok(AnomalyDetector {
            syndromes,
            threshold,
        })
    }

    /// The syndromes backing the detector.
    pub fn syndromes(&self) -> &[Syndrome] {
        &self.syndromes
    }

    /// The fitted novelty threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Inspects one already-transformed signature vector.
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches.
    pub fn inspect_vector(&self, vector: &SparseVec) -> Result<AnomalyVerdict, FmeterError> {
        let mut best = (0usize, f64::INFINITY);
        for (i, syndrome) in self.syndromes.iter().enumerate() {
            let d = euclidean_distance(vector, &syndrome.centroid)?;
            if d < best.1 {
                best = (i, d);
            }
        }
        let (syndrome, distance) = best;
        Ok(AnomalyVerdict {
            syndrome,
            label: self.syndromes[syndrome].dominant_label.clone(),
            distance,
            threshold: self.threshold,
            is_anomalous: distance > self.threshold,
        })
    }

    /// Inspects raw interval counts using `db`'s tf-idf model (the model
    /// the detector was fitted against).
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches.
    pub fn inspect(
        &self,
        db: &SignatureDb,
        counts: &TermCounts,
    ) -> Result<AnomalyVerdict, FmeterError> {
        self.inspect_vector(&db.transform(counts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RawSignature;
    use fmeter_kernel_sim::Nanos;

    /// Two tight behaviour classes over an 8-function space.
    fn training() -> SignatureDb {
        let mut raw = Vec::new();
        for i in 0..8u64 {
            raw.push(RawSignature {
                counts: vec![60 + i, 40, 30, 20, 0, 1, 0, 0],
                started_at: Nanos(i),
                ended_at: Nanos(i + 1),
                label: Some("web".into()),
            });
            raw.push(RawSignature {
                counts: vec![0, 1, 0, 0, 60 + i, 50, 40, 30],
                started_at: Nanos(i),
                ended_at: Nanos(i + 1),
                label: Some("db".into()),
            });
        }
        SignatureDb::build(&raw).unwrap()
    }

    #[test]
    fn known_behaviour_passes() {
        let db = training();
        let detector = AnomalyDetector::fit(&db, 2, 1.5, 1).unwrap();
        let verdict = detector
            .inspect(
                &db,
                &fmeter_ir::TermCounts::from_dense(&[64, 40, 30, 20, 0, 1, 0, 0]),
            )
            .unwrap();
        assert!(
            !verdict.is_anomalous,
            "near-training signature flagged: {verdict:?}"
        );
        assert_eq!(verdict.label.as_deref(), Some("web"));
    }

    #[test]
    fn novel_behaviour_is_flagged() {
        let db = training();
        let detector = AnomalyDetector::fit(&db, 2, 1.5, 1).unwrap();
        // A behaviour hitting the functions neither class uses.
        let verdict = detector
            .inspect(
                &db,
                &fmeter_ir::TermCounts::from_dense(&[0, 80, 0, 0, 0, 90, 0, 0]),
            )
            .unwrap();
        assert!(
            verdict.is_anomalous,
            "novel signature not flagged: {verdict:?}"
        );
        assert!(verdict.distance > verdict.threshold);
    }

    #[test]
    fn verdict_names_nearest_class() {
        let db = training();
        let detector = AnomalyDetector::fit(&db, 2, 2.0, 3).unwrap();
        let verdict = detector
            .inspect(
                &db,
                &fmeter_ir::TermCounts::from_dense(&[0, 0, 0, 0, 61, 49, 41, 29]),
            )
            .unwrap();
        assert_eq!(verdict.label.as_deref(), Some("db"));
        assert!(!verdict.is_anomalous);
    }

    #[test]
    fn margin_below_one_rejected() {
        let db = training();
        assert!(AnomalyDetector::fit(&db, 2, 0.5, 1).is_err());
    }

    #[test]
    fn incremental_fit_matches_cold_fit_and_warm_starts() {
        let mut db = training();
        let cold = AnomalyDetector::fit(&db, 2, 1.5, 1).unwrap();
        // First incremental fit is a cold recluster with the same k-means
        // configuration modulo restarts; on this well-separated corpus the
        // syndromes agree exactly.
        let first = AnomalyDetector::fit_incremental(&mut db, 2, 1.5, 1).unwrap();
        assert_eq!(first.syndromes(), cold.syndromes());
        assert_eq!(first.threshold(), cold.threshold());
        // Second fit with unchanged data warm-starts and reproduces the
        // detector bit for bit.
        let second = AnomalyDetector::fit_incremental(&mut db, 2, 1.5, 1).unwrap();
        assert_eq!(second.syndromes(), first.syndromes());
        assert_eq!(second.threshold(), first.threshold());
        let verdict = second
            .inspect(
                &db,
                &fmeter_ir::TermCounts::from_dense(&[0, 80, 0, 0, 0, 90, 0, 0]),
            )
            .unwrap();
        assert!(verdict.is_anomalous);
    }

    #[test]
    fn threshold_scales_with_margin() {
        let db = training();
        let tight = AnomalyDetector::fit(&db, 2, 1.0, 1).unwrap();
        let loose = AnomalyDetector::fit(&db, 2, 3.0, 1).unwrap();
        assert!(loose.threshold() > tight.threshold());
        assert_eq!(tight.syndromes().len(), 2);
    }
}
