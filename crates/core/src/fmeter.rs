use std::sync::Arc;

use fmeter_kernel_sim::{Kernel, Nanos};
use fmeter_trace::FmeterTracer;

use crate::SignatureLogger;

/// The Fmeter monitoring system, assembled: the kernel-side tracer plus
/// the user-space logging daemon factory.
///
/// `Fmeter::install` "patches the kernel": it builds the per-CPU counting
/// infrastructure for the kernel's symbol table, installs it as the
/// active tracer, and exposes the counters through debugfs — after which
/// signatures can be logged continuously with near-production overhead,
/// or the whole thing disabled with the flip of a switch.
///
/// # Examples
///
/// ```
/// use fmeter_core::Fmeter;
/// use fmeter_kernel_sim::{CpuId, Kernel, KernelConfig, Nanos};
/// use fmeter_workloads::{Dbench, Workload};
///
/// let mut kernel = Kernel::new(KernelConfig::default())?;
/// let fmeter = Fmeter::install(&mut kernel);
///
/// let mut logger = fmeter.logger(Nanos::from_millis(10), kernel.now());
/// let mut workload = Dbench::new(1);
/// let sigs = logger.collect(&mut kernel, &mut workload, &[CpuId(0)], 3, Some("dbench"))?;
/// assert_eq!(sigs.len(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Fmeter {
    tracer: Arc<FmeterTracer>,
}

impl Fmeter {
    /// Installs Fmeter on a kernel: creates the counter pages for its
    /// symbol table, sets it as the active tracer, and registers the
    /// debugfs export at `tracing/fmeter/counters`.
    pub fn install(kernel: &mut Kernel) -> Self {
        let tracer = Arc::new(FmeterTracer::with_cpus(kernel.symbols(), kernel.num_cpus()));
        tracer.register_debugfs(kernel.debugfs_mut());
        kernel.set_tracer(tracer.clone());
        Fmeter { tracer }
    }

    /// The underlying tracer (for snapshots and direct counter reads).
    pub fn tracer(&self) -> &Arc<FmeterTracer> {
        &self.tracer
    }

    /// Enables or disables counting at runtime.
    pub fn set_enabled(&self, enabled: bool) {
        self.tracer.set_enabled(enabled);
    }

    /// Whether counting is enabled.
    pub fn is_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// Creates a logging daemon sampling every `interval` of simulated
    /// time, starting from the current counter state.
    pub fn logger(&self, interval: Nanos, now: Nanos) -> SignatureLogger {
        SignatureLogger::new(Arc::clone(&self.tracer), interval, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmeter_kernel_sim::{CpuId, KernelConfig, KernelOp};

    #[test]
    fn install_sets_tracer_and_debugfs() {
        let mut kernel = Kernel::new(KernelConfig {
            num_cpus: 2,
            seed: 1,
            timer_hz: 0,
            image_seed: 0x2628,
        })
        .unwrap();
        let fmeter = Fmeter::install(&mut kernel);
        assert_eq!(kernel.tracer().name(), "fmeter");
        assert!(kernel.debugfs().ls().contains(&"tracing/fmeter/counters"));
        assert!(fmeter.is_enabled());

        kernel.run_op(CpuId(0), KernelOp::SyscallNull).unwrap();
        let content = kernel.debugfs().read("tracing/fmeter/counters").unwrap();
        assert!(
            content.lines().any(|l| !l.ends_with(" 0")),
            "some counter must be non-zero"
        );
    }

    #[test]
    fn flip_of_a_switch() {
        let mut kernel = Kernel::new(KernelConfig {
            num_cpus: 1,
            seed: 1,
            timer_hz: 0,
            image_seed: 0x2628,
        })
        .unwrap();
        let fmeter = Fmeter::install(&mut kernel);
        fmeter.set_enabled(false);
        kernel.run_op(CpuId(0), KernelOp::SyscallNull).unwrap();
        assert_eq!(fmeter.tracer().snapshot(kernel.now()).total(), 0);
        fmeter.set_enabled(true);
        kernel.run_op(CpuId(0), KernelOp::SyscallNull).unwrap();
        assert!(fmeter.tracer().snapshot(kernel.now()).total() > 0);
    }
}
