//! Concurrently-readable signature serving: a single-writer
//! [`ShardWriter`] that mirrors a [`SignatureDb`] into per-shard search
//! structures, immutable [`ShardSnapshot`] generations published by
//! atomic swap, and the [`SignatureService`] facade that fans queries
//! across the shards on a persistent worker pool.
//!
//! The concurrency model (see `docs/ARCHITECTURE.md` for the narrative):
//!
//! * **One writer.** All mutations — insert, remove, refit, vacuum —
//!   funnel through the `ShardWriter` behind a mutex. The writer owns
//!   the authoritative flat [`SignatureDb`] plus one [`Shard`] per
//!   router slot and keeps them in lockstep: cheap mutations patch the
//!   affected shard in place, and any mutation that re-weights or
//!   renumbers the corpus (refit, vacuum) rebuilds the sharded mirror
//!   off to the side.
//! * **Immutable snapshots.** After every mutation the writer publishes
//!   a new [`ShardSnapshot`] — an [`Arc`]'d, never-mutated view holding
//!   the tf-idf model and the shard pieces of that generation. Shard
//!   pieces are [`Arc`]-shared across generations; only the pieces a
//!   mutation touched are re-allocated (copy-on-write via
//!   [`Arc::make_mut`]).
//! * **Non-blocking reads.** A search clones the current snapshot `Arc`
//!   under a momentary read lock (no allocation, no wait on the writer)
//!   and then runs entirely against that immutable generation: a
//!   concurrent refit or vacuum builds the *next* generation elsewhere
//!   and can never stall or tear an in-flight query.
//!
//! Sharded results are **bit-identical** to the flat database's: a
//! document's cosine score depends only on its own postings and the
//! query, every member of the flat top-k is in its own shard's top-k,
//! and [`merge_topk`] re-ranks with exactly the flat comparator (see
//! `fmeter_ir::shard`).
//!
//! The service can additionally run in **durable mode**
//! ([`SignatureService::from_db_durable`] /
//! [`SignatureService::recover_durable`]): the writer appends every
//! mutation to a [`DurableLog`] *before* applying it and checkpoints on
//! the log's policy, so a crash at any point loses at most the
//! unsynced WAL tail (see the [`wal`](crate::wal) module and
//! `docs/PERSISTENCE.md`). A failing WAL degrades the log's
//! [`WalHealth`] rather than poisoning the writer — mutations and
//! queries keep working in memory while the log backs off and retries.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

use fmeter_ir::{
    merge_topk, DocId, IrError, SearchHit, SearchScratch, Shard, ShardRouter, SparseVec,
    TermCounts, TfIdfModel,
};
use parking_lot::{Mutex, RwLock};

use crate::wal::{DurableLog, DurableOptions, RecoveryReport, WalHealth, WalOp};
use crate::{
    persist, FmeterError, RawSignature, Recluster, RefitPolicy, RefitStats, Signature, SignatureDb,
    VacuumPolicy, VacuumStats,
};

/// One shard of a published generation: the shard's search structures
/// plus its slice of the stored signatures, indexed by shard-local id.
#[derive(Debug, Clone)]
pub struct ShardPiece {
    shard: Shard,
    /// Signature per local slot; tombstoned locals keep their last
    /// contents (same contract as [`SignatureDb::signatures`]).
    signatures: Vec<Signature>,
}

impl ShardPiece {
    /// The shard's inverted index, WAND bounds, and packed vectors.
    pub fn shard(&self) -> &Shard {
        &self.shard
    }

    /// The shard's signatures, indexed by *local* id (translate global
    /// ids with the shard's router).
    pub fn signatures(&self) -> &[Signature] {
        &self.signatures
    }
}

/// One immutable, published generation of the sharded store.
///
/// A snapshot is never mutated after publication: readers score against
/// it for as long as they hold the [`Arc`], no matter how many
/// generations the writer publishes meanwhile. Equal-generation reads
/// are deterministic — searching the same snapshot twice returns
/// bit-identical results.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    generation: u64,
    epoch: u64,
    num_live: usize,
    num_slots: usize,
    model: TfIdfModel,
    router: ShardRouter,
    pieces: Vec<Arc<ShardPiece>>,
}

impl ShardSnapshot {
    /// The publication sequence number (monotone across the service's
    /// lifetime; one publish per mutation).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The idf generation this snapshot's weights were computed under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of live signatures in this generation.
    pub fn len(&self) -> usize {
        self.num_live
    }

    /// Returns `true` when the generation holds no live signature.
    pub fn is_empty(&self) -> bool {
        self.num_live == 0
    }

    /// Number of doc-id slots (live + tombstoned).
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Number of shards in the layout.
    pub fn num_shards(&self) -> usize {
        self.router.num_shards()
    }

    /// Dimensionality of the signature space.
    pub fn dim(&self) -> usize {
        self.model.dim()
    }

    /// The doc→shard router of this layout.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// The tf-idf model of this generation.
    pub fn model(&self) -> &TfIdfModel {
        &self.model
    }

    /// The per-shard pieces of this generation.
    pub fn pieces(&self) -> &[Arc<ShardPiece>] {
        &self.pieces
    }

    /// Returns `true` when `doc` is live in this generation.
    pub fn is_live(&self, doc: DocId) -> bool {
        doc < self.num_slots && self.pieces[self.router.shard_of(doc)].shard.is_live(doc)
    }

    /// The stored signature at `doc`, if the slot exists (tombstoned
    /// slots keep their last contents — check [`is_live`](Self::is_live)).
    pub fn signature(&self, doc: DocId) -> Option<&Signature> {
        if doc >= self.num_slots {
            return None;
        }
        self.pieces[self.router.shard_of(doc)]
            .signatures
            .get(self.router.local_of(doc))
    }

    /// Transforms raw interval counts with this generation's model.
    pub fn transform(&self, counts: &TermCounts) -> SparseVec {
        self.model.transform(counts)
    }

    /// Sequential in-thread search over this generation — the reference
    /// the pooled fan-out (and the stress test's serial replay) is
    /// compared against. Results are `(doc id, signature, score)`.
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches.
    pub fn search(
        &self,
        counts: &TermCounts,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> Result<Vec<(DocId, Signature, f64)>, FmeterError> {
        let query = self.transform(counts);
        let mut per_shard = Vec::with_capacity(self.pieces.len());
        for piece in &self.pieces {
            per_shard.push(piece.shard.search_with(&query, k, scratch)?);
        }
        Ok(self.resolve_hits(merge_topk(per_shard, k)))
    }

    /// Maps merged global hits to owned `(doc, signature, score)` rows.
    fn resolve_hits(&self, hits: Vec<SearchHit>) -> Vec<(DocId, Signature, f64)> {
        hits.into_iter()
            .map(|h| {
                let sig = self
                    .signature(h.doc)
                    .expect("hit doc ids come from this snapshot")
                    .clone();
                (h.doc, sig, h.score)
            })
            .collect()
    }
}

/// The single-writer mutation path of the sharded store.
///
/// Owns the authoritative flat [`SignatureDb`] and mirrors every
/// mutation into the per-shard structures, so a consistent
/// [`ShardSnapshot`] can be published at any moment with nothing but
/// `Arc` clones. All the flat database's semantics — refit and vacuum
/// policies, epochs, doc-id stability, remaps — carry over unchanged.
///
/// Shard pieces are copy-on-write: a piece still referenced by a
/// published snapshot is cloned the first time a mutation touches it
/// after a publish ([`Arc::make_mut`]), which is exactly the "build the
/// next generation off to the side" cost. Pieces untouched by a
/// mutation are shared with prior generations for free.
#[derive(Debug)]
pub struct ShardWriter {
    db: SignatureDb,
    router: ShardRouter,
    pieces: Vec<Arc<ShardPiece>>,
    /// Global slots already mirrored into `pieces`.
    synced_slots: usize,
    /// Crash-consistency engine, when the writer runs in durable mode:
    /// mutations append here *before* they apply.
    durable: Option<DurableLog>,
}

impl ShardWriter {
    /// Wraps `db` in a `num_shards`-way sharded mirror (clamped to at
    /// least 1 shard).
    pub fn new(db: SignatureDb, num_shards: usize) -> Self {
        let router = ShardRouter::new(num_shards);
        let mut writer = ShardWriter {
            db,
            router,
            pieces: Vec::new(),
            synced_slots: 0,
            durable: None,
        };
        writer.resync();
        writer
    }

    /// Attaches a durability engine: every subsequent mutation is
    /// WAL-appended before it applies and checkpointed per the log's
    /// policy. The log's on-disk state must already describe this
    /// writer's database (freshly [`DurableLog::create`]d from it, or
    /// the log/database pair returned by [`DurableLog::recover`]).
    pub fn attach_durable(&mut self, log: DurableLog) {
        self.durable = Some(log);
    }

    /// The durability engine, when running in durable mode.
    pub fn durable_log(&self) -> Option<&DurableLog> {
        self.durable.as_ref()
    }

    /// Mutable access to the durability engine (sync and
    /// fault-injection hooks; the log cannot corrupt the mirror).
    pub fn durable_log_mut(&mut self) -> Option<&mut DurableLog> {
        self.durable.as_mut()
    }

    /// Health of the durability layer; `None` when not durable.
    pub fn durability_health(&self) -> Option<WalHealth> {
        self.durable.as_ref().map(|log| log.health())
    }

    /// Takes a checkpoint now.
    ///
    /// # Errors
    ///
    /// Fails when the writer has no durable log attached, and
    /// propagates checkpoint I/O failures (the writer stays usable —
    /// the log folds the failure into its retry backoff).
    pub fn checkpoint(&mut self) -> Result<(), FmeterError> {
        match &mut self.durable {
            Some(log) => log.checkpoint(&self.db, self.router.num_shards()),
            None => Err(FmeterError::Persist(
                "writer has no durable log attached".into(),
            )),
        }
    }

    /// Appends `op` to the WAL when durable (before the mutation it
    /// describes is applied — write-ahead).
    fn wal_append(&mut self, op: impl FnOnce() -> WalOp) {
        if let Some(log) = &mut self.durable {
            log.append(&op());
        }
    }

    /// Runs the checkpoint policy after a mutation, when durable.
    fn checkpoint_if_due(&mut self) {
        if let Some(log) = &mut self.durable {
            log.maybe_checkpoint(&self.db, self.router.num_shards());
        }
    }

    /// Persists a policy change by checkpointing immediately (policy
    /// changes are not WAL ops — see [`crate::DurableDb`]). A failure
    /// is propagated — until a checkpoint lands, recovery would replay
    /// the WAL under the *old* policy and diverge from the acked
    /// in-memory state — and also folds into the log's retry backoff,
    /// so the writer itself stays usable.
    fn persist_policy_change(&mut self) -> Result<(), FmeterError> {
        match &mut self.durable {
            Some(log) => log.checkpoint_with_backoff(&self.db, self.router.num_shards()),
            None => Ok(()),
        }
    }

    /// The authoritative flat database.
    pub fn db(&self) -> &SignatureDb {
        &self.db
    }

    /// Unwraps the writer back into its flat database, dropping the
    /// durable log (if any) — acked state stays on disk.
    pub fn into_db(self) -> SignatureDb {
        self.db
    }

    /// The doc→shard router of this layout.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Number of shards in the layout.
    pub fn num_shards(&self) -> usize {
        self.router.num_shards()
    }

    /// Publishes the current state as an immutable snapshot stamped
    /// with `generation`. Costs one `Arc` clone per shard plus a model
    /// clone — the heavy piece rebuilds already happened on the
    /// mutation that made them necessary.
    pub fn publish(&self, generation: u64) -> ShardSnapshot {
        ShardSnapshot {
            generation,
            epoch: self.db.epoch(),
            num_live: self.db.len(),
            num_slots: self.db.num_slots(),
            model: self.db.model().clone(),
            router: self.router,
            pieces: self.pieces.clone(),
        }
    }

    /// Appends one signature (see [`SignatureDb::insert`]).
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches.
    pub fn insert(&mut self, raw: &RawSignature) -> Result<DocId, FmeterError> {
        self.wal_append(|| WalOp::Insert(raw.clone()));
        let out = self.mutate(|db| db.insert(raw));
        self.checkpoint_if_due();
        out
    }

    /// Appends a batch of signatures (see [`SignatureDb::insert_batch`]).
    ///
    /// # Errors
    ///
    /// Returns a dimension mismatch on the first offending signature;
    /// earlier elements of the batch remain inserted.
    pub fn insert_batch(&mut self, raw: &[RawSignature]) -> Result<Vec<DocId>, FmeterError> {
        self.wal_append(|| WalOp::InsertBatch(raw.to_vec()));
        let out = self.mutate(|db| db.insert_batch(raw));
        self.checkpoint_if_due();
        out
    }

    /// Tombstones a stored signature (see [`SignatureDb::remove`]).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DocNotLive`] (wrapped) when `doc` was never
    /// assigned or is already removed.
    pub fn remove(&mut self, doc: DocId) -> Result<(), FmeterError> {
        self.wal_append(|| WalOp::Remove(doc));
        let out = self.mutate(|db| db.remove(doc));
        self.checkpoint_if_due();
        out
    }

    /// Republishes idf and re-weights affected signatures (see
    /// [`SignatureDb::refit`]); rebuilds the sharded mirror.
    pub fn refit(&mut self) -> RefitStats {
        self.wal_append(|| WalOp::Refit);
        let out = self.mutate(SignatureDb::refit);
        self.checkpoint_if_due();
        out
    }

    /// Compacts tombstoned slots, renumbering doc ids (see
    /// [`SignatureDb::vacuum`]); rebuilds the sharded mirror.
    pub fn vacuum(&mut self) -> VacuumStats {
        self.wal_append(|| WalOp::Vacuum);
        let out = self.mutate(SignatureDb::vacuum);
        self.checkpoint_if_due();
        out
    }

    /// Warm-started syndrome maintenance (see
    /// [`SignatureDb::recluster`]).
    ///
    /// Deliberately *not* a WAL op and not a mirror-desyncing mutation:
    /// reclustering only touches the database's derived warm-start
    /// cache — no weights, doc ids, or postings change — so recovery
    /// simply starts the cache cold and the sharded mirror stays valid
    /// untouched.
    ///
    /// # Errors
    ///
    /// Propagates clustering failures (e.g. fewer signatures than `k`).
    pub fn recluster(&mut self, k: usize, seed: u64) -> Result<Recluster, FmeterError> {
        self.db.recluster(k, seed)
    }

    /// Replaces the automatic-refit policy. In durable mode the change
    /// is persisted by an immediate checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates a checkpoint failure (durable mode only): the policy
    /// *is* applied in memory but is not yet durable — retry, or accept
    /// that a crash before the next successful checkpoint recovers
    /// under the old policy. The writer stays usable either way.
    /// Infallible when not durable.
    pub fn set_refit_policy(&mut self, policy: RefitPolicy) -> Result<(), FmeterError> {
        self.db.set_refit_policy(policy);
        self.persist_policy_change()
    }

    /// Replaces the automatic-vacuum policy. In durable mode the change
    /// is persisted by an immediate checkpoint (see
    /// [`ShardWriter::set_refit_policy`] for the failure contract).
    ///
    /// # Errors
    ///
    /// Propagates a checkpoint failure in durable mode.
    pub fn set_vacuum_policy(&mut self, policy: VacuumPolicy) -> Result<(), FmeterError> {
        self.db.set_vacuum_policy(policy);
        self.persist_policy_change()
    }

    /// Runs one mutation against the flat database, then brings the
    /// sharded mirror back in lockstep: a weight- or id-space-changing
    /// mutation (refit or vacuum fired, observable through the epoch
    /// and vacuum counters) rebuilds the mirror; anything else is
    /// patched incrementally — appended slots are routed to their
    /// shards, new tombstones forwarded.
    fn mutate<R>(&mut self, f: impl FnOnce(&mut SignatureDb) -> R) -> R {
        let epoch = self.db.epoch();
        let vacuums = self.db.vacuums();
        let out = f(&mut self.db);
        if self.db.epoch() != epoch || self.db.vacuums() != vacuums {
            self.resync();
        } else {
            self.sync_incremental();
        }
        out
    }

    /// Incremental lockstep: route new slots to their shards and
    /// forward tombstones for slots that died since the last sync.
    fn sync_incremental(&mut self) {
        let slots = self.db.num_slots();
        for d in self.synced_slots..slots {
            let sig = self.db.signatures()[d].clone();
            let live = self.db.is_live(d);
            let piece = Arc::make_mut(&mut self.pieces[self.router.shard_of(d)]);
            piece
                .shard
                .insert(d, sig.vector.clone())
                .expect("sequential global ids route in order");
            piece.signatures.push(sig);
            if !live {
                piece.shard.remove(d).expect("slot was just inserted");
            }
        }
        self.synced_slots = slots;
        // Forward tombstones: compare liveness piece-by-piece. The scan
        // is O(slots) of boolean reads — negligible next to the search
        // structures it keeps consistent.
        for d in 0..slots {
            if !self.db.is_live(d) && self.pieces[self.router.shard_of(d)].shard.is_live(d) {
                let piece = Arc::make_mut(&mut self.pieces[self.router.shard_of(d)]);
                piece.shard.remove(d).expect("shard mirrors the database");
            }
        }
    }

    /// Full rebuild of the sharded mirror from the flat database — the
    /// off-to-the-side construction of the next generation after a
    /// refit (weights changed) or vacuum (ids renumbered). Tombstoned
    /// slots are mirrored as zero-vector inserts followed by a remove,
    /// keeping every shard's local id space aligned with the router.
    fn resync(&mut self) {
        let dim = self.db.dim();
        let slots = self.db.num_slots();
        let mut pieces: Vec<ShardPiece> = (0..self.router.num_shards())
            .map(|s| ShardPiece {
                shard: Shard::new(s, self.router, dim),
                signatures: Vec::new(),
            })
            .collect();
        for d in 0..slots {
            let sig = self.db.signatures()[d].clone();
            let live = self.db.is_live(d);
            let piece = &mut pieces[self.router.shard_of(d)];
            if live {
                piece
                    .shard
                    .insert(d, sig.vector.clone())
                    .expect("sequential global ids route in order");
            } else {
                piece
                    .shard
                    .insert(d, SparseVec::zeros(dim))
                    .expect("zero placeholder matches the dimension");
                piece.shard.remove(d).expect("slot was just inserted");
            }
            piece.signatures.push(sig);
        }
        self.pieces = pieces.into_iter().map(Arc::new).collect();
        self.synced_slots = slots;
    }
}

/// One per-shard unit of query work dispatched to the pool.
struct QueryJob {
    piece: Arc<ShardPiece>,
    query: Arc<SparseVec>,
    k: usize,
    reply: mpsc::Sender<Result<Vec<SearchHit>, IrError>>,
}

/// A message to a pool worker: query work, or an order to exit (the
/// fault-injection hook behind [`SignatureService::kill_worker`]).
enum Job {
    Query(QueryJob),
    Die,
}

/// Shared state behind the service handle.
struct ServiceInner {
    writer: Mutex<ShardWriter>,
    current: RwLock<Arc<ShardSnapshot>>,
    generation: AtomicU64,
    /// One channel per pool worker; shard `s` is served by worker
    /// `s % workers.len()`. Senders are mutex-wrapped so the service
    /// handle stays `Sync` across std versions.
    workers: Vec<Mutex<mpsc::Sender<Job>>>,
    /// Join handles, indexed like `workers`; a slot goes `None` once
    /// its thread has been reaped (shutdown or an injected kill).
    handles: Mutex<Vec<Option<JoinHandle<()>>>>,
}

impl Drop for ServiceInner {
    fn drop(&mut self) {
        // Disconnect the job channels so the workers' recv() loops end,
        // then reap the threads.
        self.workers.clear();
        for handle in self.handles.get_mut().drain(..).flatten() {
            let _ = handle.join();
        }
    }
}

/// The concurrently-readable facade over a sharded [`SignatureDb`].
///
/// Cloning the service clones a handle to the same store (shared
/// writer, shared snapshot, shared worker pool) — hand clones to reader
/// threads. Queries fan out across the shards on a persistent worker
/// pool (one long-lived thread per pool slot, each owning its
/// [`SearchScratch`] — the same pattern as parallel K-means) and are
/// merged with the flat comparator, so results are bit-identical to
/// [`SignatureDb::search`] on the equivalent flat database.
///
/// Mutations serialize on the writer; searches run against the
/// published [`ShardSnapshot`] and never wait for an in-progress
/// refit, vacuum, or insert.
#[derive(Clone)]
pub struct SignatureService {
    inner: Arc<ServiceInner>,
}

impl std::fmt::Debug for SignatureService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snapshot = self.snapshot();
        f.debug_struct("SignatureService")
            .field("generation", &snapshot.generation())
            .field("epoch", &snapshot.epoch())
            .field("len", &snapshot.len())
            .field("num_shards", &snapshot.num_shards())
            .finish()
    }
}

impl SignatureService {
    /// Fits tf-idf over `raw` and serves it from `num_shards` shards.
    ///
    /// # Errors
    ///
    /// Returns [`FmeterError::NoSignatures`] when `raw` is empty.
    pub fn build(raw: &[RawSignature], num_shards: usize) -> Result<Self, FmeterError> {
        Ok(Self::from_db(SignatureDb::build(raw)?, num_shards))
    }

    /// Serves an existing database from `num_shards` shards (clamped to
    /// at least 1).
    pub fn from_db(db: SignatureDb, num_shards: usize) -> Self {
        Self::from_writer(ShardWriter::new(db, num_shards))
    }

    /// Serves `db` from `num_shards` shards in **durable mode**: a
    /// fresh crash-consistency directory is initialised at `dir`
    /// (checkpoint + WAL + manifest) and every subsequent mutation is
    /// WAL-appended before it applies. Recover a crashed instance with
    /// [`recover_durable`](Self::recover_durable).
    ///
    /// # Errors
    ///
    /// Fails when `dir` already holds a durable database, and
    /// propagates I/O failures writing the initial checkpoint.
    pub fn from_db_durable(
        db: SignatureDb,
        num_shards: usize,
        dir: &Path,
        opts: DurableOptions,
    ) -> Result<Self, FmeterError> {
        let mut writer = ShardWriter::new(db, num_shards);
        let log = DurableLog::create(dir, writer.db(), writer.num_shards(), opts)?;
        writer.attach_durable(log);
        Ok(Self::from_writer(writer))
    }

    /// Recovers the durably-acked state from `dir` (newest loadable
    /// checkpoint + WAL replay up to the first torn record, falling
    /// back a generation when the newest checkpoint is damaged) and
    /// serves it from its saved shard layout, continuing in durable
    /// mode. The report says what was recovered.
    ///
    /// # Errors
    ///
    /// Fails when `dir` holds no loadable checkpoint generation.
    pub fn recover_durable(
        dir: &Path,
        opts: DurableOptions,
    ) -> Result<(Self, RecoveryReport), FmeterError> {
        let (db, num_shards, log, report) = DurableLog::recover(dir, opts)?;
        let mut writer = ShardWriter::new(db, num_shards);
        writer.attach_durable(log);
        Ok((Self::from_writer(writer), report))
    }

    /// Wraps a prepared writer (durable or not) in the service facade:
    /// publishes generation 0 and spins up the worker pool.
    fn from_writer(writer: ShardWriter) -> Self {
        let snapshot = Arc::new(writer.publish(0));
        let pool = writer
            .num_shards()
            .clamp(1, 16)
            .min(
                std::thread::available_parallelism()
                    .map(usize::from)
                    .unwrap_or(1),
            )
            .max(1);
        let mut workers = Vec::with_capacity(pool);
        let mut handles = Vec::with_capacity(pool);
        for _ in 0..pool {
            let (sender, receiver) = mpsc::channel::<Job>();
            workers.push(Mutex::new(sender));
            handles.push(Some(std::thread::spawn(move || {
                let mut scratch = SearchScratch::new();
                while let Ok(job) = receiver.recv() {
                    match job {
                        Job::Query(job) => {
                            let hits =
                                job.piece
                                    .shard()
                                    .search_with(&job.query, job.k, &mut scratch);
                            let _ = job.reply.send(hits);
                        }
                        Job::Die => break,
                    }
                }
            })));
        }
        SignatureService {
            inner: Arc::new(ServiceInner {
                writer: Mutex::new(writer),
                current: RwLock::new(snapshot),
                generation: AtomicU64::new(0),
                workers,
                handles: Mutex::new(handles),
            }),
        }
    }

    /// Loads a persisted database (any supported format version) and
    /// serves it from its saved shard layout (see
    /// [`save`](Self::save)).
    ///
    /// # Errors
    ///
    /// Propagates envelope and migration failures.
    pub fn load<R: Read>(reader: R) -> Result<Self, FmeterError> {
        let (db, num_shards) = persist::load_sharded(reader)?;
        Ok(Self::from_db(db, num_shards))
    }

    /// Saves the store through the versioned envelope, including the
    /// shard layout (format v3+); a plain [`SignatureDb::load`] reads
    /// the same bytes and simply drops the layout.
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O failures.
    pub fn save<W: Write>(&self, writer: W) -> Result<(), FmeterError> {
        let guard = self.inner.writer.lock();
        persist::save_sharded(
            guard.db(),
            guard.num_shards(),
            persist::CURRENT_FORMAT_VERSION,
            writer,
        )
    }

    /// The currently published generation. The returned `Arc` stays
    /// valid (and immutable) for as long as the caller holds it, no
    /// matter what the writer does meanwhile.
    pub fn snapshot(&self) -> Arc<ShardSnapshot> {
        self.inner.current.read().clone()
    }

    /// Finds the `k` stored signatures most similar to a fresh
    /// interval, fanning the query across the shards on the worker
    /// pool. Results are `(doc id, signature, score)`, bit-identical to
    /// the flat [`SignatureDb::search`] over the same corpus.
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches.
    pub fn search(
        &self,
        counts: &TermCounts,
        k: usize,
    ) -> Result<Vec<(DocId, Signature, f64)>, FmeterError> {
        let snapshot = self.snapshot();
        self.search_snapshot(&snapshot, counts, k)
    }

    /// Like [`search`](Self::search), against a caller-held generation
    /// — use this to run several queries against one consistent view.
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches.
    pub fn search_snapshot(
        &self,
        snapshot: &ShardSnapshot,
        counts: &TermCounts,
        k: usize,
    ) -> Result<Vec<(DocId, Signature, f64)>, FmeterError> {
        let query = Arc::new(snapshot.transform(counts));
        let (reply, replies) = mpsc::channel();
        let mut per_shard: Vec<Vec<SearchHit>> = Vec::with_capacity(snapshot.pieces().len());
        let mut pending = 0usize;
        for (s, piece) in snapshot.pieces().iter().enumerate() {
            let job = Job::Query(QueryJob {
                piece: piece.clone(),
                query: query.clone(),
                k,
                reply: reply.clone(),
            });
            let worker = &self.inner.workers[s % self.inner.workers.len()];
            if worker.lock().send(job).is_ok() {
                pending += 1;
            } else {
                // The worker is gone (pool shutdown, or a killed
                // thread): score the shard inline — same snapshot,
                // same results.
                let mut scratch = SearchScratch::new();
                per_shard.push(piece.shard().search_with(&query, k, &mut scratch)?);
            }
        }
        // Drop our sender so a lost worker surfaces as a disconnect
        // instead of a deadlock.
        drop(reply);
        for _ in 0..pending {
            match replies.recv() {
                Ok(hits) => per_shard.push(hits?),
                Err(_) => {
                    // A worker died mid-query; fall back to the
                    // sequential reference, which is bit-identical.
                    return snapshot.search(counts, k, &mut SearchScratch::new());
                }
            }
        }
        Ok(snapshot.resolve_hits(merge_topk(per_shard, k)))
    }

    /// Classifies a fresh interval by majority label among its `k`
    /// nearest stored signatures (same vote and tie-break as
    /// [`SignatureDb::classify`]).
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches.
    pub fn classify(&self, counts: &TermCounts, k: usize) -> Result<Option<String>, FmeterError> {
        let hits = self.search(counts, k)?;
        let mut votes: HashMap<&str, usize> = HashMap::new();
        for (_, sig, _) in &hits {
            if let Some(label) = sig.label.as_deref() {
                *votes.entry(label).or_default() += 1;
            }
        }
        Ok(votes
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(label, _)| label.to_string()))
    }

    /// Appends one signature and publishes the next generation.
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches.
    pub fn insert(&self, raw: &RawSignature) -> Result<DocId, FmeterError> {
        let mut writer = self.inner.writer.lock();
        let id = writer.insert(raw)?;
        self.publish(&writer);
        Ok(id)
    }

    /// Appends a batch of signatures and publishes the next generation
    /// (one publish for the whole batch).
    ///
    /// # Errors
    ///
    /// Returns a dimension mismatch on the first offending signature;
    /// earlier elements of the batch remain inserted and are published.
    pub fn insert_batch(&self, raw: &[RawSignature]) -> Result<Vec<DocId>, FmeterError> {
        let mut writer = self.inner.writer.lock();
        let result = writer.insert_batch(raw);
        self.publish(&writer);
        result
    }

    /// Tombstones a stored signature and publishes the next generation.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DocNotLive`] (wrapped) when `doc` was never
    /// assigned or is already removed.
    pub fn remove(&self, doc: DocId) -> Result<(), FmeterError> {
        let mut writer = self.inner.writer.lock();
        let result = writer.remove(doc);
        if result.is_ok() {
            self.publish(&writer);
        }
        result
    }

    /// Refits idf over the live corpus and publishes the re-weighted
    /// generation. In-flight and future reads on older snapshots are
    /// untouched.
    pub fn refit(&self) -> RefitStats {
        let mut writer = self.inner.writer.lock();
        let stats = writer.refit();
        self.publish(&writer);
        stats
    }

    /// Compacts tombstoned slots (renumbering doc ids — see
    /// [`SignatureDb::vacuum`]) and publishes the renumbered
    /// generation. Snapshots taken before the vacuum keep serving the
    /// old ids.
    pub fn vacuum(&self) -> VacuumStats {
        let mut writer = self.inner.writer.lock();
        let stats = writer.vacuum();
        self.publish(&writer);
        stats
    }

    /// Warm-started syndrome maintenance over the authoritative
    /// database (see [`SignatureDb::recluster`]): the first call runs a
    /// cold multi-restart K-means, steady-state calls resume from the
    /// cached assignment in O(changed docs). No generation is published
    /// — snapshots do not carry syndromes, and the pass mutates only
    /// the writer-side warm-start cache.
    ///
    /// # Errors
    ///
    /// Propagates clustering failures (e.g. fewer signatures than `k`).
    pub fn recluster(&self, k: usize, seed: u64) -> Result<Recluster, FmeterError> {
        self.inner.writer.lock().recluster(k, seed)
    }

    /// Replaces the automatic-refit policy.
    ///
    /// # Errors
    ///
    /// In durable mode the change is persisted by an immediate
    /// checkpoint; a checkpoint failure is propagated (the policy is
    /// applied in memory, the service stays usable — see
    /// [`ShardWriter::set_refit_policy`]). Infallible when not durable.
    pub fn set_refit_policy(&self, policy: RefitPolicy) -> Result<(), FmeterError> {
        self.inner.writer.lock().set_refit_policy(policy)
    }

    /// Replaces the automatic-vacuum policy.
    ///
    /// # Errors
    ///
    /// Propagates a checkpoint failure in durable mode (see
    /// [`SignatureService::set_refit_policy`]).
    pub fn set_vacuum_policy(&self, policy: VacuumPolicy) -> Result<(), FmeterError> {
        self.inner.writer.lock().set_vacuum_policy(policy)
    }

    /// Stats (incl. the id remap) of the most recent vacuum, if any.
    pub fn last_vacuum(&self) -> Option<VacuumStats> {
        self.inner.writer.lock().db().last_vacuum().cloned()
    }

    /// Number of live signatures in the published generation.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// Returns `true` when the published generation is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshot().is_empty()
    }

    /// Number of doc-id slots in the published generation.
    pub fn num_slots(&self) -> usize {
        self.snapshot().num_slots()
    }

    /// The published generation's idf epoch.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// The current publication sequence number.
    pub fn generation(&self) -> u64 {
        self.inner.generation.load(Ordering::Acquire)
    }

    /// Number of shards in the layout.
    pub fn num_shards(&self) -> usize {
        self.snapshot().num_shards()
    }

    /// Dimensionality of the signature space.
    pub fn dim(&self) -> usize {
        self.snapshot().dim()
    }

    /// Returns `true` when `doc` is live in the published generation.
    pub fn is_live(&self, doc: DocId) -> bool {
        self.snapshot().is_live(doc)
    }

    /// Vacuums performed over the store's lifetime.
    pub fn vacuums(&self) -> u64 {
        self.inner.writer.lock().db().vacuums()
    }

    /// Takes a durability checkpoint now (durable mode only).
    ///
    /// # Errors
    ///
    /// Fails when the service is not durable, and propagates checkpoint
    /// I/O failures (the service stays usable — the log folds the
    /// failure into its retry backoff).
    pub fn checkpoint(&self) -> Result<(), FmeterError> {
        self.inner.writer.lock().checkpoint()
    }

    /// Health of the durability layer; `None` when the service does not
    /// run in durable mode.
    pub fn durability_health(&self) -> Option<WalHealth> {
        self.inner.writer.lock().durability_health()
    }

    /// Runs `f` against the durable log under the writer lock (sync and
    /// fault-injection hooks); `None` when not durable.
    #[doc(hidden)]
    pub fn with_durable_log<R>(&self, f: impl FnOnce(&mut DurableLog) -> R) -> Option<R> {
        self.inner.writer.lock().durable_log_mut().map(f)
    }

    /// Fault injection: kills pool worker `i` (modulo the pool size)
    /// and waits for its thread to exit. Queries keep succeeding — the
    /// dead worker's shards are scored inline on the calling thread —
    /// and stay bit-identical, since every fallback scores the same
    /// immutable snapshot.
    #[doc(hidden)]
    pub fn kill_worker(&self, i: usize) {
        if self.inner.workers.is_empty() {
            return;
        }
        let idx = i % self.inner.workers.len();
        // The worker drains jobs in order, so Die is processed after
        // anything already queued; join makes the death deterministic.
        let _ = self.inner.workers[idx].lock().send(Job::Die);
        if let Some(handle) = self.inner.handles.lock()[idx].take() {
            let _ = handle.join();
        }
    }

    /// Number of pool workers still alive (used by the stress tests to
    /// assert the kill hook really took a thread down).
    #[doc(hidden)]
    pub fn live_workers(&self) -> usize {
        self.inner
            .handles
            .lock()
            .iter()
            .filter(|h| h.is_some())
            .count()
    }

    /// Stamps and swaps in the next generation. Called with the writer
    /// lock held (mutations serialize), so generation numbers and
    /// snapshot contents advance together; readers only ever take the
    /// `current` read lock for the duration of an `Arc` clone.
    fn publish(&self, writer: &ShardWriter) {
        let generation = self.inner.generation.fetch_add(1, Ordering::AcqRel) + 1;
        let snapshot = Arc::new(writer.publish(generation));
        *self.inner.current.write() = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmeter_kernel_sim::Nanos;

    fn raw(i: usize, label: &str, dim: usize) -> RawSignature {
        let mut counts = vec![0u64; dim];
        counts[i % dim] = 5 + (i % 7) as u64;
        counts[(i * 3 + 1) % dim] = 2 + (i % 4) as u64;
        counts[(i + dim / 2) % dim] = 1;
        RawSignature {
            counts,
            started_at: Nanos(i as u64 * 100),
            ended_at: Nanos(i as u64 * 100 + 100),
            label: Some(label.to_string()),
        }
    }

    fn sample(n: usize, dim: usize) -> Vec<RawSignature> {
        (0..n)
            .map(|i| raw(i, if i % 2 == 0 { "even" } else { "odd" }, dim))
            .collect()
    }

    fn assert_same_hits(
        service_hits: &[(DocId, Signature, f64)],
        db_hits: &[(&Signature, f64)],
        db: &SignatureDb,
    ) {
        assert_eq!(service_hits.len(), db_hits.len());
        for ((doc, sig, score), (db_sig, db_score)) in service_hits.iter().zip(db_hits) {
            assert_eq!(score, db_score, "scores must be bit-identical");
            assert_eq!(sig, *db_sig);
            assert!(std::ptr::eq(&db.signatures()[*doc], *db_sig));
        }
    }

    #[test]
    fn service_search_is_bit_identical_to_flat_db() {
        let raws = sample(40, 12);
        let db = SignatureDb::build(&raws).unwrap();
        for num_shards in [1, 2, 3, 5] {
            let service = SignatureService::build(&raws, num_shards).unwrap();
            assert_eq!(service.num_shards(), num_shards);
            for probe in raws.iter().step_by(7) {
                let q = probe.to_term_counts();
                let expected = db.search(&q, 6).unwrap();
                let got = service.search(&q, 6).unwrap();
                assert_same_hits(&got, &expected, &db);
                assert_eq!(
                    service.classify(&q, 5).unwrap(),
                    db.classify(&q, 5).unwrap()
                );
            }
        }
    }

    #[test]
    fn mutations_stay_in_lockstep_with_flat_db() {
        let raws = sample(30, 10);
        let extra = sample(60, 10);
        let mut db = SignatureDb::build(&raws).unwrap();
        db.set_refit_policy(RefitPolicy::EveryN(9));
        let service = SignatureService::build(&raws, 3).unwrap();
        service.set_refit_policy(RefitPolicy::EveryN(9)).unwrap();

        db.insert_batch(&extra[30..45]).unwrap();
        service.insert_batch(&extra[30..45]).unwrap();
        for doc in [1, 4, 10, 33] {
            db.remove(doc).unwrap();
            service.remove(doc).unwrap();
        }
        assert_eq!(service.len(), db.len());
        assert_eq!(service.epoch(), db.epoch());
        for probe in extra.iter().step_by(11) {
            let q = probe.to_term_counts();
            let expected = db.search(&q, 8).unwrap();
            let got = service.search(&q, 8).unwrap();
            assert_same_hits(&got, &expected, &db);
        }

        // Explicit refit + vacuum keep the mirrors aligned too.
        db.refit();
        let db_stats = db.vacuum();
        service.refit();
        let service_stats = service.vacuum();
        assert_eq!(service_stats.remap, db_stats.remap);
        assert_eq!(service.len(), db.len());
        assert_eq!(service.num_slots(), db.num_slots());
        for probe in extra.iter().step_by(13) {
            let q = probe.to_term_counts();
            let expected = db.search(&q, 8).unwrap();
            let got = service.search(&q, 8).unwrap();
            assert_same_hits(&got, &expected, &db);
        }
    }

    #[test]
    fn snapshots_are_immutable_across_mutations() {
        let raws = sample(24, 8);
        let service = SignatureService::build(&raws, 4).unwrap();
        let before = service.snapshot();
        let q = raws[3].to_term_counts();
        let hits_before = service.search_snapshot(&before, &q, 5).unwrap();
        let gen_before = before.generation();

        service.insert_batch(&sample(40, 8)[24..]).unwrap();
        service.remove(2).unwrap();
        service.refit();
        service.vacuum();

        // The old generation still serves exactly its old answers.
        assert_eq!(before.generation(), gen_before);
        assert_eq!(
            service.search_snapshot(&before, &q, 5).unwrap(),
            hits_before
        );
        let mut scratch = SearchScratch::new();
        assert_eq!(before.search(&q, 5, &mut scratch).unwrap(), hits_before);
        // And the service moved on: one publish per mutation call.
        assert_eq!(service.generation(), gen_before + 4);
        assert!(service.snapshot().generation() == service.generation());
    }

    #[test]
    fn sequential_snapshot_search_matches_pooled_fanout() {
        let raws = sample(50, 16);
        let service = SignatureService::build(&raws, 5).unwrap();
        let snapshot = service.snapshot();
        let mut scratch = SearchScratch::new();
        for probe in raws.iter().step_by(9) {
            let q = probe.to_term_counts();
            assert_eq!(
                service.search_snapshot(&snapshot, &q, 7).unwrap(),
                snapshot.search(&q, 7, &mut scratch).unwrap()
            );
        }
    }

    #[test]
    fn durable_service_recovers_its_acked_state() {
        let dir = std::env::temp_dir().join(format!(
            "fmeter-svc-durable-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let raws = sample(20, 8);
        let service = SignatureService::from_db_durable(
            SignatureDb::build(&raws[..12]).unwrap(),
            3,
            &dir,
            DurableOptions::default(),
        )
        .unwrap();
        assert_eq!(service.durability_health(), Some(WalHealth::Healthy));
        service.insert_batch(&raws[12..]).unwrap();
        service.remove(3).unwrap();
        let q = raws[5].to_term_counts();
        let expected = service.search(&q, 6).unwrap();
        drop(service); // "crash": no explicit checkpoint of the tail

        let (recovered, report) =
            SignatureService::recover_durable(&dir, DurableOptions::default()).unwrap();
        assert_eq!(report.replayed_ops, 2, "batch insert + remove");
        assert!(!report.torn_tail);
        assert_eq!(recovered.num_shards(), 3, "saved layout restored");
        assert_eq!(recovered.len(), 19);
        assert_eq!(recovered.search(&q, 6).unwrap(), expected);
        // Durable mode keeps working after recovery.
        recovered.insert(&raw(99, "odd", 8)).unwrap();
        recovered.checkpoint().unwrap();
        assert_eq!(recovered.durability_health(), Some(WalHealth::Healthy));
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_durable_service_reports_no_health_and_refuses_checkpoints() {
        let service = SignatureService::build(&sample(8, 6), 2).unwrap();
        assert_eq!(service.durability_health(), None);
        assert!(service.checkpoint().is_err());
        assert!(service.with_durable_log(|_| ()).is_none());
    }

    #[test]
    fn killed_workers_leave_results_bit_identical() {
        let raws = sample(36, 10);
        let db = SignatureDb::build(&raws).unwrap();
        let service = SignatureService::build(&raws, 4).unwrap();
        let alive = service.live_workers();
        service.kill_worker(0);
        assert_eq!(service.live_workers(), alive - 1);
        // Kill the entire pool: every shard falls back to inline
        // scoring, still against the same immutable snapshot.
        for i in 0..alive {
            service.kill_worker(i);
        }
        assert_eq!(service.live_workers(), 0);
        for probe in raws.iter().step_by(5) {
            let q = probe.to_term_counts();
            let expected = db.search(&q, 6).unwrap();
            let got = service.search(&q, 6).unwrap();
            assert_same_hits(&got, &expected, &db);
        }
    }

    #[test]
    fn shard_writer_round_trips_into_db() {
        let raws = sample(20, 8);
        let db = SignatureDb::build(&raws).unwrap();
        let reference = db.clone();
        let mut writer = ShardWriter::new(db, 3);
        writer.remove(5).unwrap();
        let snapshot = writer.publish(1);
        assert_eq!(snapshot.len(), 19);
        assert!(!snapshot.is_live(5));
        assert_eq!(
            snapshot.signature(7).unwrap(),
            &reference.signatures()[7].clone()
        );
        let db = writer.into_db();
        assert_eq!(db.len(), 19);
    }
}
