//! Fmeter core: the paper's monitoring system assembled over the
//! simulated kernel.
//!
//! This crate owns the *operator-facing* layer of the reproduction —
//! everything above the raw tracing machinery and below the evaluation
//! binaries. It wires `fmeter-kernel-sim` (the machine), `fmeter-trace`
//! (the counters), and `fmeter-ir`/`fmeter-ml` (the math) into the
//! workflow of paper §2.2:
//!
//! * [`Fmeter`] installs the per-CPU counting tracer on a kernel and
//!   exposes counters through debugfs (paper §3's kernel component),
//! * [`SignatureLogger`] is the user-space daemon: it samples counters on
//!   an interval and emits [`RawSignature`]s (count deltas, §3),
//! * [`SignatureDb`] fits tf-idf over a corpus of raw signatures, indexes
//!   the resulting weight vectors, and supports similarity search,
//!   nearest-neighbour classification, K-means [`Syndrome`] extraction,
//!   and meta-clustering of syndromes — the full operator workflow of
//!   paper §2.2 (evaluated in §4.2),
//! * [`AnomalyDetector`] flags intervals whose signatures sit far from
//!   every known syndrome (the forensics use case of §1).
//!
//! The database is *incremental* (streaming insert/remove with
//! epoch-versioned tf-idf refits driven by a [`RefitPolicy`]), *bounded*
//! (tombstoned slots are reclaimed by [`SignatureDb::vacuum`], driven by
//! a [`VacuumPolicy`]), and *durable* (saves are versioned envelopes
//! that load across releases — see the [`persist`] module for the
//! format contract and `docs/PERSISTENCE.md` for the narrative).
//!
//! ```
//! use fmeter_core::{Fmeter, SignatureDb};
//! use fmeter_kernel_sim::{CpuId, Kernel, KernelConfig, Nanos};
//! use fmeter_workloads::{Dbench, Scp, Workload};
//!
//! let mut kernel = Kernel::new(KernelConfig::default())?;
//! let fmeter = Fmeter::install(&mut kernel);
//! let mut logger = fmeter.logger(Nanos::from_millis(5), kernel.now());
//!
//! let mut raw = logger.collect(&mut kernel, &mut Dbench::new(1), &[CpuId(0)], 4, Some("dbench"))?;
//! logger.resync(kernel.now());
//! raw.extend(logger.collect(&mut kernel, &mut Scp::new(2), &[CpuId(0)], 4, Some("scp"))?);
//!
//! let db = SignatureDb::build(&raw)?;
//! assert_eq!(db.len(), 8);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anomaly;
mod db;
mod error;
pub mod fault;
mod fmeter;
mod logger;
pub mod persist;
mod service;
mod signature;
mod userspace;
pub mod wal;

pub use anomaly::{AnomalyDetector, AnomalyVerdict};
pub use db::{
    Recluster, RefitPolicy, RefitStats, SignatureDb, Syndrome, VacuumPolicy, VacuumStats,
};
pub use error::FmeterError;
pub use fmeter::Fmeter;
pub use logger::SignatureLogger;
pub use service::{ShardPiece, ShardSnapshot, ShardWriter, SignatureService};
pub use signature::{RawSignature, Signature};
pub use userspace::{sample_via_debugfs, DebugfsReader, SymbolMap};
pub use wal::{
    CheckpointPolicy, DurableDb, DurableLog, DurableOptions, RecoveryReport, SyncPolicy, WalHealth,
    WalOp,
};
