//! Crash-consistent durability: a write-ahead log, atomic checkpoints,
//! and torn-tail recovery for [`SignatureDb`].
//!
//! A monitoring daemon that loses every insert since its last envelope
//! save — or worse, leaves a half-written envelope behind — is not a
//! daemon an operator can trust. This module makes the streaming store
//! durable with the classic WAL discipline:
//!
//! * every mutation is appended to an **op log** *before* it is applied
//!   (see [`WalOp`]); records are length-prefixed, carry a monotone
//!   sequence number, and are bound to a CRC32 checksum, so replay can
//!   stop *cleanly* at the first torn or corrupted record;
//! * a **checkpoint** is a full current-version envelope written to a
//!   temp file,
//!   fsynced, and atomically renamed into place; a small `MANIFEST`
//!   binds the newest good checkpoint to the WAL that continues it, and
//!   the previous generation is retained so a damaged newest checkpoint
//!   falls back instead of failing;
//! * [`DurableLog::recover`] (and [`DurableDb::recover`]) rebuild the
//!   exact durably-acked state: last good checkpoint + WAL tail replay,
//!   never applying a record past the first bad one, and always
//!   starting a *fresh* generation afterwards (a possibly-torn WAL is
//!   never appended to);
//! * a failing WAL write **degrades** the log instead of poisoning it:
//!   mutations keep applying in memory, [`DurableLog::health`] reports
//!   [`WalHealth::Degraded`], and durability is re-established by a
//!   checkpoint attempt under capped exponential backoff (counted in
//!   operations, so the schedule is deterministic and testable).
//!
//! # WAL file layout
//!
//! ```text
//! FMWAL 2 <start_seq> <contiguous:0|1>\n      ← header (fsynced at creation)
//! [len: u32 LE][seq: u64 LE][crc32: u32 LE][payload: len bytes]   ← repeated
//! ```
//!
//! The payload is the binary encoding of a [`WalOp`] (a one-byte op tag
//! followed by the op's fields in the length-prefixed little-endian
//! codec of [`fmeter_ir::codec`] — see `docs/PERSISTENCE.md` for the
//! byte layout); the checksum covers the sequence number and the
//! payload. Readers also accept the `FMWAL 1` framing, whose payloads
//! are JSON — a daemon upgraded in place replays its old log, and the
//! next generation is written as v2. `contiguous` records whether
//! this WAL directly continues the previous generation's (used by
//! recovery to chain segments when the newest checkpoint is damaged; a
//! WAL opened after a degraded period, whose predecessor is missing
//! acked-but-unlogged ops, sets it to 0).
//!
//! # Crash matrix
//!
//! What a crash can lose under each [`SyncPolicy`] (never more — and
//! never a corrupted state):
//!
//! | policy | lost on crash |
//! |---|---|
//! | `EveryRecord` | nothing that was acked |
//! | `EveryN(n)` | up to the last `n − 1` acked ops |
//! | `OnCheckpoint` | acked ops since the last checkpoint |
//!
//! See `docs/PERSISTENCE.md` for the narrative version, and the
//! `durability` integration suite for the kill-and-replay property
//! test that pins all of this down.

use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use fmeter_ir::codec::{self, BinCodec, CodecError, Reader};
use fmeter_ir::DocId;
use serde::{Deserialize, Serialize};

use crate::fault::{FailPlan, FailpointFile};
use crate::{persist, FmeterError, RawSignature, SignatureDb};

/// First token of every WAL file header line.
pub const WAL_MAGIC: &str = "FMWAL";

/// The WAL version this build writes: binary [`WalOp`] payloads.
/// [`read_wal`] also accepts [`WAL_VERSION_JSON`] files.
pub const WAL_VERSION: u32 = 2;

/// The original WAL version: identical framing, JSON payloads. Still
/// readable (a daemon upgraded in place must replay its old log), never
/// written.
pub const WAL_VERSION_JSON: u32 = 1;

/// Checkpoint generations kept on disk: the newest plus one fallback.
pub const KEEP_GENERATIONS: u64 = 2;

/// Upper bound on a single WAL record payload; a length prefix above
/// this is treated as corruption, not an allocation request.
const MAX_RECORD_BYTES: u32 = 64 << 20;

/// Bytes of framing per record: length (4) + sequence (8) + CRC32 (4).
const RECORD_HEADER_BYTES: usize = 16;

const MANIFEST_FILE: &str = "MANIFEST";
const MANIFEST_MAGIC: &str = "FMMANIFEST";

// ---- CRC32 -----------------------------------------------------------

/// Slice-by-8 lookup tables for the standard IEEE CRC32 (reflected,
/// poly 0xEDB88320). `TABLES[0]` is the classic byte-at-a-time table;
/// `TABLES[k][i]` extends it by `k` more zero bytes, so eight table
/// hits fold eight input bytes per iteration. Same polynomial, same
/// checksums — only the walk is wider (the v5 envelope checksums
/// megabytes of binary section per save/load, so CRC throughput is on
/// the checkpoint critical path).
const CRC32_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    let mut c = state;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[..4].try_into().unwrap()) ^ c;
        let hi = u32::from_le_bytes(chunk[4..].try_into().unwrap());
        c = CRC32_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC32_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC32_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC32_TABLES[4][(lo >> 24) as usize]
            ^ CRC32_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC32_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC32_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC32_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC32_TABLES[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// CRC32 (IEEE 802.3, the zlib/`cksum -o 3` polynomial) of `bytes` —
/// the checksum both WAL records and envelope sections (v4+) use.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(0xFFFF_FFFF, bytes)
}

// ---- ops -------------------------------------------------------------

/// One logged mutation. The WAL records exactly the *explicit* API
/// calls; policy-driven refits and vacuums that fire inside an insert
/// or remove re-trigger deterministically on replay, so they are never
/// logged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalOp {
    /// [`SignatureDb::insert`].
    Insert(RawSignature),
    /// [`SignatureDb::insert_batch`].
    InsertBatch(Vec<RawSignature>),
    /// [`SignatureDb::remove`] of the given slot.
    Remove(DocId),
    /// An explicit [`SignatureDb::refit`].
    Refit,
    /// An explicit [`SignatureDb::vacuum`].
    Vacuum,
}

impl WalOp {
    /// Applies the op to `db`, mirroring what the durable wrapper did at
    /// log time. Replay ignores per-op errors: append-before-mutate may
    /// log an op whose application failed (e.g. a dimension mismatch),
    /// and it fails identically on replay.
    pub fn apply(&self, db: &mut SignatureDb) -> Result<(), FmeterError> {
        match self {
            WalOp::Insert(raw) => db.insert(raw).map(|_| ()),
            WalOp::InsertBatch(raws) => db.insert_batch(raws).map(|_| ()),
            WalOp::Remove(doc) => db.remove(*doc),
            WalOp::Refit => {
                db.refit();
                Ok(())
            }
            WalOp::Vacuum => {
                db.vacuum();
                Ok(())
            }
        }
    }
}

// v2 WAL payload layout: a one-byte op tag, then the op's fields. The
// tag values are on the wire forever — never renumber, only append.
impl BinCodec for WalOp {
    fn encode_bin(&self, out: &mut Vec<u8>) {
        match self {
            WalOp::Insert(raw) => {
                codec::put_u8(out, 0);
                raw.encode_bin(out);
            }
            WalOp::InsertBatch(raws) => {
                codec::put_u8(out, 1);
                raws.encode_bin(out);
            }
            WalOp::Remove(doc) => {
                codec::put_u8(out, 2);
                codec::put_usize(out, *doc);
            }
            WalOp::Refit => codec::put_u8(out, 3),
            WalOp::Vacuum => codec::put_u8(out, 4),
        }
    }

    fn decode_bin(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(WalOp::Insert(RawSignature::decode_bin(r)?)),
            1 => Ok(WalOp::InsertBatch(Vec::decode_bin(r)?)),
            2 => Ok(WalOp::Remove(r.get_usize()?)),
            3 => Ok(WalOp::Refit),
            4 => Ok(WalOp::Vacuum),
            tag => Err(CodecError::new(format!("unknown WalOp tag {tag}"))),
        }
    }
}

// ---- policies --------------------------------------------------------

/// When appended WAL records are fsynced — the durability/throughput
/// dial. See the crash matrix in the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Sync after every record: an acked op is a durable op.
    EveryRecord,
    /// Sync every `n` records (values below 1 behave as 1).
    EveryN(usize),
    /// Sync only when a checkpoint runs (or on an explicit
    /// [`DurableLog::sync`]).
    OnCheckpoint,
}

/// When the log folds its WAL into a fresh checkpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckpointPolicy {
    /// Only on explicit [`DurableLog::checkpoint`] calls.
    Manual,
    /// Checkpoint when *any* of the set bounds is exceeded.
    Every {
        /// Ops applied since the last checkpoint.
        ops: Option<u64>,
        /// Bytes appended to the current WAL.
        wal_bytes: Option<u64>,
        /// Wall-clock time since the last checkpoint.
        interval: Option<Duration>,
    },
}

/// Configuration for a [`DurableLog`] / [`DurableDb`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurableOptions {
    /// WAL fsync cadence.
    pub sync: SyncPolicy,
    /// Checkpoint cadence.
    pub checkpoint: CheckpointPolicy,
}

impl Default for DurableOptions {
    /// Every acked op durable; checkpoint every 1024 ops or 4 MiB of
    /// WAL, whichever comes first.
    fn default() -> Self {
        DurableOptions {
            sync: SyncPolicy::EveryRecord,
            checkpoint: CheckpointPolicy::Every {
                ops: Some(1024),
                wal_bytes: Some(4 << 20),
                interval: None,
            },
        }
    }
}

// ---- sinks -----------------------------------------------------------

/// A writable sink that can make its bytes durable — the seam the
/// fault-injection wrappers in [`crate::fault`] plug into.
pub trait WalSink: Write + Send {
    /// Durably flushes everything written so far (fsync-equivalent).
    fn sync(&mut self) -> io::Result<()>;
}

impl WalSink for File {
    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }
}

/// In-memory sink for tests and tooling; `sync` is a no-op.
impl WalSink for Vec<u8> {
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl<W: WalSink + ?Sized> WalSink for Box<W> {
    fn sync(&mut self) -> io::Result<()> {
        (**self).sync()
    }
}

// ---- writer ----------------------------------------------------------

/// Encodes one framed v2 record into `buf` (clearing it first). The
/// binary payload is written straight into the frame — no intermediate
/// allocation — so a writer reusing one buffer appends garbage-free.
fn encode_record_into(buf: &mut Vec<u8>, seq: u64, op: &WalOp) {
    buf.clear();
    buf.resize(RECORD_HEADER_BYTES, 0);
    op.encode_bin(buf);
    let payload_len = buf.len() - RECORD_HEADER_BYTES;
    let crc = !crc32_update(
        crc32_update(0xFFFF_FFFF, &seq.to_le_bytes()),
        &buf[RECORD_HEADER_BYTES..],
    );
    buf[..4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    buf[4..12].copy_from_slice(&seq.to_le_bytes());
    buf[12..16].copy_from_slice(&crc.to_le_bytes());
}

#[cfg(test)]
fn encode_record(seq: u64, op: &WalOp) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_record_into(&mut buf, seq, op);
    buf
}

/// Capacity the reusable append buffer is trimmed back to after an
/// oversized record (e.g. a huge `InsertBatch`), so one outlier does
/// not pin its high-water mark for the writer's lifetime.
const APPEND_BUF_RETAIN: usize = 1 << 20;

/// An append-only writer over one WAL file (or any [`WalSink`]).
pub struct WalWriter {
    sink: Box<dyn WalSink>,
    policy: SyncPolicy,
    next_seq: u64,
    bytes: u64,
    unsynced: usize,
    /// Reused per-append serialize buffer: steady-state appends do not
    /// allocate.
    buf: Vec<u8>,
}

impl WalWriter {
    /// Writes (and syncs) the WAL header, returning a writer whose
    /// first record will carry `start_seq`.
    pub fn create(
        mut sink: Box<dyn WalSink>,
        start_seq: u64,
        contiguous: bool,
        policy: SyncPolicy,
    ) -> Result<Self, FmeterError> {
        let header = format!(
            "{WAL_MAGIC} {WAL_VERSION} {start_seq} {}\n",
            u8::from(contiguous)
        );
        sink.write_all(header.as_bytes())?;
        sink.sync()?;
        Ok(WalWriter {
            sink,
            policy,
            next_seq: start_seq,
            bytes: header.len() as u64,
            unsynced: 0,
            buf: Vec::new(),
        })
    }

    /// Appends one op, returning its sequence number. Syncs according
    /// to the [`SyncPolicy`]. On error the file tail must be considered
    /// torn: the writer's owner should stop using it (replay will stop
    /// at the damage).
    pub fn append(&mut self, op: &WalOp) -> Result<u64, FmeterError> {
        let seq = self.next_seq;
        encode_record_into(&mut self.buf, seq, op);
        self.sink.write_all(&self.buf)?;
        self.next_seq += 1;
        self.bytes += self.buf.len() as u64;
        self.unsynced += 1;
        if self.buf.capacity() > APPEND_BUF_RETAIN {
            self.buf.shrink_to(APPEND_BUF_RETAIN);
        }
        match self.policy {
            SyncPolicy::EveryRecord => self.sync()?,
            SyncPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            SyncPolicy::OnCheckpoint => {}
        }
        Ok(seq)
    }

    /// Forces an fsync of everything appended so far.
    pub fn sync(&mut self) -> Result<(), FmeterError> {
        self.sink.sync()?;
        self.unsynced = 0;
        Ok(())
    }

    /// The sequence number the next append will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Bytes written so far, header included.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Wraps the underlying sink with a fault-injection plan (byte
    /// budgets count from this call onward).
    fn arm_failpoints(&mut self, plan: FailPlan) {
        let inner = std::mem::replace(&mut self.sink, Box::new(Vec::new()));
        self.sink = Box::new(FailpointFile::new(inner, plan));
    }
}

impl fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WalWriter")
            .field("policy", &self.policy)
            .field("next_seq", &self.next_seq)
            .field("bytes", &self.bytes)
            .field("unsynced", &self.unsynced)
            .finish_non_exhaustive()
    }
}

// ---- reader ----------------------------------------------------------

/// The result of scanning one WAL file: the longest clean prefix of
/// records, plus what stopped the scan. Scanning never fails — damage
/// is a *state*, not an error.
#[derive(Debug)]
pub struct WalSegment {
    /// Sequence number of the first record, from the header; `None`
    /// when even the header line is torn.
    pub start_seq: Option<u64>,
    /// Whether this WAL directly continues the previous generation's
    /// (false after a degraded period lost ops between the two).
    pub contiguous: bool,
    /// The clean record prefix, in order, each with its sequence.
    pub records: Vec<(u64, WalOp)>,
    /// True when the scan stopped at a torn or corrupt record (rather
    /// than the clean end of the file).
    pub torn: bool,
}

/// Scans WAL bytes, stopping cleanly at the first torn or corrupt
/// record: short header, length overrun, checksum mismatch, sequence
/// gap, or unparsable payload all end the prefix.
pub fn read_wal(bytes: &[u8]) -> WalSegment {
    let mut seg = WalSegment {
        start_seq: None,
        contiguous: true,
        records: Vec::new(),
        torn: true,
    };
    // Header line: "FMWAL <version> <start_seq> <contiguous>\n" within
    // the first 64 bytes.
    let Some(nl) = bytes.iter().take(64).position(|&b| b == b'\n') else {
        return seg;
    };
    let Ok(header) = std::str::from_utf8(&bytes[..nl]) else {
        return seg;
    };
    let tokens: Vec<&str> = header.split_whitespace().collect();
    let parsed = match tokens.as_slice() {
        [magic, version, start, contig] if *magic == WAL_MAGIC => version
            .parse::<u32>()
            .ok()
            .filter(|v| *v == WAL_VERSION || *v == WAL_VERSION_JSON)
            .and_then(|v| start.parse::<u64>().ok().map(|s| (v, s, *contig == "1"))),
        _ => None,
    };
    let Some((version, start_seq, contiguous)) = parsed else {
        return seg;
    };
    seg.start_seq = Some(start_seq);
    seg.contiguous = contiguous;
    let mut offset = nl + 1;
    let mut expected = start_seq;
    loop {
        let remaining = bytes.len() - offset;
        if remaining == 0 {
            seg.torn = false; // clean end of file
            return seg;
        }
        if remaining < RECORD_HEADER_BYTES {
            return seg;
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
        if len > MAX_RECORD_BYTES || len as usize > remaining - RECORD_HEADER_BYTES {
            return seg;
        }
        let seq = u64::from_le_bytes(bytes[offset + 4..offset + 12].try_into().unwrap());
        let stored_crc = u32::from_le_bytes(bytes[offset + 12..offset + 16].try_into().unwrap());
        let payload =
            &bytes[offset + RECORD_HEADER_BYTES..offset + RECORD_HEADER_BYTES + len as usize];
        let crc = !crc32_update(crc32_update(0xFFFF_FFFF, &seq.to_le_bytes()), payload);
        if crc != stored_crc || seq != expected {
            return seg;
        }
        let op = if version == WAL_VERSION_JSON {
            let Ok(text) = std::str::from_utf8(payload) else {
                return seg;
            };
            let Ok(op) = serde_json::from_str::<WalOp>(text) else {
                return seg;
            };
            op
        } else {
            let Ok(op) = codec::decode_from_slice::<WalOp>(payload) else {
                return seg;
            };
            op
        };
        seg.records.push((seq, op));
        expected += 1;
        offset += RECORD_HEADER_BYTES + len as usize;
    }
}

// ---- manifest & directory layout ------------------------------------

/// The `MANIFEST` payload: which checkpoint generation is current, and
/// the first sequence number of the WAL that continues it.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Manifest {
    generation: u64,
    wal_start_seq: u64,
}

fn encode_manifest(m: &Manifest) -> Result<Vec<u8>, FmeterError> {
    let json = serde_json::to_string(m)?;
    Ok(format!("{MANIFEST_MAGIC} {:08x}\n{json}\n", crc32(json.as_bytes())).into_bytes())
}

fn read_manifest(dir: &Path) -> Option<Manifest> {
    let text = fs::read_to_string(dir.join(MANIFEST_FILE)).ok()?;
    let (magic_line, rest) = text.split_once('\n')?;
    let crc_hex = magic_line.strip_prefix(MANIFEST_MAGIC)?.trim();
    let stored = u32::from_str_radix(crc_hex, 16).ok()?;
    let json = rest.strip_suffix('\n').unwrap_or(rest);
    if crc32(json.as_bytes()) != stored {
        return None;
    }
    serde_json::from_str(json).ok()
}

fn checkpoint_name(generation: u64) -> String {
    format!("checkpoint-{generation:010}.fmdb")
}

fn wal_name(generation: u64) -> String {
    format!("wal-{generation:010}.log")
}

fn parse_generation(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

/// All checkpoint generations present in `dir`, newest first.
fn scan_checkpoints(dir: &Path) -> Result<Vec<u64>, FmeterError> {
    let mut gens = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(g) = parse_generation(name, "checkpoint-", ".fmdb") {
            gens.push(g);
        }
    }
    gens.sort_unstable_by(|a, b| b.cmp(a));
    Ok(gens)
}

/// The highest generation any file in `dir` mentions (checkpoint or
/// WAL) — the floor for the next generation a recovery may allocate.
fn max_generation(dir: &Path) -> Result<u64, FmeterError> {
    let mut max = 0;
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let g = parse_generation(name, "checkpoint-", ".fmdb")
            .or_else(|| parse_generation(name, "wal-", ".log"));
        max = max.max(g.unwrap_or(0));
    }
    Ok(max)
}

/// Best-effort fsync of the directory entry itself (so renames and
/// creations are durable); ignored on platforms where directories
/// cannot be opened.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Writes `bytes` to `dir/name` atomically: temp file → fsync → rename
/// → directory fsync. A crash anywhere leaves either the old file or
/// the new one, never a mix.
fn write_atomic(
    dir: &Path,
    name: &str,
    bytes: &[u8],
    plan: Option<&FailPlan>,
) -> Result<(), FmeterError> {
    let tmp = dir.join(format!("{name}.tmp"));
    {
        let file = File::create(&tmp)?;
        let mut sink: Box<dyn WalSink> = match plan {
            Some(p) => Box::new(FailpointFile::new(file, p.clone())),
            None => Box::new(file),
        };
        sink.write_all(bytes)?;
        sink.sync()?;
    }
    fs::rename(&tmp, dir.join(name))?;
    sync_dir(dir);
    Ok(())
}

// ---- durable log -----------------------------------------------------

/// Health of the durability layer, as observed by
/// [`DurableLog::health`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalHealth {
    /// Every acked op is logged (durable per the [`SyncPolicy`]).
    Healthy,
    /// A WAL write failed: mutations keep applying in memory but are
    /// *not* durable until a checkpoint attempt succeeds. Retries run
    /// under capped exponential backoff, counted in ops.
    Degraded {
        /// Checkpoint attempts that failed since degradation began
        /// (the initial WAL failure counts as the first).
        failed_attempts: u32,
        /// Acked ops not covered by WAL or checkpoint yet.
        ops_since_durable: u64,
        /// The most recent failure, for operators.
        last_error: String,
    },
}

#[derive(Debug)]
struct Degraded {
    failed_attempts: u32,
    ops_since_durable: u64,
    ops_until_retry: u64,
    last_error: String,
}

/// Capped exponential backoff, counted in operations so the schedule is
/// deterministic: 2, 4, 8, … capped at 256 ops between attempts.
fn backoff_ops(failed_attempts: u32) -> u64 {
    1u64 << failed_attempts.min(8)
}

/// What a recovery found and did — returned by
/// [`DurableLog::recover`] / [`DurableDb::recover`].
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The checkpoint generation the state was loaded from.
    pub generation: u64,
    /// Newer checkpoint generations that were present but damaged and
    /// skipped (the fallback path).
    pub checkpoints_skipped: usize,
    /// WAL records replayed on top of the checkpoint.
    pub replayed_ops: usize,
    /// Sequence number of the last replayed record.
    pub last_seq: Option<u64>,
    /// True when replay stopped at a torn or corrupt record rather
    /// than a clean end of the log.
    pub torn_tail: bool,
    /// The generation the `MANIFEST` pointed at, `None` when it was
    /// missing or failed its checksum. Recovery never *requires* the
    /// manifest — it scans and validates generations directly — so a
    /// damaged manifest only shows up here, as a diagnostic.
    pub manifest_generation: Option<u64>,
}

/// The durability engine: owns a directory of checkpoints + WALs and
/// the append/checkpoint/recover protocol over it. It deliberately does
/// *not* own the [`SignatureDb`] — both the flat [`DurableDb`] wrapper
/// and the sharded [`SignatureService`](crate::SignatureService) drive
/// the same log.
pub struct DurableLog {
    dir: PathBuf,
    opts: DurableOptions,
    generation: u64,
    /// Next sequence number while no WAL is open (fresh or degraded).
    resume_seq: u64,
    wal: Option<WalWriter>,
    ops_since_checkpoint: u64,
    last_checkpoint: Instant,
    degraded: Option<Degraded>,
    /// Backoff for checkpoint failures while the WAL itself is healthy.
    checkpoint_failures: u32,
    checkpoint_retry_in: u64,
    wal_fail_plan: Option<FailPlan>,
    checkpoint_fail_plan: Option<FailPlan>,
    manifest_fail_plan: Option<FailPlan>,
}

impl DurableLog {
    /// Initialises a fresh durable directory for `db`: generation-1
    /// checkpoint, empty WAL, manifest. Fails if `dir` already holds a
    /// durable state (use [`DurableLog::recover`] for that).
    pub fn create(
        dir: &Path,
        db: &SignatureDb,
        num_shards: usize,
        opts: DurableOptions,
    ) -> Result<Self, FmeterError> {
        fs::create_dir_all(dir)?;
        if dir.join(MANIFEST_FILE).exists() || !scan_checkpoints(dir)?.is_empty() {
            return Err(FmeterError::Persist(format!(
                "durable directory {} already holds a database; use recover",
                dir.display()
            )));
        }
        let mut log = DurableLog::bare(dir.to_path_buf(), opts, 0, 1);
        log.checkpoint(db, num_shards)?;
        Ok(log)
    }

    fn bare(dir: PathBuf, opts: DurableOptions, generation: u64, resume_seq: u64) -> Self {
        DurableLog {
            dir,
            opts,
            generation,
            resume_seq,
            wal: None,
            ops_since_checkpoint: 0,
            last_checkpoint: Instant::now(),
            degraded: None,
            checkpoint_failures: 0,
            checkpoint_retry_in: 0,
            wal_fail_plan: None,
            checkpoint_fail_plan: None,
            manifest_fail_plan: None,
        }
    }

    /// Reconstructs the durably-acked state from `dir` *without writing
    /// anything*: newest loadable checkpoint + WAL chain replay,
    /// stopping at the first torn record. The inspect/debug entry
    /// point, and the cheap half of [`DurableLog::recover`].
    pub fn recover_state(dir: &Path) -> Result<(SignatureDb, usize, RecoveryReport), FmeterError> {
        let gens = scan_checkpoints(dir)?;
        if gens.is_empty() {
            return Err(FmeterError::Persist(format!(
                "no checkpoint found in {} (empty or partially-created durable directory)",
                dir.display()
            )));
        }
        let manifest = read_manifest(dir);
        let mut last_err: Option<FmeterError> = None;
        for (skipped, &generation) in gens.iter().enumerate() {
            match Self::try_recover_from(dir, generation) {
                Ok((db, num_shards, mut report)) => {
                    report.checkpoints_skipped = skipped;
                    report.manifest_generation = manifest.map(|m| m.generation);
                    return Ok((db, num_shards, report));
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(FmeterError::Persist(format!(
            "no loadable checkpoint generation in {}: {}",
            dir.display(),
            last_err.map(|e| e.to_string()).unwrap_or_default()
        )))
    }

    /// Loads checkpoint `generation` and replays its WAL chain.
    fn try_recover_from(
        dir: &Path,
        generation: u64,
    ) -> Result<(SignatureDb, usize, RecoveryReport), FmeterError> {
        let bytes = fs::read(dir.join(checkpoint_name(generation)))?;
        let (mut db, num_shards) = persist::load_sharded(&bytes[..])?;
        let mut report = RecoveryReport {
            generation,
            checkpoints_skipped: 0,
            replayed_ops: 0,
            last_seq: None,
            torn_tail: false,
            manifest_generation: None,
        };
        // Replay wal-<generation>, then chain into each successor WAL
        // that declares itself a contiguous continuation (the newer
        // checkpoint those WALs belonged to is damaged or absent, or we
        // would have recovered from it). Never chain past a torn file:
        // anything after the damage is not provably consistent.
        let mut expected: Option<u64> = None;
        for g in generation.. {
            let Ok(wal_bytes) = fs::read(dir.join(wal_name(g))) else {
                break;
            };
            let seg = read_wal(&wal_bytes);
            let Some(start_seq) = seg.start_seq else {
                report.torn_tail = true;
                break;
            };
            if g > generation && (!seg.contiguous || expected != Some(start_seq)) {
                break;
            }
            for (seq, op) in &seg.records {
                let _ = op.apply(&mut db);
                report.replayed_ops += 1;
                report.last_seq = Some(*seq);
            }
            expected = Some(start_seq + seg.records.len() as u64);
            if seg.torn {
                report.torn_tail = true;
                break;
            }
        }
        Ok((db, num_shards, report))
    }

    /// Full crash recovery: rebuilds the durably-acked state, then
    /// immediately starts a *fresh* generation (new checkpoint + empty
    /// WAL) — a WAL with a possibly-torn tail is never appended to, so
    /// recovery is also self-healing.
    pub fn recover(
        dir: &Path,
        opts: DurableOptions,
    ) -> Result<(SignatureDb, usize, Self, RecoveryReport), FmeterError> {
        let (db, num_shards, report) = Self::recover_state(dir)?;
        let resume_seq = report.last_seq.map(|s| s + 1).unwrap_or(1);
        let generation = max_generation(dir)?;
        let mut log = DurableLog::bare(dir.to_path_buf(), opts, generation, resume_seq);
        log.checkpoint(&db, num_shards)?;
        Ok((db, num_shards, log, report))
    }

    /// Appends one op to the WAL — call *before* applying the mutation.
    /// Never fails: a write error flips the log into
    /// [`WalHealth::Degraded`] (the op still applies in memory) and
    /// durability is re-established by the next successful checkpoint.
    pub fn append(&mut self, op: &WalOp) {
        self.ops_since_checkpoint += 1;
        match &mut self.wal {
            Some(writer) => {
                if let Err(e) = writer.append(op) {
                    // The WAL tail must now be assumed torn; replay will
                    // stop there, so later appends would be invisible.
                    // Stop writing and surface the state.
                    self.resume_seq = writer.next_seq();
                    self.wal = None;
                    self.degraded = Some(Degraded {
                        failed_attempts: 1,
                        ops_since_durable: 1,
                        ops_until_retry: backoff_ops(1),
                        last_error: e.to_string(),
                    });
                }
            }
            None => {
                if let Some(d) = &mut self.degraded {
                    d.ops_since_durable += 1;
                }
            }
        }
    }

    /// Runs the checkpoint policy (and, when degraded, the backoff'd
    /// re-establishment attempts). Call once per mutation, after
    /// applying it. Returns true when a checkpoint was taken.
    pub fn maybe_checkpoint(&mut self, db: &SignatureDb, num_shards: usize) -> bool {
        if self.degraded.is_some() {
            {
                let d = self.degraded.as_mut().expect("checked above");
                if d.ops_until_retry > 0 {
                    d.ops_until_retry -= 1;
                    return false;
                }
            }
            self.try_checkpoint(db, num_shards)
        } else {
            if self.checkpoint_retry_in > 0 {
                self.checkpoint_retry_in -= 1;
                return false;
            }
            let due = match self.opts.checkpoint {
                CheckpointPolicy::Manual => false,
                CheckpointPolicy::Every {
                    ops,
                    wal_bytes,
                    interval,
                } => {
                    ops.is_some_and(|n| self.ops_since_checkpoint >= n)
                        || wal_bytes.is_some_and(|b| self.wal_bytes() >= b)
                        || interval.is_some_and(|i| self.last_checkpoint.elapsed() >= i)
                }
            };
            if !due {
                return false;
            }
            self.try_checkpoint(db, num_shards)
        }
    }

    /// Attempts a checkpoint now, folding a failure into the same
    /// backoff accounting the policy-driven path uses. Returns whether
    /// the checkpoint was taken.
    pub fn try_checkpoint(&mut self, db: &SignatureDb, num_shards: usize) -> bool {
        self.checkpoint_with_backoff(db, num_shards).is_ok()
    }

    /// Attempts a checkpoint now, folding a failure into the retry
    /// backoff (so the caller is never poisoned) *and* propagating it —
    /// for callers that must surface the failure, like policy setters,
    /// where an unpersisted change would make recovery silently replay
    /// the WAL under the old policy.
    pub fn checkpoint_with_backoff(
        &mut self,
        db: &SignatureDb,
        num_shards: usize,
    ) -> Result<(), FmeterError> {
        match self.checkpoint(db, num_shards) {
            Ok(()) => Ok(()), // checkpoint() cleared any degraded state
            Err(e) => {
                if let Some(d) = &mut self.degraded {
                    d.failed_attempts += 1;
                    d.ops_until_retry = backoff_ops(d.failed_attempts);
                    d.last_error = e.to_string();
                } else {
                    // The WAL is still healthy — nothing acked is at
                    // risk — so just retry the checkpoint later.
                    self.checkpoint_failures += 1;
                    self.checkpoint_retry_in = backoff_ops(self.checkpoint_failures);
                }
                Err(e)
            }
        }
    }

    /// Takes a checkpoint now: writes the full state as a fresh
    /// generation (atomic rename), starts a new WAL, updates the
    /// manifest, prunes generations beyond [`KEEP_GENERATIONS`], and —
    /// if the log was degraded — restores [`WalHealth::Healthy`].
    pub fn checkpoint(&mut self, db: &SignatureDb, num_shards: usize) -> Result<(), FmeterError> {
        let new_gen = self.generation + 1;
        let mut bytes = Vec::new();
        persist::save_sharded(db, num_shards, persist::CURRENT_FORMAT_VERSION, &mut bytes)?;
        write_atomic(
            &self.dir,
            &checkpoint_name(new_gen),
            &bytes,
            self.checkpoint_fail_plan.as_ref(),
        )?;
        // The rename just made checkpoint-<new_gen> the newest
        // generation recovery can see — and recovery starts its WAL
        // replay chain at the generation it loads. On any failure below
        // we are still appending acked ops into the *previous*
        // generation's WAL, so the new checkpoint must come back off
        // disk: left in place, it would shadow those ops after a crash.
        match self.open_generation(new_gen) {
            Ok((writer, start_seq)) => {
                self.prune(new_gen);
                self.generation = new_gen;
                self.resume_seq = start_seq;
                self.wal = Some(writer);
                self.ops_since_checkpoint = 0;
                self.last_checkpoint = Instant::now();
                self.degraded = None;
                self.checkpoint_failures = 0;
                self.checkpoint_retry_in = 0;
                Ok(())
            }
            Err(e) => {
                // Best effort: if a delete fails too, the stale
                // generation can still shadow the live WAL after a
                // crash, but the original error is already in flight.
                let _ = fs::remove_file(self.dir.join(checkpoint_name(new_gen)));
                let _ = fs::remove_file(self.dir.join(wal_name(new_gen)));
                sync_dir(&self.dir);
                Err(e)
            }
        }
    }

    /// Creates generation `generation`'s WAL (header written through
    /// the sync policy) and durably points the manifest at it. The new
    /// WAL continues the global sequence; it is a contiguous
    /// continuation of the previous segment unless a degraded period
    /// left acked ops that never reached any WAL.
    fn open_generation(&self, generation: u64) -> Result<(WalWriter, u64), FmeterError> {
        let start_seq = self.next_seq();
        let contiguous = self
            .degraded
            .as_ref()
            .is_none_or(|d| d.ops_since_durable == 0);
        let file = File::create(self.dir.join(wal_name(generation)))?;
        let sink: Box<dyn WalSink> = match &self.wal_fail_plan {
            Some(p) => Box::new(FailpointFile::new(file, p.clone())),
            None => Box::new(file),
        };
        let writer = WalWriter::create(sink, start_seq, contiguous, self.opts.sync)?;
        sync_dir(&self.dir);
        let manifest = encode_manifest(&Manifest {
            generation,
            wal_start_seq: start_seq,
        })?;
        write_atomic(
            &self.dir,
            MANIFEST_FILE,
            &manifest,
            self.manifest_fail_plan.as_ref(),
        )?;
        Ok((writer, start_seq))
    }

    /// Deletes checkpoint/WAL generations older than the retention
    /// window and any stale temp files. Best effort: pruning failures
    /// never fail a checkpoint.
    fn prune(&self, newest: u64) {
        let min_keep = newest.saturating_sub(KEEP_GENERATIONS - 1);
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale_tmp = name.ends_with(".tmp");
            let old_gen = parse_generation(name, "checkpoint-", ".fmdb")
                .or_else(|| parse_generation(name, "wal-", ".log"))
                .is_some_and(|g| g < min_keep);
            if stale_tmp || old_gen {
                let _ = fs::remove_file(entry.path());
            }
        }
    }

    /// Forces an fsync of the current WAL (useful under
    /// [`SyncPolicy::OnCheckpoint`] before a planned pause).
    pub fn sync(&mut self) -> Result<(), FmeterError> {
        match &mut self.wal {
            Some(w) => w.sync(),
            None => Ok(()),
        }
    }

    /// Current health of the durability layer.
    pub fn health(&self) -> WalHealth {
        match &self.degraded {
            None => WalHealth::Healthy,
            Some(d) => WalHealth::Degraded {
                failed_attempts: d.failed_attempts,
                ops_since_durable: d.ops_since_durable,
                last_error: d.last_error.clone(),
            },
        }
    }

    /// The checkpoint generation currently on disk.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The sequence number the next logged op will carry.
    pub fn next_seq(&self) -> u64 {
        self.wal.as_ref().map_or(self.resume_seq, |w| w.next_seq())
    }

    /// Bytes in the current WAL file (0 while degraded).
    pub fn wal_bytes(&self) -> u64 {
        self.wal.as_ref().map_or(0, |w| w.bytes_written())
    }

    /// Ops appended since the last checkpoint.
    pub fn ops_since_checkpoint(&self) -> u64 {
        self.ops_since_checkpoint
    }

    /// The directory this log persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Fault injection: apply `plan` to the current WAL file and every
    /// future one (byte budgets count from this call / file creation).
    /// `None` disarms future files (the current file keeps its wrapper).
    pub fn set_wal_fail_plan(&mut self, plan: Option<FailPlan>) {
        self.wal_fail_plan = plan.clone();
        if let (Some(p), Some(w)) = (plan, &mut self.wal) {
            w.arm_failpoints(p);
        }
    }

    /// Fault injection: apply `plan` to every future checkpoint write.
    pub fn set_checkpoint_fail_plan(&mut self, plan: Option<FailPlan>) {
        self.checkpoint_fail_plan = plan;
    }

    /// Fault injection: apply `plan` to every future manifest write —
    /// the last step of a checkpoint, so this exercises failures
    /// *after* the new checkpoint file has renamed into place.
    pub fn set_manifest_fail_plan(&mut self, plan: Option<FailPlan>) {
        self.manifest_fail_plan = plan;
    }
}

impl fmt::Debug for DurableLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableLog")
            .field("dir", &self.dir)
            .field("generation", &self.generation)
            .field("next_seq", &self.next_seq())
            .field("ops_since_checkpoint", &self.ops_since_checkpoint)
            .field("health", &self.health())
            .finish_non_exhaustive()
    }
}

// ---- durable db ------------------------------------------------------

/// A [`SignatureDb`] with crash consistency: every mutation is WAL'd
/// before it applies, checkpoints fold the log into atomic envelope
/// snapshots, and [`DurableDb::recover`] restores the exact
/// durably-acked state after a crash.
///
/// Reads go through [`DurableDb::db`]; mutations must go through this
/// wrapper (the inner database is deliberately not exposed mutably).
/// For the sharded, concurrently-searchable equivalent see
/// [`SignatureService`](crate::SignatureService) in durable mode.
pub struct DurableDb {
    db: SignatureDb,
    log: DurableLog,
}

impl fmt::Debug for DurableDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableDb")
            .field("len", &self.db.len())
            .field("log", &self.log)
            .finish_non_exhaustive()
    }
}

impl DurableDb {
    /// Starts a fresh durable directory holding `db`.
    pub fn create(dir: &Path, db: SignatureDb, opts: DurableOptions) -> Result<Self, FmeterError> {
        let log = DurableLog::create(dir, &db, 1, opts)?;
        Ok(DurableDb { db, log })
    }

    /// Recovers the durably-acked state from `dir` with default
    /// options.
    pub fn recover(dir: &Path) -> Result<(Self, RecoveryReport), FmeterError> {
        Self::recover_with(dir, DurableOptions::default())
    }

    /// Recovers the durably-acked state from `dir`.
    pub fn recover_with(
        dir: &Path,
        opts: DurableOptions,
    ) -> Result<(Self, RecoveryReport), FmeterError> {
        let (db, _num_shards, log, report) = DurableLog::recover(dir, opts)?;
        Ok((DurableDb { db, log }, report))
    }

    /// WAL-then-apply [`SignatureDb::insert`].
    pub fn insert(&mut self, raw: &RawSignature) -> Result<DocId, FmeterError> {
        self.log.append(&WalOp::Insert(raw.clone()));
        let out = self.db.insert(raw);
        self.log.maybe_checkpoint(&self.db, 1);
        out
    }

    /// WAL-then-apply [`SignatureDb::insert_batch`].
    pub fn insert_batch(&mut self, raw: &[RawSignature]) -> Result<Vec<DocId>, FmeterError> {
        self.log.append(&WalOp::InsertBatch(raw.to_vec()));
        let out = self.db.insert_batch(raw);
        self.log.maybe_checkpoint(&self.db, 1);
        out
    }

    /// WAL-then-apply [`SignatureDb::remove`].
    pub fn remove(&mut self, doc: DocId) -> Result<(), FmeterError> {
        self.log.append(&WalOp::Remove(doc));
        let out = self.db.remove(doc);
        self.log.maybe_checkpoint(&self.db, 1);
        out
    }

    /// WAL-then-apply [`SignatureDb::refit`].
    pub fn refit(&mut self) -> crate::RefitStats {
        self.log.append(&WalOp::Refit);
        let out = self.db.refit();
        self.log.maybe_checkpoint(&self.db, 1);
        out
    }

    /// WAL-then-apply [`SignatureDb::vacuum`].
    pub fn vacuum(&mut self) -> crate::VacuumStats {
        self.log.append(&WalOp::Vacuum);
        let out = self.db.vacuum();
        self.log.maybe_checkpoint(&self.db, 1);
        out
    }

    /// Changes the refit policy. Policy changes are not WAL ops (replay
    /// must re-trigger policy-driven refits deterministically), so the
    /// change is persisted by taking a checkpoint immediately.
    pub fn set_refit_policy(&mut self, policy: crate::RefitPolicy) -> Result<(), FmeterError> {
        self.db.set_refit_policy(policy);
        self.log.checkpoint(&self.db, 1)
    }

    /// Changes the vacuum policy; checkpoints immediately (see
    /// [`DurableDb::set_refit_policy`]).
    pub fn set_vacuum_policy(&mut self, policy: crate::VacuumPolicy) -> Result<(), FmeterError> {
        self.db.set_vacuum_policy(policy);
        self.log.checkpoint(&self.db, 1)
    }

    /// Takes a checkpoint now.
    pub fn checkpoint(&mut self) -> Result<(), FmeterError> {
        self.log.checkpoint(&self.db, 1)
    }

    /// The in-memory database — searches, classification, and all other
    /// reads go through here.
    pub fn db(&self) -> &SignatureDb {
        &self.db
    }

    /// Health of the durability layer.
    pub fn health(&self) -> WalHealth {
        self.log.health()
    }

    /// The underlying log, for introspection and fault injection.
    pub fn log(&self) -> &DurableLog {
        &self.log
    }

    /// Mutable access to the log (fault-injection and sync hooks; the
    /// log cannot corrupt the database from here).
    pub fn log_mut(&mut self) -> &mut DurableLog {
        &mut self.log
    }

    /// Drops durability, returning the in-memory database.
    pub fn into_db(self) -> SignatureDb {
        self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ShortWriter;
    use fmeter_kernel_sim::Nanos;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn test_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "fmeter-wal-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn raw(seed: u64) -> RawSignature {
        RawSignature {
            counts: vec![seed % 7, 3, seed % 5, 1, 0, 2, seed % 3, 0],
            started_at: Nanos(seed * 100),
            ended_at: Nanos(seed * 100 + 50),
            label: Some(if seed.is_multiple_of(2) { "a" } else { "b" }.to_string()),
        }
    }

    fn base_db() -> SignatureDb {
        let raws: Vec<RawSignature> = (0..8).map(raw).collect();
        SignatureDb::build(&raws).unwrap()
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn wal_records_round_trip_through_a_sink() {
        let mut w =
            WalWriter::create(Box::new(Vec::new()), 7, true, SyncPolicy::OnCheckpoint).unwrap();
        let ops = [
            WalOp::Insert(raw(1)),
            WalOp::Remove(3),
            WalOp::Refit,
            WalOp::InsertBatch(vec![raw(2), raw(3)]),
            WalOp::Vacuum,
        ];
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(w.append(op).unwrap(), 7 + i as u64);
        }
        // Recover the bytes from the boxed sink by rebuilding: the
        // writer interface hides them, so frame a parallel buffer.
        let mut bytes = format!("{WAL_MAGIC} {WAL_VERSION} 7 1\n").into_bytes();
        for (i, op) in ops.iter().enumerate() {
            bytes.extend_from_slice(&encode_record(7 + i as u64, op));
        }
        let seg = read_wal(&bytes);
        assert_eq!(seg.start_seq, Some(7));
        assert!(seg.contiguous);
        assert!(!seg.torn);
        assert_eq!(seg.records.len(), ops.len());
        for ((seq, got), (i, want)) in seg.records.iter().zip(ops.iter().enumerate()) {
            assert_eq!(*seq, 7 + i as u64);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn v1_json_wal_segments_still_replay() {
        // A daemon upgraded in place finds the previous build's v1 WAL
        // on disk; its JSON payloads must replay exactly.
        let ops = [
            WalOp::Insert(raw(1)),
            WalOp::Remove(3),
            WalOp::Refit,
            WalOp::InsertBatch(vec![raw(2), raw(3)]),
            WalOp::Vacuum,
        ];
        let mut bytes = format!("{WAL_MAGIC} {WAL_VERSION_JSON} 4 0\n").into_bytes();
        for (i, op) in ops.iter().enumerate() {
            let seq = 4 + i as u64;
            let payload = serde_json::to_string(op).unwrap().into_bytes();
            let crc = !crc32_update(crc32_update(0xFFFF_FFFF, &seq.to_le_bytes()), &payload);
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&seq.to_le_bytes());
            bytes.extend_from_slice(&crc.to_le_bytes());
            bytes.extend_from_slice(&payload);
        }
        let seg = read_wal(&bytes);
        assert_eq!(seg.start_seq, Some(4));
        assert!(!seg.contiguous);
        assert!(!seg.torn);
        assert_eq!(seg.records.len(), ops.len());
        for ((_, got), want) in seg.records.iter().zip(ops.iter()) {
            assert_eq!(got, want);
        }
        // A binary payload inside a v1 file is *not* silently accepted:
        // the JSON decode fails and replay stops cleanly there.
        let mut mixed = format!("{WAL_MAGIC} {WAL_VERSION_JSON} 1 1\n").into_bytes();
        mixed.extend_from_slice(&encode_record(1, &WalOp::Refit));
        let seg = read_wal(&mixed);
        assert!(seg.torn);
        assert!(seg.records.is_empty());
    }

    #[test]
    fn unknown_wal_versions_are_ignored() {
        let bytes = format!("{WAL_MAGIC} 3 1 1\n").into_bytes();
        let seg = read_wal(&bytes);
        assert_eq!(seg.start_seq, None);
        assert!(seg.torn);
    }

    #[test]
    fn truncation_at_every_byte_yields_a_clean_prefix() {
        let ops = [
            WalOp::Insert(raw(1)),
            WalOp::Remove(0),
            WalOp::Refit,
            WalOp::Vacuum,
        ];
        let mut bytes = format!("{WAL_MAGIC} {WAL_VERSION} 1 1\n").into_bytes();
        let mut boundaries = vec![bytes.len()];
        for (i, op) in ops.iter().enumerate() {
            bytes.extend_from_slice(&encode_record(1 + i as u64, op));
            boundaries.push(bytes.len());
        }
        for cut in 0..=bytes.len() {
            let seg = read_wal(&bytes[..cut]);
            if cut < boundaries[0] {
                assert_eq!(seg.start_seq, None, "cut {cut}");
                assert!(seg.torn);
            } else {
                // Number of records wholly inside the prefix.
                let wanted = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
                assert_eq!(seg.records.len(), wanted, "cut {cut}");
                assert_eq!(
                    seg.torn,
                    cut != *boundaries.last().unwrap() && cut != boundaries[wanted],
                    "cut {cut}"
                );
            }
        }
    }

    #[test]
    fn bit_flips_stop_replay_at_the_damaged_record() {
        let ops: Vec<WalOp> = (0..4).map(|i| WalOp::Insert(raw(i))).collect();
        let mut bytes = format!("{WAL_MAGIC} {WAL_VERSION} 1 1\n").into_bytes();
        let mut starts = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            starts.push(bytes.len());
            bytes.extend_from_slice(&encode_record(1 + i as u64, op));
        }
        // Flip one bit inside record 2 (in its payload area).
        let mut damaged = bytes.clone();
        damaged[starts[2] + RECORD_HEADER_BYTES + 3] ^= 0x10;
        let seg = read_wal(&damaged);
        assert!(seg.torn);
        assert_eq!(seg.records.len(), 2, "replay must stop before record 2");
        // Flip a bit in a *length* field: still a clean stop.
        let mut damaged = bytes.clone();
        damaged[starts[1]] ^= 0x40;
        let seg = read_wal(&damaged);
        assert!(seg.torn);
        assert_eq!(seg.records.len(), 1);
    }

    #[test]
    fn short_writes_do_not_tear_records() {
        let sink = ShortWriter::new(Vec::new(), 3);
        let mut w = WalWriter::create(Box::new(sink), 1, true, SyncPolicy::EveryRecord).unwrap();
        for i in 0..3 {
            w.append(&WalOp::Insert(raw(i))).unwrap();
        }
        // The write_all loop must have retried until every byte landed;
        // prove it by replaying the exact same frames.
        let mut bytes = format!("{WAL_MAGIC} {WAL_VERSION} 1 1\n").into_bytes();
        for i in 0..3 {
            bytes.extend_from_slice(&encode_record(1 + i, &WalOp::Insert(raw(i))));
        }
        let seg = read_wal(&bytes);
        assert_eq!(seg.records.len(), 3);
        assert!(!seg.torn);
    }

    #[test]
    fn manifest_round_trips_and_rejects_damage() {
        let dir = test_dir("manifest");
        fs::create_dir_all(&dir).unwrap();
        let m = Manifest {
            generation: 12,
            wal_start_seq: 345,
        };
        fs::write(dir.join(MANIFEST_FILE), encode_manifest(&m).unwrap()).unwrap();
        let back = read_manifest(&dir).unwrap();
        assert_eq!(back.generation, 12);
        assert_eq!(back.wal_start_seq, 345);
        // Flip a byte in the JSON: the checksum must reject it.
        let mut bytes = encode_manifest(&m).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x01;
        fs::write(dir.join(MANIFEST_FILE), bytes).unwrap();
        assert!(read_manifest(&dir).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_checkpoint_recover_round_trip() {
        let dir = test_dir("roundtrip");
        let db = base_db();
        let mut durable = DurableDb::create(&dir, db.clone(), DurableOptions::default()).unwrap();
        for i in 8..14 {
            durable.insert(&raw(i)).unwrap();
        }
        durable.remove(2).unwrap();
        durable.refit();
        let expected = durable.db().clone();
        drop(durable); // "crash": no shutdown checkpoint
        let (recovered, report) = DurableDb::recover(&dir).unwrap();
        assert_eq!(report.replayed_ops, 8);
        assert!(!report.torn_tail);
        assert_eq!(report.checkpoints_skipped, 0);
        assert_eq!(recovered.db().len(), expected.len());
        assert_eq!(recovered.db().epoch(), expected.epoch());
        for d in 0..expected.num_slots() {
            assert_eq!(recovered.db().is_live(d), expected.is_live(d));
            assert_eq!(
                recovered.db().signatures()[d].vector,
                expected.signatures()[d].vector
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_on_empty_or_partial_directory_fails_loudly() {
        let dir = test_dir("empty");
        // Nonexistent directory.
        assert!(DurableDb::recover(&dir).is_err());
        // Empty directory.
        fs::create_dir_all(&dir).unwrap();
        assert!(DurableDb::recover(&dir).is_err());
        // Partially-created: stray tmp and WAL but no checkpoint.
        fs::write(dir.join("checkpoint-0000000001.fmdb.tmp"), b"half").unwrap();
        fs::write(dir.join(wal_name(1)), b"FMWAL 1 1 1\n").unwrap();
        let err = DurableDb::recover(&dir).unwrap_err();
        assert!(
            err.to_string().contains("no checkpoint"),
            "unexpected error: {err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_refuses_a_populated_directory() {
        let dir = test_dir("populated");
        let db = base_db();
        drop(DurableDb::create(&dir, db.clone(), DurableOptions::default()).unwrap());
        assert!(DurableDb::create(&dir, db, DurableOptions::default()).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_failure_degrades_then_heals_with_backoff() {
        let dir = test_dir("degrade");
        let db = base_db();
        let opts = DurableOptions {
            sync: SyncPolicy::EveryRecord,
            checkpoint: CheckpointPolicy::Manual,
        };
        let mut durable = DurableDb::create(&dir, db, opts).unwrap();
        durable.insert(&raw(100)).unwrap();
        assert_eq!(durable.health(), WalHealth::Healthy);
        // Kill the WAL: the very next append fails and degrades.
        durable
            .log_mut()
            .set_wal_fail_plan(Some(FailPlan::kill_at(0)));
        // Also make the heal checkpoints fail (the new WAL dies too).
        durable.insert(&raw(101)).unwrap();
        match durable.health() {
            WalHealth::Degraded {
                failed_attempts,
                ops_since_durable,
                ..
            } => {
                assert_eq!(failed_attempts, 1);
                assert_eq!(ops_since_durable, 1);
            }
            h => panic!("expected degraded, got {h:?}"),
        }
        // Mutations keep applying in memory while degraded, and retry
        // attempts back off (2, 4, 8 … ops between attempts).
        let len_before = durable.db().len();
        for i in 0..40u64 {
            durable.insert(&raw(102 + i)).unwrap();
        }
        assert_eq!(durable.db().len(), len_before + 40);
        let attempts_while_failing = match durable.health() {
            WalHealth::Degraded {
                failed_attempts, ..
            } => failed_attempts,
            h => panic!("expected degraded, got {h:?}"),
        };
        assert!(
            (2..=7).contains(&attempts_while_failing),
            "backoff should have retried a few times, not every op: {attempts_while_failing}"
        );
        // Clear the fault: the next retry window heals the log.
        durable.log_mut().set_wal_fail_plan(None);
        let mut healed = false;
        for i in 0..300u64 {
            durable.insert(&raw(200 + i)).unwrap();
            if durable.health() == WalHealth::Healthy {
                healed = true;
                break;
            }
        }
        assert!(healed, "log never healed after the fault cleared");
        let expected = durable.db().clone();
        drop(durable);
        // Everything — including the ops that rode through the degraded
        // window — recovers, because healing took a fresh checkpoint.
        let (recovered, _) = DurableDb::recover(&dir).unwrap();
        assert_eq!(recovered.db().len(), expected.len());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_manifest_write_retracts_the_checkpoint_and_keeps_the_live_wal() {
        // The reviewer's scenario for the mid-checkpoint failure hole:
        // the new checkpoint renames into place, then a later step (the
        // manifest write — the last one) fails. The writer keeps
        // appending acked, fsynced ops into the previous generation's
        // WAL; a crash + recovery must retain them, which means the
        // half-installed generation must have come back off disk.
        let dir = test_dir("retract-manifest");
        let opts = DurableOptions {
            sync: SyncPolicy::EveryRecord,
            checkpoint: CheckpointPolicy::Manual,
        };
        let mut durable = DurableDb::create(&dir, base_db(), opts).unwrap();
        durable.insert(&raw(300)).unwrap();
        durable
            .log_mut()
            .set_manifest_fail_plan(Some(FailPlan::kill_at(0)));
        assert!(durable.checkpoint().is_err());
        durable.log_mut().set_manifest_fail_plan(None);
        // The WAL itself never failed: still healthy, still generation 1.
        assert_eq!(durable.health(), WalHealth::Healthy);
        assert_eq!(durable.log().generation(), 1);
        assert!(
            !dir.join(checkpoint_name(2)).exists() && !dir.join(wal_name(2)).exists(),
            "the half-installed generation must be retracted"
        );
        // More acked ops keep flowing into the generation-1 WAL...
        durable.insert(&raw(301)).unwrap();
        durable.insert(&raw(302)).unwrap();
        let expected_len = durable.db().len();
        drop(durable); // ...then crash.
        let (recovered, report) = DurableDb::recover(&dir).unwrap();
        assert_eq!(report.generation, 1);
        assert!(!report.torn_tail);
        assert_eq!(
            recovered.db().len(),
            expected_len,
            "ops acked after the failed checkpoint must survive recovery"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_wal_creation_retracts_the_checkpoint() {
        // Same hole, earlier failure point: the new generation's WAL
        // header write dies right after the checkpoint rename.
        let dir = test_dir("retract-wal");
        let opts = DurableOptions {
            sync: SyncPolicy::EveryRecord,
            checkpoint: CheckpointPolicy::Manual,
        };
        let mut durable = DurableDb::create(&dir, base_db(), opts).unwrap();
        durable.insert(&raw(310)).unwrap();
        durable
            .log_mut()
            .set_wal_fail_plan(Some(FailPlan::kill_at(0)));
        assert!(durable.checkpoint().is_err());
        assert_eq!(durable.log().generation(), 1);
        assert!(
            !dir.join(checkpoint_name(2)).exists(),
            "a checkpoint with no WAL must not be left to shadow generation 1"
        );
        let expected_len = durable.db().len();
        drop(durable); // Crash without further ops (the live WAL sink is
                       // armed too, so appends would degrade — covered
                       // by the degradation test above).
        let (recovered, report) = DurableDb::recover(&dir).unwrap();
        assert_eq!(report.generation, 1);
        assert_eq!(recovered.db().len(), expected_len);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_policy_triggers_on_ops() {
        let dir = test_dir("policy");
        let db = base_db();
        let opts = DurableOptions {
            sync: SyncPolicy::EveryN(4),
            checkpoint: CheckpointPolicy::Every {
                ops: Some(5),
                wal_bytes: None,
                interval: None,
            },
        };
        let mut durable = DurableDb::create(&dir, db, opts).unwrap();
        let gen_before = durable.log().generation();
        for i in 0..11 {
            durable.insert(&raw(50 + i)).unwrap();
        }
        assert!(
            durable.log().generation() >= gen_before + 2,
            "11 ops at a 5-op bound must have checkpointed at least twice"
        );
        assert!(durable.log().ops_since_checkpoint() < 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_prefers_newest_and_falls_back_when_truncated() {
        let dir = test_dir("fallback");
        let db = base_db();
        let opts = DurableOptions {
            sync: SyncPolicy::EveryRecord,
            checkpoint: CheckpointPolicy::Manual,
        };
        let mut durable = DurableDb::create(&dir, db, opts).unwrap();
        for i in 0..4 {
            durable.insert(&raw(20 + i)).unwrap();
        }
        durable.checkpoint().unwrap(); // generation 2 holds the inserts
        for i in 0..2 {
            durable.insert(&raw(30 + i)).unwrap();
        }
        let expected = durable.db().clone();
        let newest = durable.log().generation();
        drop(durable);
        // Damage the newest checkpoint: recovery must fall back to the
        // previous generation and chain-replay both WALs to the exact
        // same state.
        let path = dir.join(checkpoint_name(newest));
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        let (recovered, report) = DurableDb::recover(&dir).unwrap();
        assert_eq!(report.generation, newest - 1);
        assert_eq!(report.checkpoints_skipped, 1);
        assert_eq!(report.replayed_ops, 6, "4 pre-checkpoint + 2 post");
        assert_eq!(recovered.db().len(), expected.len());
        for d in 0..expected.num_slots() {
            assert_eq!(
                recovered.db().signatures()[d].vector,
                expected.signatures()[d].vector
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn policy_changes_are_persisted_via_checkpoint() {
        let dir = test_dir("policy-change");
        let db = base_db();
        let mut durable = DurableDb::create(&dir, db, DurableOptions::default()).unwrap();
        durable
            .set_refit_policy(crate::RefitPolicy::EveryN(3))
            .unwrap();
        durable
            .set_vacuum_policy(crate::VacuumPolicy::DeadFraction {
                max_dead_fraction: 0.5,
                min_dead: 2,
            })
            .unwrap();
        drop(durable);
        let (recovered, _) = DurableDb::recover(&dir).unwrap();
        assert_eq!(recovered.db().refit_policy(), crate::RefitPolicy::EveryN(3));
        assert_eq!(
            recovered.db().vacuum_policy(),
            crate::VacuumPolicy::DeadFraction {
                max_dead_fraction: 0.5,
                min_dead: 2,
            }
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
