//! Versioned on-disk persistence for [`SignatureDb`] — the format
//! contract, its version table, and the migration chain.
//!
//! The paper's whole premise is that signatures are *indexable
//! artifacts* an operator stores and searches over time (§1, §4); a
//! monitoring daemon that cannot reload last week's database after a
//! software upgrade defeats that. Persisted state is therefore a
//! contract, not a debug dump:
//!
//! * every save is wrapped in a tagged **envelope** — a magic line, a
//!   format version, and a section table with byte lengths — so readers
//!   know exactly what they are holding before parsing a byte of
//!   payload;
//! * every historical layout has an entry in [`FORMAT_VERSIONS`] and a
//!   committed fixture under `tests/fixtures/` that locks it in
//!   forever;
//! * [`load`] migrates any supported version forward, one
//!   version-to-version migration function at a time, so a database
//!   saved by release N−1 loads on release N with identical
//!   search/classify behaviour;
//! * the **bare unversioned JSON** that pre-envelope releases wrote
//!   (format version 0) is detected by the absence of the magic and
//!   adopted into the chain.
//!
//! # Envelope layout
//!
//! ```text
//! FMETERDB 5\n                                   ← magic + format version
//! {"format_version":5,"sections":[["model",N],…],"crc32":[…],"codec":["bin",…]}\n
//! <model bytes><corpus bytes><signatures bytes><index bytes><state bytes><sharding bytes>
//! ```
//!
//! The table carries each section's byte length, so a reader can skip,
//! split, or stream sections without parsing them. Section payloads are
//! looked up by *name*, so future versions may add or reorder sections
//! freely. Since v4 the header also carries one CRC32 per section
//! (parallel to the table); readers verify every checksum *before*
//! parsing a byte of payload, so a torn or bit-flipped save fails with
//! a precise [`FmeterError::CorruptEnvelope`] instead of a parse error
//! deep inside a section.
//!
//! Since v5 the header additionally carries one **codec tag** per
//! section: `"json"` payloads are self-contained JSON documents,
//! `"bin"` payloads use the length-prefixed little-endian codec of
//! [`fmeter_ir::codec`]. The heavy sections (model, corpus, signatures,
//! index) are binary — parsing hundreds of thousands of JSON float
//! literals dominated checkpoint loads — while the small, operator-
//! inspectable `state` and `sharding` sections stay JSON. The byte-level
//! wire format per section is documented in `docs/PERSISTENCE.md`.
//!
//! Loading stays lazy: section payloads are kept as **raw bytes** and
//! only parsed when (and if) their decoder runs. A migration that
//! rewrites the few-hundred-byte `state` section never pays a parse of
//! the megabytes of corpus sitting next to it; the full-corpus sections
//! are each decoded exactly once, directly into their target types, by
//! the final decode. (The version-0 shim is the exception: bare JSON
//! has no section table to slice, so adopting it parses the whole
//! save.)
//!
//! See `docs/PERSISTENCE.md` in the repository for the narrative
//! version of this contract, including a worked save→upgrade→load
//! example.

use std::io::{Read, Write};

use fmeter_ir::codec::BinCodec;
use fmeter_ir::{Corpus, InvertedIndex, TfIdfModel};
use serde::{Deserialize, Serialize, Value};

use crate::{FmeterError, RefitPolicy, Signature, SignatureDb, VacuumPolicy};

/// First bytes of every enveloped save. A file that does not start with
/// this is treated as format version 0 (pre-envelope bare JSON).
pub const MAGIC: &str = "FMETERDB";

/// The format version [`SignatureDb::save`] writes.
pub const CURRENT_FORMAT_VERSION: u32 = 6;

/// One entry of the on-disk format history.
#[derive(Debug, Clone, Copy)]
pub struct FormatVersion {
    /// The version tag (what the magic line carries).
    pub version: u32,
    /// What this layout contains / what changed relative to the
    /// previous version.
    pub summary: &'static str,
}

/// Every on-disk layout ever written, oldest first. Each entry is
/// locked in by a committed fixture under `tests/fixtures/`; changing
/// the serialized layout requires appending a new entry here, a
/// migration from the previous version, and a new fixture — the
/// `persistence_formats` integration test fails otherwise.
pub const FORMAT_VERSIONS: &[FormatVersion] = &[
    FormatVersion {
        version: 0,
        summary: "bare unversioned JSON of the whole database struct (pre-envelope \
                  releases); detected by the absence of the magic and adopted as v1",
    },
    FormatVersion {
        version: 1,
        summary: "first enveloped layout: model / corpus / signatures / index / state \
                  sections, state carrying the incremental-ingest epoch bookkeeping \
                  (live set, per-doc epochs, refit policy, mutation counter)",
    },
    FormatVersion {
        version: 2,
        summary: "state section gains the vacuum policy and the lifetime vacuum counter",
    },
    FormatVersion {
        version: 3,
        summary: "new `sharding` section carrying the SignatureService shard layout \
                  (shard count); every other section is unchanged",
    },
    FormatVersion {
        version: 4,
        summary: "the envelope header gains a `crc32` array (one checksum per \
                  section, parallel to the section table), verified on load before \
                  any payload is parsed; section payloads are byte-identical to v3",
    },
    FormatVersion {
        version: 5,
        summary: "the header gains a `codec` array tagging each section `json` or \
                  `bin`; the model / corpus / signatures / index payloads switch \
                  to the length-prefixed little-endian binary codec, the state and \
                  sharding sections stay JSON, checksums are unchanged",
    },
    FormatVersion {
        version: 6,
        summary: "the index section gains block-max metadata (block size, per-term \
                  block offsets, per-block max impacts) and the quantization \
                  extension (mode tag, per-term scale/offset, u8 impacts); every \
                  other section is byte-identical to v5",
    },
];

const SEC_MODEL: &str = "model";
const SEC_CORPUS: &str = "corpus";
const SEC_SIGNATURES: &str = "signatures";
const SEC_INDEX: &str = "index";
const SEC_STATE: &str = "state";
const SEC_SHARDING: &str = "sharding";

/// How one envelope section's payload bytes are encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionCodec {
    /// A self-contained JSON document (every section before v5; the
    /// small `state` / `sharding` sections in v5 and later).
    Json,
    /// The length-prefixed little-endian codec of [`fmeter_ir::codec`]
    /// (the heavy sections in v5 and later).
    Binary,
}

impl SectionCodec {
    /// The tag this codec carries in the header's `codec` array.
    pub fn tag(self) -> &'static str {
        match self {
            SectionCodec::Json => "json",
            SectionCodec::Binary => "bin",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "json" => Some(SectionCodec::Json),
            "bin" => Some(SectionCodec::Binary),
            _ => None,
        }
    }
}

/// The section table line that follows the magic line.
///
/// Serialization is hand-written (not derived) because `crc32` and
/// `codec` are *optional on read*: headers written before v4 / v5 do
/// not carry the fields and must keep parsing, while the vendored
/// derive treats every named field as required.
#[derive(Debug)]
struct EnvelopeHeader {
    format_version: u32,
    /// `(section name, payload length in bytes)` in payload order.
    sections: Vec<(String, usize)>,
    /// One CRC32 per section, parallel to `sections` (v4 and later).
    crc32: Option<Vec<u32>>,
    /// One codec tag per section, parallel to `sections` (v5 and later).
    codec: Option<Vec<String>>,
}

impl Serialize for EnvelopeHeader {
    fn to_value(&self) -> Value {
        let mut pairs = vec![
            ("format_version".to_string(), self.format_version.to_value()),
            ("sections".to_string(), self.sections.to_value()),
        ];
        if let Some(crcs) = &self.crc32 {
            pairs.push(("crc32".to_string(), crcs.to_value()));
        }
        if let Some(codecs) = &self.codec {
            pairs.push(("codec".to_string(), codecs.to_value()));
        }
        Value::Object(pairs)
    }
}

impl Deserialize for EnvelopeHeader {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let format_version = u32::from_value(v.get_field("format_version")?)?;
        let sections = Vec::<(String, usize)>::from_value(v.get_field("sections")?)?;
        let crc32 = match v.get_field("crc32") {
            Ok(field) => Some(Vec::<u32>::from_value(field)?),
            Err(_) => None,
        };
        let codec = match v.get_field("codec") {
            Ok(field) => Some(Vec::<String>::from_value(field)?),
            Err(_) => None,
        };
        Ok(EnvelopeHeader {
            format_version,
            sections,
            crc32,
            codec,
        })
    }
}

/// The `state` section as written by format version 1.
#[derive(Debug, Serialize, Deserialize)]
struct StateV1 {
    live: Vec<bool>,
    num_live: usize,
    epoch: u64,
    doc_epoch: Vec<u64>,
    refit_policy: RefitPolicy,
    mutations_since_refit: usize,
}

/// The `state` section as written by format version 2.
#[derive(Debug, Serialize, Deserialize)]
struct StateV2 {
    live: Vec<bool>,
    num_live: usize,
    epoch: u64,
    doc_epoch: Vec<u64>,
    refit_policy: RefitPolicy,
    mutations_since_refit: usize,
    vacuum_policy: VacuumPolicy,
    vacuums: u64,
}

/// The `sharding` section as written by format version 3: the
/// [`SignatureService`](crate::SignatureService) shard layout. A plain
/// [`SignatureDb::save`] writes `num_shards: 1` (one shard *is* the
/// flat layout), and a plain load simply ignores the section.
#[derive(Debug, Serialize, Deserialize)]
struct ShardingV3 {
    num_shards: usize,
}

/// One envelope section: the raw payload as sliced out of the file
/// (JSON text or binary bytes, per its codec tag), or a parsed value
/// tree once something rewrote it.
///
/// Sections stay [`Raw`](Section::Raw) / [`Bin`](Section::Bin) until
/// their decoder runs — a migration that touches only the small `state`
/// section leaves the full-corpus payloads unparsed, and the final
/// decode parses each of them exactly once, straight into its target
/// type.
enum Section {
    Raw(String),
    Parsed(Value),
    Bin(Vec<u8>),
}

/// An in-memory envelope: version + named sections (raw payload slices
/// until something parses them). The migration chain rewrites sections
/// in place until the version reaches [`CURRENT_FORMAT_VERSION`].
struct Envelope {
    version: u32,
    sections: Vec<(String, Section)>,
}

impl Envelope {
    fn section(&self, name: &str) -> Result<&Section, FmeterError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
            .ok_or_else(|| FmeterError::Persist(format!("envelope is missing section `{name}`")))
    }

    fn replace(&mut self, name: &str, value: Value) {
        self.replace_with(name, Section::Parsed(value));
    }

    fn replace_with(&mut self, name: &str, section: Section) {
        match self.sections.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = section,
            None => self.sections.push((name.to_string(), section)),
        }
    }
}

fn persist_err(context: &str, e: impl std::fmt::Display) -> FmeterError {
    FmeterError::Persist(format!("{context}: {e}"))
}

fn field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, FmeterError> {
    v.get_field(name)
        .map_err(|e| persist_err("legacy layout", e))
}

fn section_as<T: Deserialize>(env: &Envelope, name: &str) -> Result<T, FmeterError> {
    match env.section(name)? {
        // The lazy path: parse the payload string directly into the
        // target type, skipping the intermediate value tree entirely.
        Section::Raw(payload) => {
            serde_json::from_str(payload).map_err(|e| persist_err(&format!("section `{name}`"), e))
        }
        Section::Parsed(value) => {
            T::from_value(value).map_err(|e| persist_err(&format!("section `{name}`"), e))
        }
        Section::Bin(_) => Err(FmeterError::Persist(format!(
            "section `{name}` is binary but a JSON decoder was asked for it"
        ))),
    }
}

/// Like [`section_as`], for sections that may be carried by either
/// codec: binary payloads decode through [`BinCodec`], everything else
/// falls back to the JSON path.
fn section_bin_as<T: Deserialize + BinCodec>(env: &Envelope, name: &str) -> Result<T, FmeterError> {
    match env.section(name)? {
        Section::Bin(bytes) => fmeter_ir::codec::decode_from_slice(bytes)
            .map_err(|e| persist_err(&format!("section `{name}`"), e)),
        _ => section_as(env, name),
    }
}

// ---- writing ---------------------------------------------------------

/// Serialises `db` as on-disk format `version` (used by
/// [`SignatureDb::save`] / [`SignatureDb::save_as_version`]).
///
/// # Errors
///
/// Returns [`FmeterError::UnsupportedFormat`] for versions outside
/// [`FORMAT_VERSIONS`] and propagates I/O failures.
pub fn save<W: Write>(db: &SignatureDb, version: u32, writer: W) -> Result<(), FmeterError> {
    save_sharded(db, 1, version, writer)
}

/// Serialises `db` together with a [`SignatureService`] shard layout
/// (used by [`SignatureService::save`]). Only format version 3 carries
/// the layout; writing an older version silently drops it (that is the
/// format those releases read).
///
/// [`SignatureService`]: crate::SignatureService
/// [`SignatureService::save`]: crate::SignatureService::save
///
/// # Errors
///
/// Returns [`FmeterError::UnsupportedFormat`] for versions outside
/// [`FORMAT_VERSIONS`] and propagates I/O failures.
pub fn save_sharded<W: Write>(
    db: &SignatureDb,
    num_shards: usize,
    version: u32,
    writer: W,
) -> Result<(), FmeterError> {
    match version {
        0 => save_v0(db, writer),
        1..=CURRENT_FORMAT_VERSION => {
            write_envelope(&encode_sharded(db, num_shards, version), writer)
        }
        found => Err(FmeterError::UnsupportedFormat {
            found,
            supported: CURRENT_FORMAT_VERSION,
        }),
    }
}

/// The pre-envelope layout: one bare JSON object holding every field of
/// the database struct as the old `#[derive(Serialize)]` emitted it.
fn save_v0<W: Write>(db: &SignatureDb, writer: W) -> Result<(), FmeterError> {
    let value = Value::Object(vec![
        ("model".to_string(), db.model.to_value()),
        ("signatures".to_string(), db.signatures.to_value()),
        ("index".to_string(), db.index.to_value()),
        ("corpus".to_string(), db.corpus.to_value()),
        ("live".to_string(), db.live.to_value()),
        ("num_live".to_string(), db.num_live.to_value()),
        ("epoch".to_string(), db.epoch.to_value()),
        ("doc_epoch".to_string(), db.doc_epoch.to_value()),
        ("refit_policy".to_string(), db.refit_policy.to_value()),
        (
            "mutations_since_refit".to_string(),
            db.mutations_since_refit.to_value(),
        ),
    ]);
    serde_json::to_writer(writer, &value)?;
    Ok(())
}

fn encode_sharded(db: &SignatureDb, num_shards: usize, version: u32) -> Envelope {
    debug_assert!((1..=CURRENT_FORMAT_VERSION).contains(&version));
    let state = if version == 1 {
        StateV1 {
            live: db.live.clone(),
            num_live: db.num_live,
            epoch: db.epoch,
            doc_epoch: db.doc_epoch.clone(),
            refit_policy: db.refit_policy,
            mutations_since_refit: db.mutations_since_refit,
        }
        .to_value()
    } else {
        StateV2 {
            live: db.live.clone(),
            num_live: db.num_live,
            epoch: db.epoch,
            doc_epoch: db.doc_epoch.clone(),
            refit_policy: db.refit_policy,
            mutations_since_refit: db.mutations_since_refit,
            vacuum_policy: db.vacuum_policy,
            vacuums: db.vacuums,
        }
        .to_value()
    };
    // v5 and later carry the heavy sections in the binary codec; older
    // versions keep the JSON value trees their fixtures pin. Within the
    // binary era, v5 pins the legacy flat-postings index layout and v6
    // the block-max/quantization one.
    let mut sections = if version >= 5 {
        let index_bytes = if version >= 6 {
            fmeter_ir::codec::encode_to_vec(&db.index)
        } else {
            let mut out = Vec::new();
            db.index.encode_bin_legacy(&mut out);
            out
        };
        vec![
            (
                SEC_MODEL.to_string(),
                Section::Bin(fmeter_ir::codec::encode_to_vec(&db.model)),
            ),
            (
                SEC_CORPUS.to_string(),
                Section::Bin(fmeter_ir::codec::encode_to_vec(&db.corpus)),
            ),
            (
                SEC_SIGNATURES.to_string(),
                Section::Bin(fmeter_ir::codec::encode_to_vec(&db.signatures)),
            ),
            (SEC_INDEX.to_string(), Section::Bin(index_bytes)),
            (SEC_STATE.to_string(), Section::Parsed(state)),
        ]
    } else {
        vec![
            (SEC_MODEL.to_string(), Section::Parsed(db.model.to_value())),
            (
                SEC_CORPUS.to_string(),
                Section::Parsed(db.corpus.to_value()),
            ),
            (
                SEC_SIGNATURES.to_string(),
                Section::Parsed(db.signatures.to_value()),
            ),
            (SEC_INDEX.to_string(), Section::Parsed(db.index.to_value())),
            (SEC_STATE.to_string(), Section::Parsed(state)),
        ]
    };
    if version >= 3 {
        sections.push((
            SEC_SHARDING.to_string(),
            Section::Parsed(ShardingV3 { num_shards }.to_value()),
        ));
    }
    Envelope { version, sections }
}

fn write_envelope<W: Write>(env: &Envelope, mut writer: W) -> Result<(), FmeterError> {
    let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(env.sections.len());
    let mut codecs = Vec::with_capacity(env.sections.len());
    let mut table = Vec::with_capacity(env.sections.len());
    for (name, section) in &env.sections {
        let (bytes, codec) = match section {
            Section::Raw(payload) => (payload.clone().into_bytes(), SectionCodec::Json),
            Section::Parsed(value) => (
                serde_json::to_string(value)?.into_bytes(),
                SectionCodec::Json,
            ),
            Section::Bin(payload) => (payload.clone(), SectionCodec::Binary),
        };
        debug_assert!(
            env.version >= 5 || codec == SectionCodec::Json,
            "pre-v5 envelopes cannot carry binary sections"
        );
        table.push((name.clone(), bytes.len()));
        codecs.push(codec.tag().to_string());
        payloads.push(bytes);
    }
    // v4 headers bind every payload to a checksum, v5 headers tag every
    // payload with its codec; older versions keep the exact header
    // shape their fixtures pin.
    let crc32 = (env.version >= 4).then(|| payloads.iter().map(|p| crate::wal::crc32(p)).collect());
    let header = EnvelopeHeader {
        format_version: env.version,
        sections: table,
        crc32,
        codec: (env.version >= 5).then_some(codecs),
    };
    writer.write_all(format!("{MAGIC} {}\n", env.version).as_bytes())?;
    writer.write_all(serde_json::to_string(&header)?.as_bytes())?;
    writer.write_all(b"\n")?;
    for payload in &payloads {
        writer.write_all(payload)?;
    }
    Ok(())
}

// ---- reading ---------------------------------------------------------

/// Peeks at serialized bytes and reports the on-disk format version:
/// `Some(v)` for an enveloped save, `None` when the bytes carry no
/// magic (i.e. a candidate version-0 bare-JSON save — or not a
/// database at all, which only a full [`load`] can tell).
pub fn detect_format_version(bytes: &[u8]) -> Option<u32> {
    let text = std::str::from_utf8(bytes.get(..64.min(bytes.len()))?).ok()?;
    let rest = text.strip_prefix(MAGIC)?.strip_prefix(' ')?;
    rest.split('\n').next()?.trim().parse().ok()
}

/// One section as sliced out of a serialized envelope by
/// [`split_envelope`]: its name, codec tag, and raw payload bytes.
#[derive(Debug, Clone)]
pub struct RawSection {
    /// Section name from the table.
    pub name: String,
    /// How [`payload`](Self::payload) is encoded. Headers before v5
    /// carry no codec tags; their sections are implicitly JSON.
    pub codec: SectionCodec,
    /// The payload bytes, exactly as stored (checksum-verified).
    pub payload: Vec<u8>,
}

/// Splits a serialized envelope into its format version and named
/// section payloads, without deserialising any of them — the
/// introspection hook the layout-guard tests (and external tooling)
/// use.
///
/// # Errors
///
/// Returns [`FmeterError::Persist`] when the bytes are not a
/// well-formed envelope (version-0 saves have no envelope to split) and
/// [`FmeterError::CorruptEnvelope`] when a section is shorter than the
/// table declares (truncated / mid-write file) or fails its v4
/// checksum.
pub fn split_envelope(bytes: &[u8]) -> Result<(u32, Vec<RawSection>), FmeterError> {
    let (version, header, body) = parse_envelope_frame(bytes)?;
    // `codec` is optional only for pre-v5 headers (all-JSON layouts); a
    // v5+ header without it cannot say how to parse its payloads.
    let codecs = match &header.codec {
        None if version >= 5 => {
            return Err(FmeterError::Persist(format!(
                "format version {version} header carries no per-section codec tags"
            )));
        }
        None => vec![SectionCodec::Json; header.sections.len()],
        Some(tags) => {
            if tags.len() != header.sections.len() {
                return Err(FmeterError::Persist(format!(
                    "header carries {} codec tags for {} sections",
                    tags.len(),
                    header.sections.len()
                )));
            }
            tags.iter()
                .map(|t| {
                    SectionCodec::from_tag(t).ok_or_else(|| {
                        FmeterError::Persist(format!("unknown section codec tag `{t}`"))
                    })
                })
                .collect::<Result<Vec<_>, _>>()?
        }
    };
    let mut offset = 0usize;
    let mut sections = Vec::with_capacity(header.sections.len());
    for ((name, len), codec) in header.sections.into_iter().zip(codecs) {
        let payload = body.get(offset..offset + len).ok_or_else(|| {
            // A section that overruns the file is the signature of a
            // save truncated mid-write: report exactly which section
            // came up short and by how much.
            FmeterError::CorruptEnvelope {
                section: name.clone(),
                expected: len as u64,
                got: body.len().saturating_sub(offset) as u64,
            }
        })?;
        sections.push(RawSection {
            name,
            codec,
            payload: payload.to_vec(),
        });
        offset += len;
    }
    if offset != body.len() {
        return Err(FmeterError::Persist(format!(
            "{} trailing bytes after the last section",
            body.len() - offset
        )));
    }
    // `crc32` is optional only for pre-v4 headers; a v4+ header without
    // it has lost data (or was tampered with) — loading it would mean
    // silently skipping checksum verification, so reject it instead.
    if header.crc32.is_none() && version >= 4 {
        return Err(FmeterError::Persist(format!(
            "format version {version} header carries no per-section checksums"
        )));
    }
    if let Some(crcs) = &header.crc32 {
        if crcs.len() != sections.len() {
            return Err(FmeterError::Persist(format!(
                "header carries {} checksums for {} sections",
                crcs.len(),
                sections.len()
            )));
        }
        for (section, &stored) in sections.iter().zip(crcs) {
            let computed = crate::wal::crc32(&section.payload);
            if computed != stored {
                return Err(FmeterError::CorruptEnvelope {
                    section: section.name.clone(),
                    expected: u64::from(stored),
                    got: u64::from(computed),
                });
            }
        }
    }
    Ok((version, sections))
}

/// Parses the magic and header lines, returning `(version, header,
/// section payload bytes)`. The two header lines are ASCII by
/// construction; the body may be arbitrary bytes (binary sections).
fn parse_envelope_frame(bytes: &[u8]) -> Result<(u32, EnvelopeHeader, &[u8]), FmeterError> {
    let rest = bytes
        .strip_prefix(MAGIC.as_bytes())
        .and_then(|t| t.strip_prefix(b" "))
        .ok_or_else(|| FmeterError::Persist("missing FMETERDB magic".to_string()))?;
    let nl = rest
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| FmeterError::Persist("truncated magic line".to_string()))?;
    let version: u32 = std::str::from_utf8(&rest[..nl])
        .map_err(|e| persist_err("unparsable format version", e))?
        .trim()
        .parse()
        .map_err(|e| persist_err("unparsable format version", e))?;
    let rest = &rest[nl + 1..];
    let nl = rest
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| FmeterError::Persist("truncated section table".to_string()))?;
    let header_line =
        std::str::from_utf8(&rest[..nl]).map_err(|e| persist_err("section table", e))?;
    let header: EnvelopeHeader = serde_json::from_str(header_line)?;
    if header.format_version != version {
        return Err(FmeterError::Persist(format!(
            "magic line says version {version} but the section table says {}",
            header.format_version
        )));
    }
    Ok((version, header, &rest[nl + 1..]))
}

fn read_envelope(bytes: &[u8]) -> Result<Envelope, FmeterError> {
    let (version, sections) = split_envelope(bytes)?;
    if version == 0 || version > CURRENT_FORMAT_VERSION {
        return Err(FmeterError::UnsupportedFormat {
            found: version,
            supported: CURRENT_FORMAT_VERSION,
        });
    }
    // Keep every payload raw: nothing is parsed until a migration or
    // the final decode actually needs the section.
    let sections = sections
        .into_iter()
        .map(|s| {
            let section = match s.codec {
                SectionCodec::Json => Section::Raw(String::from_utf8(s.payload).map_err(|e| {
                    persist_err(&format!("section `{}` is not UTF-8 JSON", s.name), e)
                })?),
                SectionCodec::Binary => Section::Bin(s.payload),
            };
            Ok((s.name, section))
        })
        .collect::<Result<Vec<_>, FmeterError>>()?;
    Ok(Envelope { version, sections })
}

/// Adopts a pre-envelope (format version 0) bare-JSON save: the old
/// all-in-one object is split into the v1 sections, after which the
/// ordinary migration chain takes over.
fn adopt_legacy(text: &str) -> Result<Envelope, FmeterError> {
    let value: Value = serde_json::from_str(text)?;
    let state = Value::Object(vec![
        ("live".to_string(), field(&value, "live")?.clone()),
        ("num_live".to_string(), field(&value, "num_live")?.clone()),
        ("epoch".to_string(), field(&value, "epoch")?.clone()),
        ("doc_epoch".to_string(), field(&value, "doc_epoch")?.clone()),
        (
            "refit_policy".to_string(),
            field(&value, "refit_policy")?.clone(),
        ),
        (
            "mutations_since_refit".to_string(),
            field(&value, "mutations_since_refit")?.clone(),
        ),
    ]);
    Ok(Envelope {
        version: 1,
        sections: vec![
            (
                SEC_MODEL.to_string(),
                Section::Parsed(field(&value, "model")?.clone()),
            ),
            (
                SEC_CORPUS.to_string(),
                Section::Parsed(field(&value, "corpus")?.clone()),
            ),
            (
                SEC_SIGNATURES.to_string(),
                Section::Parsed(field(&value, "signatures")?.clone()),
            ),
            (
                SEC_INDEX.to_string(),
                Section::Parsed(field(&value, "index")?.clone()),
            ),
            (SEC_STATE.to_string(), Section::Parsed(state)),
        ],
    })
}

// ---- migrations ------------------------------------------------------

/// One step of the migration chain: rewrites an envelope from the keyed
/// version to the next one.
type Migration = fn(&mut Envelope) -> Result<(), FmeterError>;

/// `(from_version, migration)` — every supported version below
/// [`CURRENT_FORMAT_VERSION`] must have an entry; [`load`] applies them
/// in sequence.
const MIGRATIONS: &[(u32, Migration)] = &[
    (1, migrate_v1_to_v2),
    (2, migrate_v2_to_v3),
    (3, migrate_v3_to_v4),
    (4, migrate_v4_to_v5),
    (5, migrate_v5_to_v6),
];

/// v1 → v2: the state section gains the vacuum policy (default:
/// [`VacuumPolicy::Never`]) and the lifetime vacuum counter (0 — a v1
/// database never vacuumed).
fn migrate_v1_to_v2(env: &mut Envelope) -> Result<(), FmeterError> {
    let v1: StateV1 = section_as(env, SEC_STATE)?;
    let v2 = StateV2 {
        live: v1.live,
        num_live: v1.num_live,
        epoch: v1.epoch,
        doc_epoch: v1.doc_epoch,
        refit_policy: v1.refit_policy,
        mutations_since_refit: v1.mutations_since_refit,
        vacuum_policy: VacuumPolicy::Never,
        vacuums: 0,
    };
    env.replace(SEC_STATE, v2.to_value());
    Ok(())
}

/// v2 → v3: a `sharding` section appears, defaulting to one shard (the
/// flat layout every pre-service save implicitly was). Note this
/// migration parses nothing: it only appends a new section, leaving the
/// corpus-sized payloads as the raw strings the reader sliced.
fn migrate_v2_to_v3(env: &mut Envelope) -> Result<(), FmeterError> {
    env.replace(SEC_SHARDING, ShardingV3 { num_shards: 1 }.to_value());
    Ok(())
}

/// v3 → v4: the envelope *header* gains per-section checksums. Checksums
/// are a property of the serialized frame — computed by the writer,
/// verified by the reader before any parsing — so the in-memory envelope
/// of a v3 file needs no rewriting at all: its sections were already
/// length-validated when sliced, and the next save will emit checksums.
fn migrate_v3_to_v4(_env: &mut Envelope) -> Result<(), FmeterError> {
    Ok(())
}

/// v4 → v5: the heavy sections switch from JSON to the length-prefixed
/// little-endian binary codec. This is the one migration that *does*
/// parse the corpus-sized payloads — it re-encodes them — which is
/// exactly the work a v4 load was already paying; every subsequent save
/// and load runs on the binary path.
fn migrate_v4_to_v5(env: &mut Envelope) -> Result<(), FmeterError> {
    let model: TfIdfModel = section_as(env, SEC_MODEL)?;
    env.replace_with(
        SEC_MODEL,
        Section::Bin(fmeter_ir::codec::encode_to_vec(&model)),
    );
    let corpus: Corpus = section_as(env, SEC_CORPUS)?;
    env.replace_with(
        SEC_CORPUS,
        Section::Bin(fmeter_ir::codec::encode_to_vec(&corpus)),
    );
    let signatures: Vec<Signature> = section_as(env, SEC_SIGNATURES)?;
    env.replace_with(
        SEC_SIGNATURES,
        Section::Bin(fmeter_ir::codec::encode_to_vec(&signatures)),
    );
    let index: InvertedIndex = section_as(env, SEC_INDEX)?;
    let mut index_bytes = Vec::new();
    index.encode_bin_legacy(&mut index_bytes);
    env.replace_with(SEC_INDEX, Section::Bin(index_bytes));
    Ok(())
}

/// v5 → v6: the index section gains block-max metadata and the
/// quantization extension. Only the index payload is rewritten — it is
/// decoded from the legacy flat layout (which rebuilds the block
/// metadata from the postings) and re-encoded in the v6 layout; every
/// other section's bytes pass through untouched.
fn migrate_v5_to_v6(env: &mut Envelope) -> Result<(), FmeterError> {
    let bytes = match env.section(SEC_INDEX)? {
        Section::Bin(bytes) => bytes.clone(),
        _ => {
            return Err(FmeterError::Persist(
                "v5 index section is not binary".to_string(),
            ))
        }
    };
    let mut r = fmeter_ir::codec::Reader::new(&bytes);
    let index = InvertedIndex::decode_bin_legacy(&mut r)
        .and_then(|idx| r.finish().map(|()| idx))
        .map_err(|e| FmeterError::Persist(format!("migrating index section to v6: {e}")))?;
    env.replace_with(
        SEC_INDEX,
        Section::Bin(fmeter_ir::codec::encode_to_vec(&index)),
    );
    Ok(())
}

fn migrate_to_current(env: &mut Envelope) -> Result<(), FmeterError> {
    while env.version < CURRENT_FORMAT_VERSION {
        let from = env.version;
        let (_, migration) = MIGRATIONS.iter().find(|(v, _)| *v == from).ok_or_else(|| {
            FmeterError::Persist(format!(
                "no migration registered from format version {from}"
            ))
        })?;
        migration(env)?;
        env.version += 1;
    }
    Ok(())
}

// ---- decoding --------------------------------------------------------

/// Reads a database from any supported on-disk format (used by
/// [`SignatureDb::load`]): envelope saves are version-checked and
/// migrated forward; magic-less bytes go through the version-0
/// bare-JSON shim first.
///
/// # Errors
///
/// Returns [`FmeterError::UnsupportedFormat`] for saves from newer
/// releases and [`FmeterError::Persist`] for malformed or inconsistent
/// payloads.
pub fn load<R: Read>(reader: R) -> Result<SignatureDb, FmeterError> {
    Ok(load_sharded(reader)?.0)
}

/// Like [`load`], additionally returning the persisted
/// [`SignatureService`](crate::SignatureService) shard layout. Saves
/// older than format v3 (which could not carry a layout) come back as
/// one shard.
///
/// # Errors
///
/// Returns [`FmeterError::UnsupportedFormat`] for saves from newer
/// releases and [`FmeterError::Persist`] for malformed or inconsistent
/// payloads.
pub fn load_sharded<R: Read>(mut reader: R) -> Result<(SignatureDb, usize), FmeterError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    let mut env = if bytes.starts_with(MAGIC.as_bytes()) {
        read_envelope(&bytes)?
    } else {
        let text = std::str::from_utf8(&bytes)
            .map_err(|e| persist_err("pre-envelope save is not UTF-8 JSON", e))?;
        adopt_legacy(text)?
    };
    migrate_to_current(&mut env)?;
    let sharding: ShardingV3 = section_as(&env, SEC_SHARDING)?;
    if sharding.num_shards == 0 {
        return Err(FmeterError::Persist(
            "sharding section declares zero shards".to_string(),
        ));
    }
    Ok((decode(&env)?, sharding.num_shards))
}

/// Rebuilds the database from a current-version envelope, cross-checking
/// the sections against each other so a corrupted (or hand-edited) file
/// fails loudly instead of producing a database that panics later.
fn decode(env: &Envelope) -> Result<SignatureDb, FmeterError> {
    debug_assert_eq!(env.version, CURRENT_FORMAT_VERSION);
    let model: TfIdfModel = section_bin_as(env, SEC_MODEL)?;
    let corpus: Corpus = section_bin_as(env, SEC_CORPUS)?;
    let signatures: Vec<Signature> = section_bin_as(env, SEC_SIGNATURES)?;
    let index: InvertedIndex = section_bin_as(env, SEC_INDEX)?;
    let state: StateV2 = section_as(env, SEC_STATE)?;
    let slots = signatures.len();
    let consistent = corpus.len() == slots
        && state.live.len() == slots
        && state.doc_epoch.len() == slots
        && index.len() == slots
        && state.num_live == state.live.iter().filter(|&&l| l).count()
        && model.dim() == corpus.dim()
        && model.dim() == index.dim();
    if !consistent {
        return Err(FmeterError::Persist(format!(
            "inconsistent sections: {slots} signature slots vs {} corpus docs, \
             {} live flags, {} doc epochs, {} indexed docs (num_live {})",
            corpus.len(),
            state.live.len(),
            state.doc_epoch.len(),
            index.len(),
            state.num_live,
        )));
    }
    // The index carries its own tombstones; they must agree slot-by-slot
    // with the state section, or search would keep serving docs the
    // database says are dead (and vice versa).
    if let Some(d) = (0..slots).find(|&d| index.is_live(d) != state.live[d]) {
        return Err(FmeterError::Persist(format!(
            "inconsistent sections: doc {d} is {} in the state section but {} in the index",
            if state.live[d] { "live" } else { "dead" },
            if index.is_live(d) { "live" } else { "dead" },
        )));
    }
    Ok(SignatureDb {
        model,
        signatures,
        index,
        corpus,
        live: state.live,
        num_live: state.num_live,
        epoch: state.epoch,
        doc_epoch: state.doc_epoch,
        refit_policy: state.refit_policy,
        mutations_since_refit: state.mutations_since_refit,
        vacuum_policy: state.vacuum_policy,
        vacuums: state.vacuums,
        last_vacuum: None,
        // Warm-start clustering state is process-local, like the vacuum
        // remap above: a loaded database reclusters cold once.
        cluster_cache: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RawSignature;
    use fmeter_ir::TermCounts;
    use fmeter_kernel_sim::Nanos;

    /// A small two-class database with tombstones and a bumped epoch —
    /// non-trivial state in every section.
    fn sample_db() -> SignatureDb {
        let mut raw = Vec::new();
        for i in 0..5u64 {
            raw.push(RawSignature {
                counts: vec![40 + i, 30, 20, 10, 0, 0, 1, 0],
                started_at: Nanos(i * 100),
                ended_at: Nanos((i + 1) * 100),
                label: Some("a".into()),
            });
            raw.push(RawSignature {
                counts: vec![0, 1, 0, 0, 50, 40 + i, 30, 20],
                started_at: Nanos(i * 100),
                ended_at: Nanos((i + 1) * 100),
                label: Some("b".into()),
            });
        }
        let mut db = SignatureDb::build(&raw).unwrap();
        db.set_refit_policy(RefitPolicy::EveryN(1000));
        db.remove(3).unwrap();
        db.refit();
        db.insert(&RawSignature {
            counts: vec![44, 31, 19, 12, 0, 0, 1, 0],
            started_at: Nanos(2000),
            ended_at: Nanos(2100),
            label: Some("a".into()),
        })
        .unwrap();
        db
    }

    /// Byte-level `replacen(.., 1)`: the envelope body is not UTF-8 once
    /// sections are binary, so tests patch the ASCII header bytes of a
    /// save directly instead of round-tripping through `String`.
    fn replace_once(bytes: &[u8], needle: &[u8], replacement: &[u8]) -> Vec<u8> {
        let pos = bytes
            .windows(needle.len())
            .position(|w| w == needle)
            .expect("needle present in envelope bytes");
        let mut out = Vec::with_capacity(bytes.len() - needle.len() + replacement.len());
        out.extend_from_slice(&bytes[..pos]);
        out.extend_from_slice(replacement);
        out.extend_from_slice(&bytes[pos + needle.len()..]);
        out
    }

    fn assert_equivalent(a: &SignatureDb, b: &SignatureDb) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.num_slots(), b.num_slots());
        assert_eq!(a.epoch(), b.epoch());
        assert_eq!(a.mutations_since_refit(), b.mutations_since_refit());
        assert_eq!(a.refit_policy(), b.refit_policy());
        for d in 0..a.num_slots() {
            assert_eq!(a.is_live(d), b.is_live(d));
            assert_eq!(a.doc_epoch(d), b.doc_epoch(d));
            assert_eq!(a.signatures()[d].vector, b.signatures()[d].vector);
        }
        let q = TermCounts::from_dense(&[42, 30, 20, 11, 0, 0, 1, 0]);
        let ha = a.search(&q, 4).unwrap();
        let hb = b.search(&q, 4).unwrap();
        assert_eq!(ha.len(), hb.len());
        for ((s1, d1), (s2, d2)) in ha.iter().zip(&hb) {
            assert_eq!(s1.label, s2.label);
            assert_eq!(d1, d2);
        }
        assert_eq!(a.classify(&q, 3).unwrap(), b.classify(&q, 3).unwrap());
    }

    #[test]
    fn current_version_round_trips() {
        let mut db = sample_db();
        db.set_vacuum_policy(VacuumPolicy::DeadFraction {
            max_dead_fraction: 0.5,
            min_dead: 4,
        });
        let mut bytes = Vec::new();
        db.save(&mut bytes).unwrap();
        assert_eq!(
            detect_format_version(&bytes),
            Some(CURRENT_FORMAT_VERSION),
            "save must write the current envelope"
        );
        let restored = SignatureDb::load(&bytes[..]).unwrap();
        assert_equivalent(&db, &restored);
        assert_eq!(restored.vacuum_policy(), db.vacuum_policy());
        assert_eq!(restored.vacuums(), db.vacuums());
        assert!(restored.last_vacuum().is_none(), "remaps are not persisted");
    }

    #[test]
    fn every_historical_version_loads_via_migration() {
        let db = sample_db();
        for spec in FORMAT_VERSIONS {
            let mut bytes = Vec::new();
            db.save_as_version(spec.version, &mut bytes).unwrap();
            if spec.version == 0 {
                assert_eq!(detect_format_version(&bytes), None, "v0 has no magic");
            } else {
                assert_eq!(detect_format_version(&bytes), Some(spec.version));
            }
            let restored = SignatureDb::load(&bytes[..])
                .unwrap_or_else(|e| panic!("v{} failed to load: {e}", spec.version));
            assert_equivalent(&db, &restored);
            // Fields the older layouts cannot carry come back as defaults.
            assert_eq!(restored.vacuum_policy(), VacuumPolicy::Never);
            assert_eq!(restored.vacuums(), 0);
        }
    }

    #[test]
    fn future_versions_are_rejected() {
        let db = sample_db();
        let mut bytes = Vec::new();
        db.save(&mut bytes).unwrap();
        let future = replace_once(
            &bytes,
            format!("{MAGIC} {CURRENT_FORMAT_VERSION}\n").as_bytes(),
            format!("{MAGIC} 99\n").as_bytes(),
        );
        let future = replace_once(
            &future,
            format!("\"format_version\":{CURRENT_FORMAT_VERSION}").as_bytes(),
            b"\"format_version\":99",
        );
        match SignatureDb::load(&future[..]) {
            Err(FmeterError::UnsupportedFormat { found, supported }) => {
                assert_eq!(found, 99);
                assert_eq!(supported, CURRENT_FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedFormat, got {other:?}"),
        }
        // Writing an unknown version is rejected the same way.
        assert!(matches!(
            db.save_as_version(99, &mut Vec::new()),
            Err(FmeterError::UnsupportedFormat { found: 99, .. })
        ));
    }

    #[test]
    fn corrupt_envelopes_error_cleanly() {
        let db = sample_db();
        let mut bytes = Vec::new();
        db.save(&mut bytes).unwrap();
        // Truncated mid-section.
        assert!(SignatureDb::load(&bytes[..bytes.len() / 2]).is_err());
        // Magic line and table disagree on the version.
        let skewed = replace_once(
            &bytes,
            format!("{MAGIC} {CURRENT_FORMAT_VERSION}\n").as_bytes(),
            format!("{MAGIC} 1\n").as_bytes(),
        );
        assert!(SignatureDb::load(&skewed[..]).is_err());
        // Garbage, empty, and non-database JSON all fail like before.
        assert!(SignatureDb::load(&b"not json"[..]).is_err());
        assert!(SignatureDb::load(&b""[..]).is_err());
        assert!(SignatureDb::load(&b"{\"model\": 3}"[..]).is_err());
    }

    #[test]
    fn truncation_at_every_section_boundary_names_the_section() {
        // Cut a current-version save at the start and the middle of
        // every section: the load must fail with CorruptEnvelope naming
        // exactly the first section that came up short.
        let db = sample_db();
        let mut bytes = Vec::new();
        db.save(&mut bytes).unwrap();
        let (_, sections) = split_envelope(&bytes).unwrap();
        let body_len: usize = sections.iter().map(|s| s.payload.len()).sum();
        let mut offset = bytes.len() - body_len;
        for section in &sections {
            let name = &section.name;
            for cut in [offset, offset + section.payload.len() / 2] {
                match SignatureDb::load(&bytes[..cut]) {
                    Err(FmeterError::CorruptEnvelope {
                        section,
                        expected,
                        got,
                    }) => {
                        assert_eq!(&section, name, "cut at byte {cut}");
                        assert!(got < expected, "cut at byte {cut}: {got} vs {expected}");
                    }
                    other => {
                        panic!("cut at {cut}: expected CorruptEnvelope `{name}`, got {other:?}")
                    }
                }
            }
            offset += section.payload.len();
        }
    }

    #[test]
    fn bit_flips_in_section_payloads_fail_the_checksum() {
        let db = sample_db();
        let mut bytes = Vec::new();
        db.save(&mut bytes).unwrap();
        let (_, sections) = split_envelope(&bytes).unwrap();
        let body_len: usize = sections.iter().map(|s| s.payload.len()).sum();
        let mut offset = bytes.len() - body_len;
        for section in &sections {
            let name = &section.name;
            let mut corrupt = bytes.clone();
            corrupt[offset + section.payload.len() / 2] ^= 0x01;
            match SignatureDb::load(&corrupt[..]) {
                Err(FmeterError::CorruptEnvelope { section, .. }) => {
                    assert_eq!(&section, name, "flip inside `{name}` blamed `{section}`")
                }
                other => panic!("flip inside `{name}`: expected CorruptEnvelope, got {other:?}"),
            }
            offset += section.payload.len();
        }
    }

    #[test]
    fn v4_header_without_checksums_is_rejected() {
        // A v4+ header that lost its `crc32` field must not load with
        // verification silently disabled — only genuinely pre-v4
        // headers may omit checksums. (A v4 save is all-JSON, so string
        // surgery on the whole file is still safe here.)
        let db = sample_db();
        let mut bytes = Vec::new();
        db.save_as_version(4, &mut bytes).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let at = text.find(",\"crc32\":").expect("v4 header carries crc32");
        let end = at + text[at..].find(']').expect("crc32 array closes") + 1;
        let stripped = format!("{}{}", &text[..at], &text[end..]);
        match SignatureDb::load(stripped.as_bytes()) {
            Err(FmeterError::Persist(msg)) => {
                assert!(msg.contains("checksums"), "unexpected message: {msg}")
            }
            other => panic!("expected Persist error, got {other:?}"),
        }
    }

    #[test]
    fn v5_header_without_codec_tags_is_rejected() {
        // Same contract for the v5 `codec` array: a header that lost it
        // cannot say how to parse its payloads, so it must be rejected
        // rather than guessed at.
        let db = sample_db();
        let mut bytes = Vec::new();
        db.save(&mut bytes).unwrap();
        let header_end = bytes
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == b'\n')
            .nth(1)
            .map(|(i, _)| i)
            .expect("envelope has two header lines");
        let header = std::str::from_utf8(&bytes[..header_end]).expect("header is ASCII");
        let at = header.find(",\"codec\":").expect("v5 header carries codec");
        let end = at + header[at..].find(']').expect("codec array closes") + 1;
        let mut stripped = Vec::new();
        stripped.extend_from_slice(&bytes[..at]);
        stripped.extend_from_slice(&bytes[end..]);
        match SignatureDb::load(&stripped[..]) {
            Err(FmeterError::Persist(msg)) => {
                assert!(msg.contains("codec"), "unexpected message: {msg}")
            }
            other => panic!("expected Persist error, got {other:?}"),
        }
        // An unknown codec tag is rejected too, not treated as JSON.
        let unknown = replace_once(&bytes, b"\"bin\"", b"\"zst\"");
        match SignatureDb::load(&unknown[..]) {
            Err(FmeterError::Persist(msg)) => {
                assert!(msg.contains("zst"), "unexpected message: {msg}")
            }
            other => panic!("expected Persist error, got {other:?}"),
        }
    }

    #[test]
    fn mismatched_state_and_index_tombstones_are_rejected() {
        // A self-consistent state section (flags and num_live agree) that
        // disagrees with the index's own tombstones must not load: the
        // database would search docs it reports as dead.
        let db = sample_db();
        let mut env = encode_sharded(&db, 1, CURRENT_FORMAT_VERSION);
        let mut state: StateV2 = section_as(&env, SEC_STATE).unwrap();
        let victim = state.live.iter().position(|&l| l).unwrap();
        state.live[victim] = false;
        state.num_live -= 1;
        env.replace(SEC_STATE, state.to_value());
        let mut bytes = Vec::new();
        write_envelope(&env, &mut bytes).unwrap();
        match SignatureDb::load(&bytes[..]) {
            Err(FmeterError::Persist(msg)) => {
                assert!(msg.contains("state section"), "unexpected message: {msg}")
            }
            other => panic!("expected a Persist error, got {other:?}"),
        }
    }

    #[test]
    fn split_envelope_exposes_the_section_table() {
        let db = sample_db();
        let mut bytes = Vec::new();
        db.save(&mut bytes).unwrap();
        let (version, sections) = split_envelope(&bytes).unwrap();
        assert_eq!(version, CURRENT_FORMAT_VERSION);
        let names: Vec<&str> = sections.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                SEC_MODEL,
                SEC_CORPUS,
                SEC_SIGNATURES,
                SEC_INDEX,
                SEC_STATE,
                SEC_SHARDING
            ]
        );
        // The heavy sections are binary, the small ones JSON — and every
        // payload is self-contained under its tagged codec.
        for section in &sections {
            let expected = match section.name.as_str() {
                SEC_STATE | SEC_SHARDING => SectionCodec::Json,
                _ => SectionCodec::Binary,
            };
            assert_eq!(
                section.codec, expected,
                "section `{}` carries the wrong codec tag",
                section.name
            );
            match section.codec {
                SectionCodec::Json => {
                    let text = std::str::from_utf8(&section.payload)
                        .unwrap_or_else(|e| panic!("section `{}` not UTF-8: {e}", section.name));
                    serde_json::from_str::<Value>(text).unwrap_or_else(|e| {
                        panic!("section `{}` is not valid JSON: {e}", section.name)
                    });
                }
                SectionCodec::Binary => {
                    let mut r = fmeter_ir::codec::Reader::new(&section.payload);
                    match section.name.as_str() {
                        SEC_MODEL => drop(TfIdfModel::decode_bin(&mut r).unwrap()),
                        SEC_CORPUS => drop(Corpus::decode_bin(&mut r).unwrap()),
                        SEC_SIGNATURES => drop(Vec::<Signature>::decode_bin(&mut r).unwrap()),
                        SEC_INDEX => drop(InvertedIndex::decode_bin(&mut r).unwrap()),
                        other => panic!("unexpected binary section `{other}`"),
                    }
                    r.finish()
                        .unwrap_or_else(|e| panic!("section `{}`: {e}", section.name));
                }
            }
        }
    }

    #[test]
    fn sharded_saves_round_trip_the_layout() {
        let db = sample_db();
        let mut bytes = Vec::new();
        save_sharded(&db, 4, CURRENT_FORMAT_VERSION, &mut bytes).unwrap();
        let (restored, num_shards) = load_sharded(&bytes[..]).unwrap();
        assert_eq!(num_shards, 4);
        assert_equivalent(&db, &restored);
        // A plain load reads the same bytes and just drops the layout.
        let plain = SignatureDb::load(&bytes[..]).unwrap();
        assert_equivalent(&db, &plain);
        // Saves from releases that predate the layout come back as one
        // shard via the v2→v3 migration.
        let mut old = Vec::new();
        db.save_as_version(2, &mut old).unwrap();
        let (_, migrated_shards) = load_sharded(&old[..]).unwrap();
        assert_eq!(migrated_shards, 1);
        // A zero-shard layout is rejected, not served.
        let mut env = encode_sharded(&db, 4, CURRENT_FORMAT_VERSION);
        env.replace(SEC_SHARDING, ShardingV3 { num_shards: 0 }.to_value());
        let mut bad = Vec::new();
        write_envelope(&env, &mut bad).unwrap();
        assert!(load_sharded(&bad[..]).is_err());
    }

    #[test]
    fn migrations_leave_untouched_sections_raw() {
        // The v1→v2→v3→v4 chain only rewrites `state` and appends
        // `sharding`; every corpus-sized section must still be a Raw
        // slice when those steps finish (the lazy-parse contract). The
        // v4→v5 step is the designed exception: it re-encodes the heavy
        // sections into the binary codec, after which they are Bin.
        let db = sample_db();
        let mut bytes = Vec::new();
        db.save_as_version(1, &mut bytes).unwrap();
        let mut env = read_envelope(&bytes).unwrap();
        while env.version < 4 {
            let from = env.version;
            let (_, migration) = MIGRATIONS.iter().find(|(v, _)| *v == from).unwrap();
            migration(&mut env).unwrap();
            env.version += 1;
        }
        for name in [SEC_MODEL, SEC_CORPUS, SEC_SIGNATURES, SEC_INDEX] {
            assert!(
                matches!(env.section(name).unwrap(), Section::Raw(_)),
                "section `{name}` was parsed by a migration that does not touch it"
            );
        }
        migrate_to_current(&mut env).unwrap();
        assert_eq!(env.version, CURRENT_FORMAT_VERSION);
        for name in [SEC_MODEL, SEC_CORPUS, SEC_SIGNATURES, SEC_INDEX] {
            assert!(
                matches!(env.section(name).unwrap(), Section::Bin(_)),
                "section `{name}` was not re-encoded by the v4→v5 migration"
            );
        }
        assert!(matches!(
            env.section(SEC_STATE).unwrap(),
            Section::Parsed(_)
        ));
        assert!(decode(&env).is_ok());
    }

    #[test]
    fn version_table_and_migrations_stay_in_sync() {
        // Every version in the table except the newest must either be
        // the legacy shim (0) or have a registered migration.
        for spec in FORMAT_VERSIONS {
            if spec.version == 0 || spec.version == CURRENT_FORMAT_VERSION {
                continue;
            }
            assert!(
                MIGRATIONS.iter().any(|(v, _)| *v == spec.version),
                "format version {} has no migration to {}",
                spec.version,
                spec.version + 1
            );
        }
        assert_eq!(
            FORMAT_VERSIONS.last().map(|s| s.version),
            Some(CURRENT_FORMAT_VERSION),
            "the version table must end at the current version"
        );
    }
}
