//! The pure user-space view: parsing the kernel's debugfs exports.
//!
//! The paper's logging daemon is an ordinary process: it reads Fmeter's
//! counter file (addresses → counts) and the symbol map, and never
//! touches kernel memory. [`DebugfsReader`] reproduces that path — unlike
//! [`SignatureLogger`](crate::SignatureLogger), which snapshots the
//! tracer in-process, everything here goes through the rendered debugfs
//! strings, exercising the full export/parse round trip.

use std::collections::HashMap;

use fmeter_kernel_sim::{Kernel, Nanos};
use fmeter_trace::CounterSnapshot;

use crate::FmeterError;

/// A user-space symbol map, as parsed from the `kallsyms` debugfs file.
#[derive(Debug, Clone, Default)]
pub struct SymbolMap {
    /// (address, name) in address order.
    entries: Vec<(u64, String)>,
    by_address: HashMap<u64, usize>,
}

impl SymbolMap {
    /// Parses `/.../kallsyms`-style content (`"<hex addr> t <name>"`).
    ///
    /// # Errors
    ///
    /// Returns [`FmeterError::Persist`] on malformed lines.
    pub fn parse(content: &str) -> Result<Self, FmeterError> {
        let mut entries = Vec::new();
        let mut by_address = HashMap::new();
        for (lineno, line) in content.lines().enumerate() {
            let mut parts = line.split_whitespace();
            let (Some(addr), Some(_kind), Some(name)) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(FmeterError::Persist(format!(
                    "kallsyms line {lineno} malformed: `{line}`"
                )));
            };
            let addr = u64::from_str_radix(addr, 16)
                .map_err(|e| FmeterError::Persist(format!("line {lineno}: {e}")))?;
            by_address.insert(addr, entries.len());
            entries.push((addr, name.to_string()));
        }
        Ok(SymbolMap {
            entries,
            by_address,
        })
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resolves an address to a symbol name.
    pub fn name_of(&self, address: u64) -> Option<&str> {
        self.by_address
            .get(&address)
            .map(|&i| self.entries[i].1.as_str())
    }

    /// The dense index of an address (the daemon's term id).
    pub fn index_of(&self, address: u64) -> Option<usize> {
        self.by_address.get(&address).copied()
    }
}

/// Reads Fmeter state through debugfs only — the daemon's kernel
/// interface.
#[derive(Debug, Clone, Default)]
pub struct DebugfsReader {
    symbols: SymbolMap,
}

impl DebugfsReader {
    /// Attaches to a kernel by reading its `kallsyms` export.
    ///
    /// # Errors
    ///
    /// Returns [`FmeterError::Kernel`] when the file is missing and
    /// [`FmeterError::Persist`] on parse failures.
    pub fn attach(kernel: &Kernel) -> Result<Self, FmeterError> {
        let content = kernel.debugfs().read("kallsyms")?;
        Ok(DebugfsReader {
            symbols: SymbolMap::parse(&content)?,
        })
    }

    /// The parsed symbol map.
    pub fn symbols(&self) -> &SymbolMap {
        &self.symbols
    }

    /// Reads the Fmeter counter export and returns a snapshot indexed
    /// like the kernel's function table.
    ///
    /// # Errors
    ///
    /// Returns [`FmeterError::Kernel`] when the counter file is absent
    /// (Fmeter not installed) and [`FmeterError::Persist`] on malformed
    /// content or addresses missing from the symbol map.
    pub fn read_counters(&self, kernel: &Kernel) -> Result<CounterSnapshot, FmeterError> {
        let content = kernel.debugfs().read("tracing/fmeter/counters")?;
        let mut counts = vec![0u64; self.symbols.len()];
        for (lineno, line) in content.lines().enumerate() {
            let (addr, count) = line.split_once(' ').ok_or_else(|| {
                FmeterError::Persist(format!("counter line {lineno} malformed: `{line}`"))
            })?;
            let addr = u64::from_str_radix(addr.trim_start_matches("0x"), 16)
                .map_err(|e| FmeterError::Persist(format!("line {lineno}: {e}")))?;
            let index = self.symbols.index_of(addr).ok_or_else(|| {
                FmeterError::Persist(format!("address {addr:#x} not in kallsyms"))
            })?;
            counts[index] = count
                .parse()
                .map_err(|e| FmeterError::Persist(format!("line {lineno}: {e}")))?;
        }
        Ok(CounterSnapshot::new(counts, kernel.now()))
    }

    /// The top `k` hottest functions by name, as an operator tool would
    /// display them.
    ///
    /// # Errors
    ///
    /// As [`read_counters`](Self::read_counters).
    pub fn top_functions(
        &self,
        kernel: &Kernel,
        k: usize,
    ) -> Result<Vec<(String, u64)>, FmeterError> {
        let snapshot = self.read_counters(kernel)?;
        let mut ranked: Vec<(usize, u64)> = snapshot.counts().iter().copied().enumerate().collect();
        ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        Ok(ranked
            .into_iter()
            .take(k)
            .map(|(i, c)| (self.symbols.entries[i].1.clone(), c))
            .collect())
    }
}

/// Convenience: one full daemon-style sample through debugfs — two reads
/// around a closure that runs the workload, returning the per-function
/// delta.
///
/// # Errors
///
/// Propagates debugfs/parse failures and the closure's kernel errors.
pub fn sample_via_debugfs<E: Into<FmeterError>>(
    reader: &DebugfsReader,
    kernel: &mut Kernel,
    run: impl FnOnce(&mut Kernel) -> Result<(), E>,
) -> Result<(Vec<u64>, Nanos), FmeterError> {
    let before = reader.read_counters(kernel)?;
    run(kernel).map_err(Into::into)?;
    let after = reader.read_counters(kernel)?;
    Ok((before.delta(&after), before.interval(&after)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fmeter;
    use fmeter_kernel_sim::{CpuId, KernelConfig, KernelError, KernelOp};

    fn kernel() -> Kernel {
        Kernel::new(KernelConfig {
            num_cpus: 2,
            seed: 4,
            timer_hz: 0,
            image_seed: 0x2628,
        })
        .unwrap()
    }

    #[test]
    fn kallsyms_round_trips_through_parsing() {
        let k = kernel();
        let reader = DebugfsReader::attach(&k).unwrap();
        assert_eq!(reader.symbols().len(), k.num_functions());
        // Spot-check a known anchor.
        let vfs_read = k.symbols().lookup("vfs_read").unwrap();
        let addr = k.symbols().function(vfs_read).unwrap().address;
        assert_eq!(reader.symbols().name_of(addr), Some("vfs_read"));
        assert_eq!(reader.symbols().index_of(addr), Some(vfs_read.index()));
    }

    #[test]
    fn counters_read_through_debugfs_match_reality() {
        let mut k = kernel();
        let fmeter = Fmeter::install(&mut k);
        let reader = DebugfsReader::attach(&k).unwrap();
        let stats = k.run_op(CpuId(0), KernelOp::Fork { pages: 16 }).unwrap();
        let snapshot = reader.read_counters(&k).unwrap();
        assert_eq!(snapshot.total(), stats.calls);
        assert_eq!(
            snapshot.counts(),
            fmeter.tracer().snapshot(k.now()).counts(),
            "debugfs view must equal the in-kernel view"
        );
    }

    #[test]
    fn sample_via_debugfs_isolates_the_interval() {
        let mut k = kernel();
        let _fmeter = Fmeter::install(&mut k);
        let reader = DebugfsReader::attach(&k).unwrap();
        // Pre-interval noise.
        k.run_op(CpuId(0), KernelOp::SemOp).unwrap();
        let (delta, interval) =
            sample_via_debugfs(&reader, &mut k, |k| -> Result<(), KernelError> {
                k.run_op(CpuId(0), KernelOp::Read { bytes: 8192 })?;
                Ok(())
            })
            .unwrap();
        assert!(interval > Nanos::ZERO);
        let sem_entry = k.symbols().lookup("sys_semop").unwrap();
        assert_eq!(
            delta[sem_entry.index()],
            0,
            "pre-interval ops must not leak"
        );
        let read_entry = k.symbols().lookup("vfs_read").unwrap();
        assert!(delta[read_entry.index()] > 0);
    }

    #[test]
    fn top_functions_ranks_by_count() {
        let mut k = kernel();
        let _fmeter = Fmeter::install(&mut k);
        let reader = DebugfsReader::attach(&k).unwrap();
        for _ in 0..5 {
            k.run_op(CpuId(0), KernelOp::Open { components: 4 })
                .unwrap();
        }
        let top = reader.top_functions(&k, 10).unwrap();
        assert_eq!(top.len(), 10);
        for pair in top.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        assert!(top[0].1 > 0);
    }

    #[test]
    fn malformed_kallsyms_rejected() {
        assert!(SymbolMap::parse("zzzz t foo").is_err());
        assert!(SymbolMap::parse("1234").is_err());
        let ok = SymbolMap::parse("ffffffff81000000 t foo\n").unwrap();
        assert_eq!(ok.len(), 1);
        assert!(!ok.is_empty());
    }

    #[test]
    fn missing_fmeter_export_is_an_error() {
        let k = kernel(); // Fmeter never installed
        let reader = DebugfsReader::attach(&k).unwrap();
        assert!(matches!(
            reader.read_counters(&k),
            Err(FmeterError::Kernel(_))
        ));
    }
}
