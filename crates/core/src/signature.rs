use fmeter_ir::codec::{self, BinCodec, CodecError, Reader};
use fmeter_ir::{SparseVec, TermCounts};
use fmeter_kernel_sim::Nanos;
use serde::{Deserialize, Serialize};

/// One raw signature: the per-function invocation-count *difference*
/// between two daemon snapshots, before any weighting.
///
/// This is what the paper's logging daemon writes to disk; tf-idf scores
/// are computed later, "once an entire corpus is generated" (§3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawSignature {
    /// Per-function call counts over the interval (dense, indexed by
    /// function id).
    pub counts: Vec<u64>,
    /// Interval start (simulated time).
    pub started_at: Nanos,
    /// Interval end (simulated time).
    pub ended_at: Nanos,
    /// Class label, when the behaviour is known ("scp", "kcompile", ...).
    pub label: Option<String>,
}

impl RawSignature {
    /// Interval length.
    pub fn interval(&self) -> Nanos {
        self.ended_at - self.started_at
    }

    /// Total calls observed in the interval.
    pub fn total_calls(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of distinct functions observed.
    pub fn distinct_functions(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Converts to the IR crate's document representation.
    pub fn to_term_counts(&self) -> TermCounts {
        TermCounts::from_dense(&self.counts)
    }

    /// Replaces the label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }
}

/// A finished, indexable signature: the tf-idf weight vector of one
/// monitoring interval, L2-normalisable and comparable to any other
/// signature from the same corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Signature {
    /// The tf-idf weight vector `v_j`.
    pub vector: SparseVec,
    /// Class label, when known.
    pub label: Option<String>,
    /// Interval start (simulated time).
    pub started_at: Nanos,
    /// Interval end (simulated time).
    pub ended_at: Nanos,
}

impl Signature {
    /// Cosine similarity to another signature.
    ///
    /// # Errors
    ///
    /// Returns an error if the two signatures live in different vector
    /// spaces (different kernels).
    pub fn cosine(&self, other: &Signature) -> Result<f64, fmeter_ir::IrError> {
        fmeter_ir::cosine_similarity(&self.vector, &other.vector)
    }

    /// Euclidean distance to another signature.
    ///
    /// # Errors
    ///
    /// Returns an error if the two signatures live in different vector
    /// spaces.
    pub fn distance(&self, other: &Signature) -> Result<f64, fmeter_ir::IrError> {
        fmeter_ir::euclidean_distance(&self.vector, &other.vector)
    }
}

// Binary wire layouts (see `fmeter_ir::codec`) for the v5 envelope sections
// and the binary WAL payloads: fields in declaration order, timestamps as
// their `u64` nanosecond counts.
impl BinCodec for RawSignature {
    fn encode_bin(&self, out: &mut Vec<u8>) {
        codec::put_u64s(out, &self.counts);
        codec::put_u64(out, self.started_at.0);
        codec::put_u64(out, self.ended_at.0);
        codec::put_opt_str(out, self.label.as_deref());
    }

    fn decode_bin(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RawSignature {
            counts: r.get_u64s()?,
            started_at: Nanos(r.get_u64()?),
            ended_at: Nanos(r.get_u64()?),
            label: r.get_opt_str()?,
        })
    }
}

impl BinCodec for Signature {
    fn encode_bin(&self, out: &mut Vec<u8>) {
        self.vector.encode_bin(out);
        codec::put_opt_str(out, self.label.as_deref());
        codec::put_u64(out, self.started_at.0);
        codec::put_u64(out, self.ended_at.0);
    }

    fn decode_bin(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Signature {
            vector: SparseVec::decode_bin(r)?,
            label: r.get_opt_str()?,
            started_at: Nanos(r.get_u64()?),
            ended_at: Nanos(r.get_u64()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(counts: Vec<u64>) -> RawSignature {
        RawSignature {
            counts,
            started_at: Nanos(0),
            ended_at: Nanos(100),
            label: None,
        }
    }

    #[test]
    fn raw_signature_statistics() {
        let r = raw(vec![0, 3, 0, 7]);
        assert_eq!(r.total_calls(), 10);
        assert_eq!(r.distinct_functions(), 2);
        assert_eq!(r.interval(), Nanos(100));
        let tc = r.to_term_counts();
        assert_eq!(tc.count(1), 3);
        assert_eq!(tc.count(3), 7);
        assert_eq!(tc.dim(), 4);
    }

    #[test]
    fn labelling() {
        let r = raw(vec![1]).with_label("scp");
        assert_eq!(r.label.as_deref(), Some("scp"));
    }

    #[test]
    fn signature_similarity() {
        let a = Signature {
            vector: SparseVec::from_pairs(4, [(0, 1.0)]).unwrap(),
            label: None,
            started_at: Nanos(0),
            ended_at: Nanos(1),
        };
        let b = Signature {
            vector: SparseVec::from_pairs(4, [(0, 2.0)]).unwrap(),
            label: None,
            started_at: Nanos(1),
            ended_at: Nanos(2),
        };
        assert!((a.cosine(&b).unwrap() - 1.0).abs() < 1e-12);
        assert!((a.distance(&b).unwrap() - 1.0).abs() < 1e-12);
    }
}
