use std::collections::HashMap;
use std::io::{Read, Write};

use fmeter_ir::{
    Corpus, DocId, InvertedIndex, IrError, SearchScratch, SparseVec, TermCounts, TfIdfModel,
    TfIdfOptions,
};
use fmeter_ml::{KMeans, Linkage};
use serde::{Deserialize, Serialize};

use crate::{FmeterError, RawSignature, Signature};

/// A syndrome: the centroid of a cluster of signatures, labelled with the
/// cluster's dominant class.
///
/// "The centroid of a cluster of signatures can then be used as a
/// syndrome which characterizes a manifestation of a common behavior"
/// (paper §2.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Syndrome {
    /// Cluster centroid in tf-idf space.
    pub centroid: SparseVec,
    /// Most frequent label among member signatures (`None` if members are
    /// unlabelled).
    pub dominant_label: Option<String>,
    /// Indices (into the database) of the member signatures.
    pub members: Vec<usize>,
}

/// When an incremental [`SignatureDb`] re-publishes its idf weights.
///
/// Inserted signatures are weighted with the idf generation current at
/// insert time; as the document frequencies drift away from it, stored
/// vectors slowly lose comparability. A *refit* recomputes idf and
/// re-weights every affected signature (see [`SignatureDb::refit`]).
/// The policy decides when the database does this by itself.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RefitPolicy {
    /// Never refit automatically; the owner calls
    /// [`SignatureDb::refit`] (e.g. from a daemon's idle loop).
    Manual,
    /// Refit after every `n` mutations (inserts + removals). `n = 0`
    /// behaves like [`Manual`](RefitPolicy::Manual).
    EveryN(usize),
    /// Refit as soon as either bound is crossed: the published idf
    /// weights drifted more than `max_idf_drift` (see
    /// [`TfIdfModel::idf_drift`]), or more than `max_stale_fraction` of
    /// the live corpus worth of mutations accumulated since the last
    /// refit.
    Threshold {
        /// Maximum tolerated idf drift before an automatic refit.
        max_idf_drift: f64,
        /// Maximum tolerated `mutations / live docs` ratio.
        max_stale_fraction: f64,
    },
}

impl Default for RefitPolicy {
    /// The streaming-daemon default: refit at 10% idf drift or after
    /// mutations totalling a quarter of the corpus, whichever first.
    fn default() -> Self {
        RefitPolicy::Threshold {
            max_idf_drift: 0.1,
            max_stale_fraction: 0.25,
        }
    }
}

/// Outcome of one [`SignatureDb::refit`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefitStats {
    /// The idf generation this refit published.
    pub epoch: u64,
    /// Terms whose idf value changed.
    pub changed_terms: usize,
    /// Live signatures that were re-transformed (they contained at
    /// least one changed term).
    pub reweighted_docs: usize,
    /// The drift absorbed, as measured just before the refit.
    pub max_idf_drift: f64,
}

/// When an incremental [`SignatureDb`] compacts its tombstoned slots.
///
/// Removals leave permanent holes: the raw counts, the stored vector,
/// and the doc-epoch bookkeeping of a removed signature all stay
/// allocated so that doc ids remain stable. A long-horizon daemon with
/// a sliding retention window therefore grows without bound — one dead
/// slot per evicted interval. [`SignatureDb::vacuum`] reclaims that
/// memory by renumbering; this policy decides when the database does it
/// by itself (on the removal path, right after the refit policy runs).
///
/// **An automatic vacuum renumbers doc ids**, exactly like a manual
/// one. Callers holding doc ids across mutations must either keep the
/// policy at [`Never`](VacuumPolicy::Never) and vacuum at moments they
/// control, or translate their ids through
/// [`SignatureDb::last_vacuum`]'s remap after every removal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VacuumPolicy {
    /// Never vacuum automatically; the owner calls
    /// [`SignatureDb::vacuum`] (e.g. alongside a manual refit).
    Never,
    /// Vacuum as soon as tombstoned slots exceed `max_dead_fraction` of
    /// the slot space *and* at least `min_dead` slots are dead (the
    /// floor keeps small databases from vacuuming on every removal).
    DeadFraction {
        /// Maximum tolerated `dead slots / total slots` ratio.
        max_dead_fraction: f64,
        /// Minimum number of dead slots before a vacuum can trigger.
        min_dead: usize,
    },
}

impl Default for VacuumPolicy {
    /// Defaults to [`Never`](VacuumPolicy::Never): compaction
    /// invalidates external doc ids, so it must be opted into.
    fn default() -> Self {
        VacuumPolicy::Never
    }
}

/// Outcome of one [`SignatureDb::vacuum`] pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VacuumStats {
    /// Tombstoned slots whose raw counts, vectors, and bookkeeping were
    /// reclaimed.
    pub dropped_slots: usize,
    /// Live signatures surviving the compaction (`== len()`).
    pub live_docs: usize,
    /// Old doc id → new doc id; `None` for slots that were dead.
    /// Indexed by pre-vacuum doc id over the pre-vacuum slot space.
    pub remap: Vec<Option<DocId>>,
}

/// Outcome of one [`SignatureDb::recluster`] pass: the syndromes plus
/// how they were obtained.
#[derive(Debug, Clone, PartialEq)]
pub struct Recluster {
    /// The clustered syndromes, identical in shape to what
    /// [`SignatureDb::syndromes`] returns.
    pub syndromes: Vec<Syndrome>,
    /// `true` when the pass warm-started from the cached assignment
    /// ([`KMeans::fit_warm`]); `false` for a cold, multi-restart run.
    pub warm: bool,
    /// Lloyd iterations the (final) K-means run performed.
    pub iterations: usize,
}

/// The clustering state [`SignatureDb::recluster`] carries between
/// calls so a steady-state pass costs O(changed), not O(n · restarts).
///
/// Derived state, like [`VacuumStats`]: never persisted (a loaded
/// database starts cold) and never written to the WAL — it is rebuilt
/// by the first `recluster` after recovery.
#[derive(Debug, Clone)]
pub(crate) struct ClusterCache {
    k: usize,
    seed: u64,
    /// Per-slot cluster assignment from the last pass; `None` for slots
    /// inserted since, removed, or never clustered.
    assignment: Vec<Option<usize>>,
    /// Centroids from the last pass (used to attach new docs to their
    /// nearest cluster before warm-starting).
    centroids: Vec<SparseVec>,
}

/// A labelled database of indexable signatures.
///
/// This is the paper's envisioned operator workflow (§2.2): signatures
/// from forensically identified behaviours are labelled and stored; new
/// signatures are compared against the database by similarity search,
/// classified, or clustered into syndromes.
///
/// Build it from raw daemon output with [`SignatureDb::build`]: the
/// tf-idf model is fitted on the full corpus, every signature is
/// transformed and indexed.
///
/// # Streaming ingest
///
/// The database is *incremental*: a monitoring daemon keeps one
/// `SignatureDb` alive and feeds it as intervals stream off the machine
/// — [`insert`](Self::insert) / [`insert_batch`](Self::insert_batch)
/// append signatures, [`remove`](Self::remove) tombstones them (e.g. a
/// sliding retention window), and the tf-idf document frequencies are
/// maintained in place throughout. Because re-deriving idf on every
/// insert would re-weight the whole corpus each time, published idf
/// weights are versioned by an *epoch*: inserts are transformed with
/// the current (possibly stale) generation, and a
/// [`refit`](Self::refit) — manual or driven by the
/// [`RefitPolicy`] — republishes idf and re-weights the affected
/// signatures in one pass. After a refit the database is exactly what
/// [`build`](Self::build) would produce over the surviving corpus.
///
/// Doc ids are stable for the lifetime of the database: removal leaves
/// a permanent hole, [`signatures`](Self::signatures) stays indexable
/// by doc id, and [`len`](Self::len) counts live signatures only —
/// until a [`vacuum`](Self::vacuum), which deliberately renumbers the
/// live ids densely and reclaims the dead slots' memory.
///
/// # Persistence
///
/// [`save`](Self::save) writes a versioned envelope (magic, format
/// version, section table) and [`load`](Self::load) reads *any*
/// supported historical format, migrating it forward — including the
/// bare unversioned JSON that pre-envelope releases wrote. See the
/// [`persist`](crate::persist) module for the format contract.
#[derive(Debug, Clone)]
pub struct SignatureDb {
    pub(crate) model: TfIdfModel,
    pub(crate) signatures: Vec<Signature>,
    pub(crate) index: InvertedIndex,
    /// Raw interval counts per doc-id slot (kept so refits can
    /// re-transform and removals can un-observe exactly).
    pub(crate) corpus: Corpus,
    /// Liveness per doc-id slot.
    pub(crate) live: Vec<bool>,
    pub(crate) num_live: usize,
    /// Current idf generation; bumped by every refit.
    pub(crate) epoch: u64,
    /// Idf generation each stored vector was (re)computed under.
    pub(crate) doc_epoch: Vec<u64>,
    pub(crate) refit_policy: RefitPolicy,
    /// Inserts + removals since the last refit (staleness measure).
    pub(crate) mutations_since_refit: usize,
    pub(crate) vacuum_policy: VacuumPolicy,
    /// Vacuums performed over the database's lifetime (survives
    /// save/load; observability for long-horizon daemons).
    pub(crate) vacuums: u64,
    /// Stats (incl. the id remap) of the most recent vacuum in this
    /// process. *Not* persisted — a remap is only meaningful to the
    /// process whose ids it invalidated.
    pub(crate) last_vacuum: Option<VacuumStats>,
    /// Warm-start state for [`recluster`](Self::recluster). Derived,
    /// not persisted (see [`ClusterCache`]).
    pub(crate) cluster_cache: Option<ClusterCache>,
}

impl SignatureDb {
    /// Fits tf-idf over `raw` and indexes every signature.
    ///
    /// # Errors
    ///
    /// Returns [`FmeterError::NoSignatures`] when `raw` is empty.
    pub fn build(raw: &[RawSignature]) -> Result<Self, FmeterError> {
        Self::build_with(raw, TfIdfOptions::default())
    }

    /// Fits with explicit tf/idf options (used by the weighting-scheme
    /// ablation).
    ///
    /// # Errors
    ///
    /// Returns [`FmeterError::NoSignatures`] when `raw` is empty.
    pub fn build_with(raw: &[RawSignature], options: TfIdfOptions) -> Result<Self, FmeterError> {
        let first = raw.first().ok_or(FmeterError::NoSignatures)?;
        let dim = first.counts.len();
        let mut corpus = Corpus::new(dim);
        for r in raw {
            corpus.push(r.to_term_counts());
        }
        let model = TfIdfModel::fit_with(&corpus, options)?;
        let mut signatures = Vec::with_capacity(raw.len());
        let mut index = InvertedIndex::new(dim);
        for (r, doc) in raw.iter().zip(corpus.iter()) {
            let vector = model.transform(doc);
            index.insert(vector.clone())?;
            signatures.push(Signature {
                vector,
                label: r.label.clone(),
                started_at: r.started_at,
                ended_at: r.ended_at,
            });
        }
        // Bulk load finished: fold any tail postings into the flat buffer
        // so queries stream one contiguous region.
        index.optimize();
        let n = signatures.len();
        Ok(SignatureDb {
            model,
            signatures,
            index,
            corpus,
            live: vec![true; n],
            num_live: n,
            epoch: 0,
            doc_epoch: vec![0; n],
            refit_policy: RefitPolicy::default(),
            mutations_since_refit: 0,
            vacuum_policy: VacuumPolicy::default(),
            vacuums: 0,
            last_vacuum: None,
            cluster_cache: None,
        })
    }

    /// Appends one signature, weighting it with the current idf
    /// generation, and returns its stable [`DocId`].
    ///
    /// Document frequencies are updated immediately; the published idf
    /// weights are not (they change only at a [`refit`](Self::refit)).
    /// The configured [`RefitPolicy`] is consulted after the insert, so
    /// a drift- or staleness-crossing insert triggers a refit before
    /// this method returns — observable through [`epoch`](Self::epoch).
    ///
    /// # Errors
    ///
    /// Returns a dimension mismatch when the raw counts do not match the
    /// database's function space.
    pub fn insert(&mut self, raw: &RawSignature) -> Result<DocId, FmeterError> {
        let id = self.insert_stale(raw)?;
        self.maybe_refit();
        Ok(id)
    }

    /// Appends a batch of signatures, returning their [`DocId`]s.
    ///
    /// Equivalent to calling [`insert`](Self::insert) for each element,
    /// except the refit policy is consulted once after the whole batch —
    /// a mid-batch drift crossing does not split the batch across two
    /// idf generations.
    ///
    /// # Errors
    ///
    /// Returns a dimension mismatch on the first offending signature;
    /// earlier elements of the batch remain inserted.
    pub fn insert_batch(&mut self, raw: &[RawSignature]) -> Result<Vec<DocId>, FmeterError> {
        let mut ids = Vec::with_capacity(raw.len());
        for r in raw {
            ids.push(self.insert_stale(r)?);
        }
        self.maybe_refit();
        Ok(ids)
    }

    /// The shared insert path: mutate df, transform with the current
    /// (stale) generation, index, and track the epoch — no policy check.
    fn insert_stale(&mut self, raw: &RawSignature) -> Result<DocId, FmeterError> {
        let counts = raw.to_term_counts();
        if counts.dim() != self.dim() {
            return Err(IrError::DimensionMismatch {
                left: self.dim(),
                right: counts.dim(),
            }
            .into());
        }
        self.model.observe(&counts);
        let vector = self.model.transform(&counts);
        let id = self.index.insert(vector.clone())?;
        self.corpus.push(counts);
        self.signatures.push(Signature {
            vector,
            label: raw.label.clone(),
            started_at: raw.started_at,
            ended_at: raw.ended_at,
        });
        self.live.push(true);
        self.doc_epoch.push(self.epoch);
        self.num_live += 1;
        self.mutations_since_refit += 1;
        if let Some(cache) = &mut self.cluster_cache {
            cache.assignment.push(None);
        }
        Ok(id)
    }

    /// Tombstones a stored signature: it stops appearing in search,
    /// classification, and clustering immediately, and its contribution
    /// leaves the document frequencies. The doc id is never reused.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DocNotLive`] (wrapped) when `doc` was never
    /// assigned or is already removed.
    pub fn remove(&mut self, doc: DocId) -> Result<(), FmeterError> {
        if !self.is_live(doc) {
            return Err(IrError::DocNotLive(doc).into());
        }
        self.index.remove(doc)?;
        self.model
            .unobserve(self.corpus.doc(doc).expect("slot exists for live doc"));
        self.live[doc] = false;
        self.num_live -= 1;
        self.mutations_since_refit += 1;
        if let Some(cache) = &mut self.cluster_cache {
            cache.assignment[doc] = None;
        }
        // Vacuum before refit: vacuuming is pure renumbering (it moves
        // postings, touching no floats) and changes none of the refit
        // policy's inputs, so when both are due the refit's single
        // posting rebuild runs over the already-renumbered survivors —
        // one weight-recomputing rewrite serves both maintenance tasks.
        self.maybe_vacuum();
        self.maybe_refit();
        Ok(())
    }

    /// Compacts the database in place: tombstoned slots are dropped for
    /// good (raw counts, stored vectors, postings, epoch bookkeeping)
    /// and the surviving signatures are renumbered to dense doc ids
    /// `0..len()` in their original order.
    ///
    /// This is the memory-reclamation half of the streaming contract:
    /// [`remove`](Self::remove) keeps doc ids stable by leaving
    /// permanent holes, so a daemon with a sliding retention window
    /// grows one dead slot per evicted interval forever; `vacuum`
    /// trades id stability for bounded memory at a moment the caller
    /// (or the [`VacuumPolicy`]) chooses.
    ///
    /// **Every external doc id is invalidated on purpose.** The
    /// returned [`VacuumStats::remap`] translates old ids to new ones
    /// (`None` = the slot was dead); anything holding ids — syndrome
    /// member lists, eviction cursors, ids handed to other systems —
    /// must be remapped or rebuilt.
    ///
    /// The tf-idf model is untouched (document frequencies already
    /// describe the live corpus only) and the epoch does not advance:
    /// per-doc idf generations carry over, so a stale database stays
    /// exactly as stale. The posting store is renumbered *in place* —
    /// one O(nnz) pass of moves via
    /// [`InvertedIndex::renumber_compact`], recomputing no weight — and
    /// since every stored weight was already computed by the insert (or
    /// refit) that produced it, the result is still bit-identical to a
    /// fresh [`build`](Self::build)'s index over the surviving corpus.
    pub fn vacuum(&mut self) -> VacuumStats {
        let slots = self.signatures.len();
        let mut remap: Vec<Option<DocId>> = vec![None; slots];
        let mut next = 0usize;
        for (d, slot) in remap.iter_mut().enumerate() {
            if self.live[d] {
                *slot = Some(next);
                next += 1;
            }
        }
        self.index
            .renumber_compact(&remap)
            .expect("live flags mirror the index tombstones");
        // Repack the side arrays with moves (no clones, no re-weighting).
        let live = std::mem::take(&mut self.live);
        let old_signatures = std::mem::take(&mut self.signatures);
        self.signatures = old_signatures
            .into_iter()
            .enumerate()
            .filter(|(d, _)| live[*d])
            .map(|(_, sig)| sig)
            .collect();
        let dim = self.dim();
        let old_corpus = std::mem::replace(&mut self.corpus, Corpus::new(dim));
        let mut corpus = Corpus::new(dim);
        for (d, counts) in old_corpus.into_iter().enumerate() {
            if live[d] {
                corpus.push(counts);
            }
        }
        self.corpus = corpus;
        let old_epochs = std::mem::take(&mut self.doc_epoch);
        self.doc_epoch = old_epochs
            .into_iter()
            .enumerate()
            .filter(|(d, _)| live[*d])
            .map(|(_, e)| e)
            .collect();
        if let Some(cache) = &mut self.cluster_cache {
            // Renumber the warm-start assignments alongside the doc ids;
            // dead slots (already `None`) drop out of the vector.
            let old = std::mem::take(&mut cache.assignment);
            cache.assignment = old
                .into_iter()
                .enumerate()
                .filter(|(d, _)| live[*d])
                .map(|(_, a)| a)
                .collect();
        }
        self.live = vec![true; self.num_live];
        self.vacuums += 1;
        let stats = VacuumStats {
            dropped_slots: slots - self.num_live,
            live_docs: self.num_live,
            remap,
        };
        self.last_vacuum = Some(stats.clone());
        stats
    }

    /// Runs the configured [`VacuumPolicy`], vacuuming when due.
    fn maybe_vacuum(&mut self) -> Option<&VacuumStats> {
        let VacuumPolicy::DeadFraction {
            max_dead_fraction,
            min_dead,
        } = self.vacuum_policy
        else {
            return None;
        };
        let dead = self.signatures.len() - self.num_live;
        let due = dead >= min_dead.max(1)
            && dead as f64 >= max_dead_fraction * self.signatures.len() as f64;
        if due {
            self.vacuum();
            self.last_vacuum.as_ref()
        } else {
            None
        }
    }

    /// The automatic-vacuum policy (defaults to
    /// [`VacuumPolicy::Never`]).
    pub fn vacuum_policy(&self) -> VacuumPolicy {
        self.vacuum_policy
    }

    /// Replaces the automatic-vacuum policy.
    pub fn set_vacuum_policy(&mut self, policy: VacuumPolicy) {
        self.vacuum_policy = policy;
    }

    /// Number of vacuums performed over the database's lifetime
    /// (persisted across save/load).
    pub fn vacuums(&self) -> u64 {
        self.vacuums
    }

    /// Stats of the most recent vacuum in this process, if any —
    /// including the old→new id remap an automatic
    /// ([`VacuumPolicy`]-driven) vacuum produced. Cleared by neither
    /// mutations nor refits, but not persisted: a loaded database
    /// starts with `None`.
    pub fn last_vacuum(&self) -> Option<&VacuumStats> {
        self.last_vacuum.as_ref()
    }

    /// Fraction of the slot space occupied by tombstones (`0.0` for an
    /// empty database) — what [`VacuumPolicy::DeadFraction`] watches.
    pub fn dead_fraction(&self) -> f64 {
        if self.signatures.is_empty() {
            0.0
        } else {
            (self.signatures.len() - self.num_live) as f64 / self.signatures.len() as f64
        }
    }

    /// Republishes the idf weights from the current document
    /// frequencies and re-weights every affected live signature in one
    /// pass, bumping the epoch.
    ///
    /// Only signatures containing at least one changed term are
    /// re-transformed (an unchanged-idf support yields a bit-identical
    /// vector); the posting store is then rewritten from the live
    /// vectors — which also purges any tombstoned postings and tightens
    /// the per-term max-impact bounds. After this call the database
    /// matches a from-scratch [`build`](Self::build) over the surviving
    /// corpus exactly.
    pub fn refit(&mut self) -> RefitStats {
        self.epoch += 1;
        self.mutations_since_refit = 0;
        let refit = self.model.refit_idf();
        let mut stats = RefitStats {
            epoch: self.epoch,
            changed_terms: refit.changed_terms.len(),
            reweighted_docs: 0,
            max_idf_drift: refit.max_drift,
        };
        if refit.changed_terms.is_empty() {
            // No re-weighting to do, but the refit contract still
            // promises a tombstone-free posting store with tight bounds
            // (reachable e.g. under IdfMode::Unit, or when mutations net
            // out) — optimize() purges if any tombstones linger.
            self.index.optimize();
            return stats;
        }
        let mut changed = vec![false; self.dim()];
        for &t in &refit.changed_terms {
            changed[t as usize] = true;
        }
        for d in 0..self.signatures.len() {
            if !self.live[d] {
                continue;
            }
            let doc = self.corpus.doc(d).expect("slot exists");
            if doc.iter().any(|(t, _)| changed[t as usize]) {
                self.signatures[d].vector = self.model.transform(doc);
                self.doc_epoch[d] = self.epoch;
                stats.reweighted_docs += 1;
            }
        }
        let signatures = &self.signatures;
        let live = &self.live;
        self.index
            .rebuild_postings(
                (0..signatures.len())
                    .filter(|&d| live[d])
                    .map(|d| (d, &signatures[d].vector)),
            )
            .expect("live vectors are consistent with the index");
        stats
    }

    /// Runs the configured [`RefitPolicy`], refitting when due. The
    /// drift bound is checked with [`TfIdfModel::idf_drift_cached`] —
    /// one `ln` per term *dirtied* since the last check instead of one
    /// per dimension — so the policy costs O(dim) arithmetic, not
    /// O(dim) transcendentals, on every mutation.
    fn maybe_refit(&mut self) -> Option<RefitStats> {
        let due = match self.refit_policy {
            RefitPolicy::Manual => false,
            RefitPolicy::EveryN(n) => n > 0 && self.mutations_since_refit >= n,
            RefitPolicy::Threshold {
                max_idf_drift,
                max_stale_fraction,
            } => {
                self.mutations_since_refit > 0
                    && ((self.num_live > 0
                        && self.mutations_since_refit as f64
                            >= max_stale_fraction * self.num_live as f64)
                        || self.model.idf_drift_cached() > max_idf_drift)
            }
        };
        due.then(|| self.refit())
    }

    /// The automatic-refit policy (defaults to
    /// [`RefitPolicy::default`]).
    pub fn refit_policy(&self) -> RefitPolicy {
        self.refit_policy
    }

    /// Replaces the automatic-refit policy.
    pub fn set_refit_policy(&mut self, policy: RefitPolicy) {
        self.refit_policy = policy;
    }

    /// The current idf generation (bumped by every refit).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The idf generation `doc`'s stored vector was last computed
    /// under; `None` for unassigned ids.
    pub fn doc_epoch(&self, doc: DocId) -> Option<u64> {
        self.doc_epoch.get(doc).copied()
    }

    /// Inserts + removals since the last refit.
    pub fn mutations_since_refit(&self) -> usize {
        self.mutations_since_refit
    }

    /// How far the published idf weights lag behind the maintained
    /// document frequencies (see [`TfIdfModel::idf_drift`]).
    pub fn idf_drift(&self) -> f64 {
        self.model.idf_drift()
    }

    /// Returns `true` when `doc` names a live (inserted, not removed)
    /// signature.
    pub fn is_live(&self, doc: DocId) -> bool {
        self.live.get(doc).copied().unwrap_or(false)
    }

    /// Number of live signatures.
    pub fn len(&self) -> usize {
        self.num_live
    }

    /// Number of doc-id slots ever assigned (live + tombstoned).
    pub fn num_slots(&self) -> usize {
        self.signatures.len()
    }

    /// Returns `true` when no live signature is stored.
    pub fn is_empty(&self) -> bool {
        self.num_live == 0
    }

    /// Dimensionality of the signature space.
    pub fn dim(&self) -> usize {
        self.model.dim()
    }

    /// The fitted tf-idf model.
    pub fn model(&self) -> &TfIdfModel {
        &self.model
    }

    /// The stored signature slots, indexable by [`DocId`]. Removed
    /// slots keep their last contents — check [`is_live`](Self::is_live)
    /// when iterating a database that saw removals.
    pub fn signatures(&self) -> &[Signature] {
        &self.signatures
    }

    /// Transforms raw interval counts with the database's tf-idf model
    /// (for querying with fresh, unlabelled intervals).
    pub fn transform(&self, counts: &TermCounts) -> SparseVec {
        self.model.transform(counts)
    }

    /// How the index stores its compacted posting weights (see
    /// [`fmeter_ir::QuantizationMode`]).
    pub fn quantization(&self) -> fmeter_ir::QuantizationMode {
        self.index.quantization()
    }

    /// Switches the index's compacted posting weights between exact
    /// `f64` and 8-bit quantized storage (~4x smaller resident
    /// postings, per-weight error at most half a quantization step —
    /// see [`InvertedIndex::set_quantization`]). The mode survives
    /// vacuums, refits, and v6+ saves; saving as an older format
    /// version downgrades to the dequantized `f64` weights.
    pub fn set_quantization(&mut self, mode: fmeter_ir::QuantizationMode) {
        self.index.set_quantization(mode);
    }

    /// Finds the `k` most similar stored signatures to a fresh interval.
    ///
    /// Goes through [`InvertedIndex::search`], which at database scale
    /// dispatches to the block-max WAND early-exit top-k (per-term
    /// impact bounds pick the pivot, per-block maxima skip whole
    /// posting blocks that cannot reach the current k-th best
    /// similarity). For a steady query stream, prefer
    /// [`search_with`](Self::search_with) with a long-lived scratch.
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches.
    pub fn search(
        &self,
        counts: &TermCounts,
        k: usize,
    ) -> Result<Vec<(&Signature, f64)>, FmeterError> {
        self.search_with(counts, k, &mut SearchScratch::new())
    }

    /// Like [`search`](Self::search) but reuses `scratch` across calls,
    /// so a daemon querying the database continuously performs no
    /// per-query candidate allocations.
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches.
    pub fn search_with(
        &self,
        counts: &TermCounts,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> Result<Vec<(&Signature, f64)>, FmeterError> {
        let query = self.transform(counts);
        let hits = self.index.search_with(&query, k, scratch)?;
        Ok(hits
            .into_iter()
            .map(|h| (&self.signatures[h.doc], h.score))
            .collect())
    }

    /// Classifies a fresh interval by majority label among its `k`
    /// nearest stored signatures. Returns `None` when no labelled
    /// neighbour is found.
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches.
    pub fn classify(&self, counts: &TermCounts, k: usize) -> Result<Option<String>, FmeterError> {
        let hits = self.search(counts, k)?;
        let mut votes: HashMap<&str, usize> = HashMap::new();
        for (sig, _) in &hits {
            if let Some(label) = sig.label.as_deref() {
                *votes.entry(label).or_default() += 1;
            }
        }
        Ok(votes
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(label, _)| label.to_string()))
    }

    /// Clusters all signatures into `k` syndromes with seeded K-means.
    ///
    /// # Errors
    ///
    /// Propagates clustering failures (e.g. fewer signatures than `k`).
    pub fn syndromes(&self, k: usize, seed: u64) -> Result<Vec<Syndrome>, FmeterError> {
        let live_ids: Vec<usize> = (0..self.signatures.len())
            .filter(|&d| self.live[d])
            .collect();
        let vectors: Vec<SparseVec> = live_ids
            .iter()
            .map(|&d| self.signatures[d].vector.clone())
            .collect();
        let result = KMeans::new(k).seed(seed).restarts(3).run(&vectors)?;
        Ok(self.syndromes_from(&live_ids, result.centroids, &result.assignments))
    }

    /// Labels a K-means result as syndromes: builds one [`Syndrome`]
    /// per centroid, distributes the live doc ids into member lists,
    /// and votes each cluster's dominant label (ties break towards the
    /// lexically smaller label, deterministically).
    fn syndromes_from(
        &self,
        live_ids: &[usize],
        centroids: Vec<SparseVec>,
        assignments: &[usize],
    ) -> Vec<Syndrome> {
        let mut syndromes: Vec<Syndrome> = centroids
            .into_iter()
            .map(|centroid| Syndrome {
                centroid,
                dominant_label: None,
                members: Vec::new(),
            })
            .collect();
        for (i, &cluster) in assignments.iter().enumerate() {
            syndromes[cluster].members.push(live_ids[i]);
        }
        for syndrome in &mut syndromes {
            let mut votes: HashMap<&str, usize> = HashMap::new();
            for &m in &syndrome.members {
                if let Some(label) = self.signatures[m].label.as_deref() {
                    *votes.entry(label).or_default() += 1;
                }
            }
            syndrome.dominant_label = votes
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(a.0)))
                .map(|(l, _)| l.to_string());
        }
        syndromes
    }

    /// Incremental syndrome maintenance: like
    /// [`syndromes`](Self::syndromes), but warm-started from the
    /// previous pass so a steady-state call costs O(changed docs) Lloyd
    /// work instead of a full multi-restart K-means.
    ///
    /// The first call (or any call after [`load`](Self::load), which
    /// starts cold) runs exactly what `syndromes(k, seed)` runs and
    /// caches the resulting assignment per doc slot. Subsequent calls
    /// with the *same* `k` and `seed` attach every doc inserted since
    /// to its nearest cached centroid and resume Lloyd iterations from
    /// there ([`KMeans::fit_warm`]): with no churn the pass converges in
    /// one assignment sweep with bit-identical centroids, and with
    /// bounded churn it converges in the few iterations the moved
    /// points need. The cache follows removals and [`vacuum`]
    /// renumbering automatically; changing `k` or `seed` — or churn so
    /// heavy that a cached cluster lost all its members — falls back to
    /// the cold path (observable via [`Recluster::warm`]).
    ///
    /// The cache is derived state: it is not persisted and not written
    /// to the write-ahead log, so a crash simply means the next
    /// `recluster` after recovery is a cold one.
    ///
    /// [`vacuum`]: Self::vacuum
    ///
    /// # Errors
    ///
    /// Propagates clustering failures (e.g. fewer signatures than `k`).
    pub fn recluster(&mut self, k: usize, seed: u64) -> Result<Recluster, FmeterError> {
        let live_ids: Vec<usize> = (0..self.signatures.len())
            .filter(|&d| self.live[d])
            .collect();
        let vectors: Vec<SparseVec> = live_ids
            .iter()
            .map(|&d| self.signatures[d].vector.clone())
            .collect();
        let prev = self.warm_assignment(k, seed, &live_ids, &vectors);
        let (result, warm) = match prev {
            Some(prev) => match KMeans::new(k).seed(seed).fit_warm(&vectors, &prev) {
                Ok(result) => (result, true),
                // Defensive: any warm-start rejection (all guarded
                // against above) degrades to a cold run, never an error.
                Err(_) => (KMeans::new(k).seed(seed).restarts(3).run(&vectors)?, false),
            },
            None => (KMeans::new(k).seed(seed).restarts(3).run(&vectors)?, false),
        };
        let mut assignment = vec![None; self.signatures.len()];
        for (i, &d) in live_ids.iter().enumerate() {
            assignment[d] = Some(result.assignments[i]);
        }
        self.cluster_cache = Some(ClusterCache {
            k,
            seed,
            assignment,
            centroids: result.centroids.clone(),
        });
        Ok(Recluster {
            syndromes: self.syndromes_from(&live_ids, result.centroids, &result.assignments),
            warm,
            iterations: result.iterations,
        })
    }

    /// Builds the warm-start assignment for [`recluster`] from the
    /// cache, or `None` when a cold run is required: no cache, `k` or
    /// `seed` changed, too few points, or churn emptied a cached
    /// cluster (a [`KMeans::fit_warm`] precondition).
    fn warm_assignment(
        &self,
        k: usize,
        seed: u64,
        live_ids: &[usize],
        vectors: &[SparseVec],
    ) -> Option<Vec<usize>> {
        let cache = self.cluster_cache.as_ref()?;
        if cache.k != k || cache.seed != seed || k == 0 || vectors.len() < k {
            return None;
        }
        let mut prev = Vec::with_capacity(live_ids.len());
        for (i, &d) in live_ids.iter().enumerate() {
            match cache.assignment.get(d).copied().flatten() {
                Some(a) if a < k => prev.push(a),
                Some(_) => return None,
                // Inserted since the last pass: attach to the nearest
                // cached centroid (same metric K-means assigns with).
                None => {
                    let mut best: Option<(usize, f64)> = None;
                    for (c, centroid) in cache.centroids.iter().enumerate() {
                        let d2 = fmeter_ir::euclidean_distance_sq(&vectors[i], centroid)
                            .expect("cached centroids share the database dimension");
                        if best.is_none_or(|(_, bd)| d2 < bd) {
                            best = Some((c, d2));
                        }
                    }
                    prev.push(best?.0);
                }
            }
        }
        let mut counts = vec![0usize; k];
        for &a in &prev {
            counts[a] += 1;
        }
        counts.iter().all(|&c| c > 0).then_some(prev)
    }

    /// Meta-clustering (paper §2.2, §6): clusters syndrome *centroids*
    /// hierarchically to discover which entire behaviour classes are
    /// similar in how they use the kernel. Returns per-syndrome group
    /// assignments for `groups` groups.
    ///
    /// # Errors
    ///
    /// Propagates clustering failures.
    pub fn meta_cluster(syndromes: &[Syndrome], groups: usize) -> Result<Vec<usize>, FmeterError> {
        let centroids: Vec<SparseVec> = syndromes.iter().map(|s| s.centroid.clone()).collect();
        let tree = fmeter_ml::Agglomerative::new(Linkage::Average).fit(&centroids)?;
        Ok(tree.cut(groups))
    }

    /// The `k` most discriminative functions of a syndrome: the terms
    /// whose centroid weight most exceeds the corpus-wide mean weight.
    ///
    /// This is what an operator reads when labelling a syndrome — "this
    /// cluster is the one hammering the journal commit path". Returns
    /// `(term id, centroid weight, lift over corpus mean)` sorted by
    /// lift; map term ids to names with the kernel's symbol table or a
    /// parsed [`SymbolMap`](crate::SymbolMap).
    pub fn explain_syndrome(&self, syndrome: &Syndrome, k: usize) -> Vec<(u32, f64, f64)> {
        // Corpus mean weight per term (live signatures only).
        let mut mean = vec![0.0f64; self.dim()];
        for (s, _) in self.signatures.iter().zip(&self.live).filter(|(_, &l)| l) {
            for (t, w) in s.vector.iter() {
                mean[t as usize] += w;
            }
        }
        let n = self.num_live.max(1) as f64;
        for m in &mut mean {
            *m /= n;
        }
        let mut ranked: Vec<(u32, f64, f64)> = syndrome
            .centroid
            .iter()
            .map(|(t, w)| (t, w, w - mean[t as usize]))
            .collect();
        ranked.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// Serialises the database in the current on-disk format: a tagged
    /// envelope (magic, format version, section table) whose layout is
    /// specified and version-tabled in the [`persist`](crate::persist)
    /// module. Older formats load via [`load`](Self::load)'s migration
    /// chain; to *write* an older format (e.g. for a fleet that has not
    /// upgraded yet), use
    /// [`save_as_version`](Self::save_as_version).
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialisation failures.
    pub fn save<W: Write>(&self, writer: W) -> Result<(), FmeterError> {
        crate::persist::save(self, crate::persist::CURRENT_FORMAT_VERSION, writer)
    }

    /// Serialises the database as a specific historical format version
    /// (`0` = the pre-envelope bare JSON). Downgrading is lossy where
    /// the older format has no room for newer state: a v1 (or v0) save
    /// drops the vacuum policy and counter, which load back as their
    /// defaults. Primarily for fixture generation and mixed-version
    /// fleets.
    ///
    /// # Errors
    ///
    /// Returns [`FmeterError::UnsupportedFormat`] for unknown versions
    /// and propagates I/O and serialisation failures.
    pub fn save_as_version<W: Write>(&self, version: u32, writer: W) -> Result<(), FmeterError> {
        crate::persist::save(self, version, writer)
    }

    /// Loads a database previously written by [`save`](Self::save) —
    /// by *any* release: the reader detects the format version (the
    /// pre-envelope bare JSON counts as version 0) and migrates the
    /// payload forward through every version table entry up to the
    /// current one. A database saved by version N−1 code therefore
    /// loads on version N with search/classify behaviour identical to
    /// the state it was saved in.
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialisation failures; returns
    /// [`FmeterError::UnsupportedFormat`] when the file was written by
    /// a *newer* format than this build understands.
    pub fn load<R: Read>(reader: R) -> Result<Self, FmeterError> {
        crate::persist::load(reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmeter_kernel_sim::Nanos;

    /// Two synthetic behaviour classes over an 8-function space.
    fn sample_raw() -> Vec<RawSignature> {
        let mut raw = Vec::new();
        for i in 0..6u64 {
            // Class A: functions 0-3 hot.
            raw.push(RawSignature {
                counts: vec![50 + i, 40, 30, 20, 0, 1, 0, 0],
                started_at: Nanos(i * 100),
                ended_at: Nanos((i + 1) * 100),
                label: Some("a".into()),
            });
            // Class B: functions 4-7 hot.
            raw.push(RawSignature {
                counts: vec![0, 1, 0, 0, 60, 50 + i, 40, 30],
                started_at: Nanos(i * 100),
                ended_at: Nanos((i + 1) * 100),
                label: Some("b".into()),
            });
        }
        raw
    }

    #[test]
    fn build_indexes_everything() {
        let db = SignatureDb::build(&sample_raw()).unwrap();
        assert_eq!(db.len(), 12);
        assert_eq!(db.dim(), 8);
        assert!(!db.is_empty());
        assert_eq!(db.signatures().len(), 12);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(
            SignatureDb::build(&[]),
            Err(FmeterError::NoSignatures)
        ));
    }

    #[test]
    fn quantization_survives_save_load_and_vacuum() {
        let mut db = SignatureDb::build(&sample_raw()).unwrap();
        db.set_quantization(fmeter_ir::QuantizationMode::Int8);
        assert_eq!(db.quantization(), fmeter_ir::QuantizationMode::Int8);
        // Vacuums rewrite the flat postings; the mode must persist.
        db.remove(0).unwrap();
        db.vacuum();
        assert_eq!(db.quantization(), fmeter_ir::QuantizationMode::Int8);
        // And so must a current-version save/load round trip.
        let mut bytes = Vec::new();
        db.save(&mut bytes).unwrap();
        let back = SignatureDb::load(&bytes[..]).unwrap();
        assert_eq!(back.quantization(), fmeter_ir::QuantizationMode::Int8);
        let probe = TermCounts::from_dense(&[48, 41, 29, 22, 0, 0, 0, 0]);
        let a = db.search(&probe, 3).unwrap();
        let b = back.search(&probe, 3).unwrap();
        assert_eq!(a.len(), b.len());
        for ((s1, sc1), (s2, sc2)) in a.iter().zip(&b) {
            assert_eq!(s1.label, s2.label);
            assert_eq!(sc1.to_bits(), sc2.to_bits());
        }
    }

    #[test]
    fn search_finds_same_class() {
        let db = SignatureDb::build(&sample_raw()).unwrap();
        let query = TermCounts::from_dense(&[45, 38, 28, 22, 0, 0, 0, 0]);
        let hits = db.search(&query, 3).unwrap();
        assert_eq!(hits.len(), 3);
        for (sig, score) in &hits {
            assert_eq!(sig.label.as_deref(), Some("a"));
            assert!(*score > 0.5);
        }
    }

    #[test]
    fn search_with_scratch_reuse_matches_search() {
        let db = SignatureDb::build(&sample_raw()).unwrap();
        let mut scratch = SearchScratch::new();
        for dense in [
            [45u64, 38, 28, 22, 0, 0, 0, 0],
            [0, 0, 0, 0, 55, 48, 41, 33],
        ] {
            let query = TermCounts::from_dense(&dense);
            let fresh = db.search(&query, 4).unwrap();
            let reused = db.search_with(&query, 4, &mut scratch).unwrap();
            assert_eq!(fresh.len(), reused.len());
            for ((s1, d1), (s2, d2)) in fresh.iter().zip(&reused) {
                assert_eq!(s1.label, s2.label);
                assert_eq!(d1, d2);
            }
        }
    }

    #[test]
    fn classify_votes_by_neighbours() {
        let db = SignatureDb::build(&sample_raw()).unwrap();
        let a_query = TermCounts::from_dense(&[45, 38, 28, 22, 0, 0, 0, 0]);
        assert_eq!(db.classify(&a_query, 5).unwrap().as_deref(), Some("a"));
        let b_query = TermCounts::from_dense(&[0, 0, 0, 0, 55, 48, 41, 33]);
        assert_eq!(db.classify(&b_query, 5).unwrap().as_deref(), Some("b"));
    }

    #[test]
    fn syndromes_recover_classes() {
        let db = SignatureDb::build(&sample_raw()).unwrap();
        let syndromes = db.syndromes(2, 7).unwrap();
        assert_eq!(syndromes.len(), 2);
        let labels: Vec<_> = syndromes
            .iter()
            .map(|s| s.dominant_label.clone().unwrap())
            .collect();
        assert!(labels.contains(&"a".to_string()));
        assert!(labels.contains(&"b".to_string()));
        // Each syndrome has 6 members, all of its class.
        for s in &syndromes {
            assert_eq!(s.members.len(), 6);
        }
    }

    #[test]
    fn recluster_first_call_is_cold_and_matches_syndromes() {
        let mut db = SignatureDb::build(&sample_raw()).unwrap();
        let cold = db.syndromes(2, 7).unwrap();
        let pass = db.recluster(2, 7).unwrap();
        assert!(!pass.warm, "no cache yet: the first pass must run cold");
        assert_eq!(pass.syndromes, cold);
    }

    #[test]
    fn recluster_steady_state_warm_starts_bit_identically() {
        let mut db = SignatureDb::build(&sample_raw()).unwrap();
        let first = db.recluster(2, 7).unwrap();
        let second = db.recluster(2, 7).unwrap();
        assert!(second.warm, "unchanged corpus must take the warm path");
        assert_eq!(
            second.iterations, 1,
            "a converged assignment is a Lloyd fixpoint"
        );
        assert_eq!(second.syndromes, first.syndromes);
    }

    #[test]
    fn recluster_cache_invalidates_on_config_change() {
        let mut db = SignatureDb::build(&sample_raw()).unwrap();
        db.recluster(2, 7).unwrap();
        // Different k and different seed each force a cold pass…
        assert!(!db.recluster(3, 7).unwrap().warm);
        assert!(!db.recluster(3, 8).unwrap().warm);
        // …and each cold pass re-primes the cache for its own config.
        assert!(db.recluster(3, 8).unwrap().warm);
    }

    #[test]
    fn recluster_follows_churn_and_vacuum() {
        let mut db = SignatureDb::build(&sample_raw()).unwrap();
        db.recluster(2, 7).unwrap();
        // Churn: remove one doc of each class, insert a fresh class-A
        // signature. The cache survives (inserted doc attaches to its
        // nearest cached centroid) and the pass stays warm.
        db.remove(0).unwrap();
        db.remove(1).unwrap();
        db.insert(&RawSignature {
            counts: vec![52, 41, 29, 21, 0, 1, 0, 0],
            started_at: Nanos(0),
            ended_at: Nanos(1),
            label: Some("a".into()),
        })
        .unwrap();
        let churned = db.recluster(2, 7).unwrap();
        assert!(churned.warm, "bounded churn should keep the warm path");
        let labels: Vec<_> = churned
            .syndromes
            .iter()
            .map(|s| s.dominant_label.clone().unwrap())
            .collect();
        assert!(labels.contains(&"a".to_string()) && labels.contains(&"b".to_string()));
        // Vacuum renumbers doc ids; the cached assignment must follow.
        db.vacuum();
        let after_vacuum = db.recluster(2, 7).unwrap();
        assert!(after_vacuum.warm, "vacuum renumbering must not go cold");
        for s in &after_vacuum.syndromes {
            for &m in &s.members {
                assert!(db.is_live(m), "member ids must be post-vacuum ids");
            }
        }
        // And the result agrees with a from-scratch clustering of the
        // compacted corpus.
        let cold = db.syndromes(2, 7).unwrap();
        let warm_members: Vec<_> = after_vacuum
            .syndromes
            .iter()
            .map(|s| {
                let mut m = s.members.clone();
                m.sort_unstable();
                m
            })
            .collect();
        for s in &cold {
            let mut m = s.members.clone();
            m.sort_unstable();
            assert!(warm_members.contains(&m), "partition diverged: {m:?}");
        }
    }

    #[test]
    fn recluster_cache_is_not_persisted() {
        let mut db = SignatureDb::build(&sample_raw()).unwrap();
        db.recluster(2, 7).unwrap();
        let mut bytes = Vec::new();
        db.save(&mut bytes).unwrap();
        let mut back = SignatureDb::load(&bytes[..]).unwrap();
        let pass = back.recluster(2, 7).unwrap();
        assert!(!pass.warm, "a loaded database must recluster cold once");
        assert!(back.recluster(2, 7).unwrap().warm);
    }

    #[test]
    fn meta_clustering_groups_similar_syndromes() {
        let db = SignatureDb::build(&sample_raw()).unwrap();
        // Over-cluster into 4, then meta-cluster back into 2 groups.
        let syndromes = db.syndromes(4, 3).unwrap();
        let groups = SignatureDb::meta_cluster(&syndromes, 2).unwrap();
        assert_eq!(groups.len(), 4);
        // Syndromes with the same dominant label should land together.
        for (i, a) in syndromes.iter().enumerate() {
            for (j, b) in syndromes.iter().enumerate() {
                if a.dominant_label == b.dominant_label {
                    assert_eq!(groups[i], groups[j]);
                }
            }
        }
    }

    #[test]
    fn explain_surfaces_class_specific_terms() {
        let db = SignatureDb::build(&sample_raw()).unwrap();
        let syndromes = db.syndromes(2, 7).unwrap();
        for syndrome in &syndromes {
            let explanation = db.explain_syndrome(syndrome, 3);
            assert!(!explanation.is_empty());
            // Lifts are sorted descending and positive at the head.
            assert!(explanation[0].2 > 0.0);
            for pair in explanation.windows(2) {
                assert!(pair[0].2 >= pair[1].2);
            }
            // Class "a" lives on terms 0-3, class "b" on 4-7: the top
            // discriminative term must come from the right band.
            let top_term = explanation[0].0;
            match syndrome.dominant_label.as_deref() {
                Some("a") => assert!(top_term <= 3, "a-syndrome explained by {top_term}"),
                Some("b") => assert!(top_term >= 4, "b-syndrome explained by {top_term}"),
                other => panic!("unexpected label {other:?}"),
            }
        }
    }

    #[test]
    fn save_load_round_trip() {
        let db = SignatureDb::build(&sample_raw()).unwrap();
        let mut buffer = Vec::new();
        db.save(&mut buffer).unwrap();
        let restored = SignatureDb::load(&buffer[..]).unwrap();
        assert_eq!(restored.len(), db.len());
        let query = TermCounts::from_dense(&[45, 38, 28, 22, 0, 0, 0, 0]);
        assert_eq!(
            restored.classify(&query, 3).unwrap(),
            db.classify(&query, 3).unwrap()
        );
    }

    /// A raw class-A-shaped signature with a distinguishing count.
    fn raw_a(i: u64, label: Option<&str>) -> RawSignature {
        RawSignature {
            counts: vec![50 + i, 40, 30, 20, 0, 1, 0, 0],
            started_at: Nanos(i * 100),
            ended_at: Nanos((i + 1) * 100),
            label: label.map(str::to_owned),
        }
    }

    /// Compares every live incremental signature and search result with a
    /// from-scratch build over the surviving raw corpus.
    fn assert_matches_rebuild(db: &SignatureDb, surviving: &[RawSignature]) {
        let fresh = SignatureDb::build(surviving).unwrap();
        assert_eq!(db.len(), fresh.len());
        let live: Vec<usize> = (0..db.num_slots()).filter(|&d| db.is_live(d)).collect();
        for (&d, f) in live.iter().zip(fresh.signatures()) {
            assert_eq!(
                db.signatures()[d].vector,
                f.vector,
                "doc {d} vector drifted from rebuild"
            );
        }
        for probe in surviving.iter().take(4) {
            let q = probe.to_term_counts();
            let a = db.search(&q, 5).unwrap();
            let b = fresh.search(&q, 5).unwrap();
            assert_eq!(a.len(), b.len());
            for ((s1, d1), (s2, d2)) in a.iter().zip(&b) {
                assert_eq!(s1.label, s2.label);
                assert!((d1 - d2).abs() < 1e-9, "{d1} vs {d2}");
            }
            assert_eq!(db.classify(&q, 3).unwrap(), fresh.classify(&q, 3).unwrap());
        }
    }

    #[test]
    fn insert_then_refit_matches_rebuild() {
        let mut raw = sample_raw();
        let mut db = SignatureDb::build(&raw).unwrap();
        db.set_refit_policy(RefitPolicy::Manual);
        for i in 20..26u64 {
            let r = raw_a(i, Some("a"));
            let id = db.insert(&r).unwrap();
            assert_eq!(id, raw.len());
            raw.push(r);
        }
        assert_eq!(db.len(), 18);
        assert!(db.idf_drift() > 0.0 || db.mutations_since_refit() > 0);
        let stats = db.refit();
        assert_eq!(stats.epoch, 1);
        assert_eq!(db.epoch(), 1);
        assert_eq!(db.mutations_since_refit(), 0);
        assert_matches_rebuild(&db, &raw);
    }

    #[test]
    fn insert_batch_matches_sequential_inserts() {
        let raw = sample_raw();
        let mut a = SignatureDb::build(&raw).unwrap();
        let mut b = SignatureDb::build(&raw).unwrap();
        a.set_refit_policy(RefitPolicy::Manual);
        b.set_refit_policy(RefitPolicy::Manual);
        let extra: Vec<RawSignature> = (30..34).map(|i| raw_a(i, Some("a"))).collect();
        let batch_ids = a.insert_batch(&extra).unwrap();
        let single_ids: Vec<usize> = extra.iter().map(|r| b.insert(r).unwrap()).collect();
        assert_eq!(batch_ids, single_ids);
        for d in 0..a.num_slots() {
            assert_eq!(a.signatures()[d].vector, b.signatures()[d].vector);
        }
    }

    #[test]
    fn remove_hides_signature_and_updates_df() {
        let raw = sample_raw();
        let mut db = SignatureDb::build(&raw).unwrap();
        db.set_refit_policy(RefitPolicy::Manual);
        // Remove all six "b" signatures (odd doc ids).
        for d in (1..12).step_by(2) {
            db.remove(d).unwrap();
        }
        assert_eq!(db.len(), 6);
        assert_eq!(db.num_slots(), 12);
        assert!(!db.is_live(1));
        assert!(db.is_live(0));
        let b_query = TermCounts::from_dense(&[0, 0, 0, 0, 55, 48, 41, 33]);
        // No live "b" signature remains to vote.
        for (sig, _) in db.search(&b_query, 5).unwrap() {
            assert_eq!(sig.label.as_deref(), Some("a"));
        }
        db.refit();
        let surviving: Vec<RawSignature> = raw.iter().step_by(2).cloned().collect();
        assert_matches_rebuild(&db, &surviving);
        // Double removal and unknown ids are rejected.
        assert!(db.remove(1).is_err());
        assert!(db.remove(99).is_err());
    }

    #[test]
    fn threshold_policy_triggers_refit_automatically() {
        let mut db = SignatureDb::build(&sample_raw()).unwrap();
        db.set_refit_policy(RefitPolicy::Threshold {
            max_idf_drift: 0.05,
            max_stale_fraction: 0.25,
        });
        assert_eq!(db.epoch(), 0);
        // 12 docs: the fourth mutation crosses 25% staleness at the
        // latest; drift likely crosses sooner.
        for i in 0..4u64 {
            db.insert(&raw_a(40 + i, Some("a"))).unwrap();
        }
        assert!(db.epoch() >= 1, "threshold policy never fired");
        assert!(db.mutations_since_refit() < 4);
    }

    #[test]
    fn every_n_policy_counts_mutations() {
        let mut db = SignatureDb::build(&sample_raw()).unwrap();
        db.set_refit_policy(RefitPolicy::EveryN(3));
        for i in 0..2u64 {
            db.insert(&raw_a(50 + i, Some("a"))).unwrap();
        }
        assert_eq!(db.epoch(), 0);
        db.remove(0).unwrap(); // third mutation
        assert_eq!(db.epoch(), 1);
        assert_eq!(db.mutations_since_refit(), 0);
    }

    #[test]
    fn refit_without_mutations_changes_nothing() {
        let mut db = SignatureDb::build(&sample_raw()).unwrap();
        let before: Vec<SparseVec> = db.signatures().iter().map(|s| s.vector.clone()).collect();
        let stats = db.refit();
        assert_eq!(stats.changed_terms, 0);
        assert_eq!(stats.reweighted_docs, 0);
        assert_eq!(stats.max_idf_drift, 0.0);
        assert_eq!(db.epoch(), 1);
        for (s, b) in db.signatures().iter().zip(&before) {
            assert_eq!(&s.vector, b);
        }
    }

    #[test]
    fn save_load_round_trips_epoch_state() {
        let mut db = SignatureDb::build(&sample_raw()).unwrap();
        db.set_refit_policy(RefitPolicy::EveryN(100));
        db.insert(&raw_a(60, Some("a"))).unwrap();
        db.refit();
        db.insert(&raw_a(61, Some("a"))).unwrap();
        db.remove(1).unwrap();
        let mut buffer = Vec::new();
        db.save(&mut buffer).unwrap();
        let mut restored = SignatureDb::load(&buffer[..]).unwrap();
        assert_eq!(restored.epoch(), db.epoch());
        assert_eq!(restored.len(), db.len());
        assert_eq!(restored.num_slots(), db.num_slots());
        assert_eq!(restored.refit_policy(), db.refit_policy());
        assert_eq!(restored.mutations_since_refit(), db.mutations_since_refit());
        for d in 0..db.num_slots() {
            assert_eq!(restored.is_live(d), db.is_live(d));
            assert_eq!(restored.doc_epoch(d), db.doc_epoch(d));
        }
        assert!((restored.idf_drift() - db.idf_drift()).abs() < 1e-15);
        // The restored database keeps mutating identically.
        let r = raw_a(62, Some("a"));
        assert_eq!(restored.insert(&r).unwrap(), db.insert(&r).unwrap());
        assert_eq!(restored.refit(), db.refit());
    }

    #[test]
    fn vacuum_renumbers_and_matches_rebuild() {
        let raw = sample_raw();
        let mut db = SignatureDb::build(&raw).unwrap();
        db.set_refit_policy(RefitPolicy::Manual);
        // Remove all six "b" signatures (odd doc ids), leaving holes.
        for d in (1..12).step_by(2) {
            db.remove(d).unwrap();
        }
        assert_eq!(db.num_slots(), 12);
        assert!((db.dead_fraction() - 0.5).abs() < 1e-12);
        let epoch_before = db.epoch();
        let stats = db.vacuum();
        assert_eq!(stats.dropped_slots, 6);
        assert_eq!(stats.live_docs, 6);
        assert_eq!(db.num_slots(), 6, "dead slots reclaimed");
        assert_eq!(db.len(), 6);
        assert_eq!(db.dead_fraction(), 0.0);
        assert_eq!(db.vacuums(), 1);
        assert_eq!(
            db.epoch(),
            epoch_before,
            "vacuum does not advance the epoch"
        );
        assert_eq!(db.last_vacuum(), Some(&stats));
        // The remap sends live slot 2k to k and dead slots to None.
        for d in 0..12 {
            if d % 2 == 0 {
                assert_eq!(stats.remap[d], Some(d / 2));
            } else {
                assert_eq!(stats.remap[d], None);
            }
        }
        // Renumbered ids are live and freshly dense.
        for d in 0..6 {
            assert!(db.is_live(d));
        }
        // After a refit (the stored vectors still carry the pre-removal
        // idf generation) the compacted database behaves exactly like a
        // fresh build over the survivors.
        db.refit();
        let surviving: Vec<RawSignature> = raw.iter().step_by(2).cloned().collect();
        assert_matches_rebuild(&db, &surviving);
        let syndromes = db.syndromes(1, 7).unwrap();
        assert_eq!(syndromes[0].members.len(), 6);
        // Ids keep extending densely after the vacuum.
        let id = db.insert(&raw_a(70, Some("a"))).unwrap();
        assert_eq!(id, 6);
    }

    #[test]
    fn vacuum_after_refit_churn_matches_rebuild() {
        // Vacuum on a database whose epochs are mid-drift: insert, refit,
        // insert more (stale docs at mixed epochs), remove some, vacuum.
        let mut raw = sample_raw();
        let mut db = SignatureDb::build(&raw).unwrap();
        db.set_refit_policy(RefitPolicy::Manual);
        for i in 20..24u64 {
            let r = raw_a(i, Some("a"));
            db.insert(&r).unwrap();
            raw.push(r);
        }
        db.refit();
        for i in 24..28u64 {
            let r = raw_a(i, Some("a"));
            db.insert(&r).unwrap();
            raw.push(r);
        }
        for d in [0usize, 5, 13, 17] {
            db.remove(d).unwrap();
        }
        let stats = db.vacuum();
        assert_eq!(stats.dropped_slots, 4);
        // Per-doc epochs carry over through the renumbering.
        assert!(db.signatures().len() == db.len());
        let surviving: Vec<RawSignature> = (0..raw.len())
            .filter(|d| ![0usize, 5, 13, 17].contains(d))
            .map(|d| raw[d].clone())
            .collect();
        db.refit();
        assert_matches_rebuild(&db, &surviving);
    }

    #[test]
    fn vacuum_policy_triggers_on_dead_fraction() {
        let mut db = SignatureDb::build(&sample_raw()).unwrap();
        db.set_refit_policy(RefitPolicy::Manual);
        db.set_vacuum_policy(VacuumPolicy::DeadFraction {
            max_dead_fraction: 0.25,
            min_dead: 3,
        });
        assert_eq!(db.vacuum_policy(), db.vacuum_policy());
        db.remove(1).unwrap();
        db.remove(3).unwrap();
        // 2 dead of 12 slots: under both bounds, nothing happens.
        assert_eq!(db.num_slots(), 12);
        assert!(db.last_vacuum().is_none());
        // Third removal crosses min_dead and the 25% fraction.
        db.remove(5).unwrap();
        assert_eq!(db.vacuums(), 1);
        assert_eq!(db.num_slots(), 9, "auto-vacuum compacted the slots");
        let stats = db.last_vacuum().expect("auto-vacuum records its remap");
        assert_eq!(stats.dropped_slots, 3);
        assert_eq!(stats.remap.len(), 12);
        assert_eq!(stats.remap[1], None);
        assert_eq!(stats.remap[2], Some(1));
    }

    #[test]
    fn vacuum_on_clean_database_is_identity() {
        let mut db = SignatureDb::build(&sample_raw()).unwrap();
        let before: Vec<SparseVec> = db.signatures().iter().map(|s| s.vector.clone()).collect();
        let stats = db.vacuum();
        assert_eq!(stats.dropped_slots, 0);
        assert_eq!(stats.live_docs, 12);
        assert!(stats.remap.iter().enumerate().all(|(d, m)| *m == Some(d)));
        for (s, b) in db.signatures().iter().zip(&before) {
            assert_eq!(&s.vector, b);
        }
        let query = TermCounts::from_dense(&[45, 38, 28, 22, 0, 0, 0, 0]);
        assert_eq!(db.classify(&query, 3).unwrap().as_deref(), Some("a"));
    }

    #[test]
    fn save_load_round_trips_vacuum_state() {
        let mut db = SignatureDb::build(&sample_raw()).unwrap();
        db.set_refit_policy(RefitPolicy::Manual);
        db.set_vacuum_policy(VacuumPolicy::DeadFraction {
            max_dead_fraction: 0.9,
            min_dead: 100,
        });
        db.remove(2).unwrap();
        db.vacuum();
        let mut buffer = Vec::new();
        db.save(&mut buffer).unwrap();
        let restored = SignatureDb::load(&buffer[..]).unwrap();
        assert_eq!(restored.vacuum_policy(), db.vacuum_policy());
        assert_eq!(restored.vacuums(), 1);
        assert_eq!(restored.num_slots(), db.num_slots());
        assert!(
            restored.last_vacuum().is_none(),
            "the remap is process-local state"
        );
    }

    #[test]
    fn syndromes_ignore_removed_signatures() {
        let mut db = SignatureDb::build(&sample_raw()).unwrap();
        db.set_refit_policy(RefitPolicy::Manual);
        for d in (1..12).step_by(2) {
            db.remove(d).unwrap();
        }
        db.refit();
        let syndromes = db.syndromes(1, 7).unwrap();
        assert_eq!(syndromes[0].members.len(), 6);
        assert!(syndromes[0].members.iter().all(|&m| db.is_live(m)));
        assert_eq!(syndromes[0].dominant_label.as_deref(), Some("a"));
    }
}
