use std::collections::HashMap;
use std::io::{Read, Write};

use fmeter_ir::{
    Corpus, InvertedIndex, SearchScratch, SparseVec, TermCounts, TfIdfModel, TfIdfOptions,
};
use fmeter_ml::{KMeans, Linkage};
use serde::{Deserialize, Serialize};

use crate::{FmeterError, RawSignature, Signature};

/// A syndrome: the centroid of a cluster of signatures, labelled with the
/// cluster's dominant class.
///
/// "The centroid of a cluster of signatures can then be used as a
/// syndrome which characterizes a manifestation of a common behavior"
/// (paper §2.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Syndrome {
    /// Cluster centroid in tf-idf space.
    pub centroid: SparseVec,
    /// Most frequent label among member signatures (`None` if members are
    /// unlabelled).
    pub dominant_label: Option<String>,
    /// Indices (into the database) of the member signatures.
    pub members: Vec<usize>,
}

/// A labelled database of indexable signatures.
///
/// This is the paper's envisioned operator workflow (§2.2): signatures
/// from forensically identified behaviours are labelled and stored; new
/// signatures are compared against the database by similarity search,
/// classified, or clustered into syndromes.
///
/// Build it from raw daemon output with [`SignatureDb::build`]: the
/// tf-idf model is fitted on the full corpus, every signature is
/// transformed and indexed.
#[derive(Debug, Serialize, Deserialize)]
pub struct SignatureDb {
    model: TfIdfModel,
    signatures: Vec<Signature>,
    index: InvertedIndex,
}

impl SignatureDb {
    /// Fits tf-idf over `raw` and indexes every signature.
    ///
    /// # Errors
    ///
    /// Returns [`FmeterError::NoSignatures`] when `raw` is empty.
    pub fn build(raw: &[RawSignature]) -> Result<Self, FmeterError> {
        Self::build_with(raw, TfIdfOptions::default())
    }

    /// Fits with explicit tf/idf options (used by the weighting-scheme
    /// ablation).
    ///
    /// # Errors
    ///
    /// Returns [`FmeterError::NoSignatures`] when `raw` is empty.
    pub fn build_with(raw: &[RawSignature], options: TfIdfOptions) -> Result<Self, FmeterError> {
        let first = raw.first().ok_or(FmeterError::NoSignatures)?;
        let dim = first.counts.len();
        let mut corpus = Corpus::new(dim);
        for r in raw {
            corpus.push(r.to_term_counts());
        }
        let model = TfIdfModel::fit_with(&corpus, options)?;
        let mut signatures = Vec::with_capacity(raw.len());
        let mut index = InvertedIndex::new(dim);
        for (r, doc) in raw.iter().zip(corpus.iter()) {
            let vector = model.transform(doc);
            index.insert(vector.clone())?;
            signatures.push(Signature {
                vector,
                label: r.label.clone(),
                started_at: r.started_at,
                ended_at: r.ended_at,
            });
        }
        // Bulk load finished: fold any tail postings into the flat buffer
        // so queries stream one contiguous region.
        index.optimize();
        Ok(SignatureDb {
            model,
            signatures,
            index,
        })
    }

    /// Number of stored signatures.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// Returns `true` when the database is empty (never for built DBs).
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// Dimensionality of the signature space.
    pub fn dim(&self) -> usize {
        self.model.dim()
    }

    /// The fitted tf-idf model.
    pub fn model(&self) -> &TfIdfModel {
        &self.model
    }

    /// The stored signatures, in insertion order.
    pub fn signatures(&self) -> &[Signature] {
        &self.signatures
    }

    /// Transforms raw interval counts with the database's tf-idf model
    /// (for querying with fresh, unlabelled intervals).
    pub fn transform(&self, counts: &TermCounts) -> SparseVec {
        self.model.transform(counts)
    }

    /// Finds the `k` most similar stored signatures to a fresh interval.
    ///
    /// Goes through [`InvertedIndex::search`], which at database scale
    /// dispatches to the WAND early-exit top-k (per-term impact bounds
    /// skip every signature that cannot reach the current k-th best
    /// similarity). For a steady query stream, prefer
    /// [`search_with`](Self::search_with) with a long-lived scratch.
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches.
    pub fn search(
        &self,
        counts: &TermCounts,
        k: usize,
    ) -> Result<Vec<(&Signature, f64)>, FmeterError> {
        self.search_with(counts, k, &mut SearchScratch::new())
    }

    /// Like [`search`](Self::search) but reuses `scratch` across calls,
    /// so a daemon querying the database continuously performs no
    /// per-query candidate allocations.
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches.
    pub fn search_with(
        &self,
        counts: &TermCounts,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> Result<Vec<(&Signature, f64)>, FmeterError> {
        let query = self.transform(counts);
        let hits = self.index.search_with(&query, k, scratch)?;
        Ok(hits
            .into_iter()
            .map(|h| (&self.signatures[h.doc], h.score))
            .collect())
    }

    /// Classifies a fresh interval by majority label among its `k`
    /// nearest stored signatures. Returns `None` when no labelled
    /// neighbour is found.
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches.
    pub fn classify(&self, counts: &TermCounts, k: usize) -> Result<Option<String>, FmeterError> {
        let hits = self.search(counts, k)?;
        let mut votes: HashMap<&str, usize> = HashMap::new();
        for (sig, _) in &hits {
            if let Some(label) = sig.label.as_deref() {
                *votes.entry(label).or_default() += 1;
            }
        }
        Ok(votes
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(label, _)| label.to_string()))
    }

    /// Clusters all signatures into `k` syndromes with seeded K-means.
    ///
    /// # Errors
    ///
    /// Propagates clustering failures (e.g. fewer signatures than `k`).
    pub fn syndromes(&self, k: usize, seed: u64) -> Result<Vec<Syndrome>, FmeterError> {
        let vectors: Vec<SparseVec> = self.signatures.iter().map(|s| s.vector.clone()).collect();
        let result = KMeans::new(k).seed(seed).restarts(3).run(&vectors)?;
        let mut syndromes: Vec<Syndrome> = result
            .centroids
            .into_iter()
            .map(|centroid| Syndrome {
                centroid,
                dominant_label: None,
                members: Vec::new(),
            })
            .collect();
        for (i, &cluster) in result.assignments.iter().enumerate() {
            syndromes[cluster].members.push(i);
        }
        for syndrome in &mut syndromes {
            let mut votes: HashMap<&str, usize> = HashMap::new();
            for &m in &syndrome.members {
                if let Some(label) = self.signatures[m].label.as_deref() {
                    *votes.entry(label).or_default() += 1;
                }
            }
            syndrome.dominant_label = votes
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(a.0)))
                .map(|(l, _)| l.to_string());
        }
        Ok(syndromes)
    }

    /// Meta-clustering (paper §2.2, §6): clusters syndrome *centroids*
    /// hierarchically to discover which entire behaviour classes are
    /// similar in how they use the kernel. Returns per-syndrome group
    /// assignments for `groups` groups.
    ///
    /// # Errors
    ///
    /// Propagates clustering failures.
    pub fn meta_cluster(syndromes: &[Syndrome], groups: usize) -> Result<Vec<usize>, FmeterError> {
        let centroids: Vec<SparseVec> = syndromes.iter().map(|s| s.centroid.clone()).collect();
        let tree = fmeter_ml::Agglomerative::new(Linkage::Average).fit(&centroids)?;
        Ok(tree.cut(groups))
    }

    /// The `k` most discriminative functions of a syndrome: the terms
    /// whose centroid weight most exceeds the corpus-wide mean weight.
    ///
    /// This is what an operator reads when labelling a syndrome — "this
    /// cluster is the one hammering the journal commit path". Returns
    /// `(term id, centroid weight, lift over corpus mean)` sorted by
    /// lift; map term ids to names with the kernel's symbol table or a
    /// parsed [`SymbolMap`](crate::SymbolMap).
    pub fn explain_syndrome(&self, syndrome: &Syndrome, k: usize) -> Vec<(u32, f64, f64)> {
        // Corpus mean weight per term.
        let mut mean = vec![0.0f64; self.dim()];
        for s in &self.signatures {
            for (t, w) in s.vector.iter() {
                mean[t as usize] += w;
            }
        }
        let n = self.signatures.len().max(1) as f64;
        for m in &mut mean {
            *m /= n;
        }
        let mut ranked: Vec<(u32, f64, f64)> = syndrome
            .centroid
            .iter()
            .map(|(t, w)| (t, w, w - mean[t as usize]))
            .collect();
        ranked.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// Serialises the database as JSON.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialisation failures.
    pub fn save<W: Write>(&self, writer: W) -> Result<(), FmeterError> {
        serde_json::to_writer(writer, self)?;
        Ok(())
    }

    /// Loads a database previously written by [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialisation failures.
    pub fn load<R: Read>(reader: R) -> Result<Self, FmeterError> {
        Ok(serde_json::from_reader(reader)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmeter_kernel_sim::Nanos;

    /// Two synthetic behaviour classes over an 8-function space.
    fn sample_raw() -> Vec<RawSignature> {
        let mut raw = Vec::new();
        for i in 0..6u64 {
            // Class A: functions 0-3 hot.
            raw.push(RawSignature {
                counts: vec![50 + i, 40, 30, 20, 0, 1, 0, 0],
                started_at: Nanos(i * 100),
                ended_at: Nanos((i + 1) * 100),
                label: Some("a".into()),
            });
            // Class B: functions 4-7 hot.
            raw.push(RawSignature {
                counts: vec![0, 1, 0, 0, 60, 50 + i, 40, 30],
                started_at: Nanos(i * 100),
                ended_at: Nanos((i + 1) * 100),
                label: Some("b".into()),
            });
        }
        raw
    }

    #[test]
    fn build_indexes_everything() {
        let db = SignatureDb::build(&sample_raw()).unwrap();
        assert_eq!(db.len(), 12);
        assert_eq!(db.dim(), 8);
        assert!(!db.is_empty());
        assert_eq!(db.signatures().len(), 12);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(
            SignatureDb::build(&[]),
            Err(FmeterError::NoSignatures)
        ));
    }

    #[test]
    fn search_finds_same_class() {
        let db = SignatureDb::build(&sample_raw()).unwrap();
        let query = TermCounts::from_dense(&[45, 38, 28, 22, 0, 0, 0, 0]);
        let hits = db.search(&query, 3).unwrap();
        assert_eq!(hits.len(), 3);
        for (sig, score) in &hits {
            assert_eq!(sig.label.as_deref(), Some("a"));
            assert!(*score > 0.5);
        }
    }

    #[test]
    fn search_with_scratch_reuse_matches_search() {
        let db = SignatureDb::build(&sample_raw()).unwrap();
        let mut scratch = SearchScratch::new();
        for dense in [
            [45u64, 38, 28, 22, 0, 0, 0, 0],
            [0, 0, 0, 0, 55, 48, 41, 33],
        ] {
            let query = TermCounts::from_dense(&dense);
            let fresh = db.search(&query, 4).unwrap();
            let reused = db.search_with(&query, 4, &mut scratch).unwrap();
            assert_eq!(fresh.len(), reused.len());
            for ((s1, d1), (s2, d2)) in fresh.iter().zip(&reused) {
                assert_eq!(s1.label, s2.label);
                assert_eq!(d1, d2);
            }
        }
    }

    #[test]
    fn classify_votes_by_neighbours() {
        let db = SignatureDb::build(&sample_raw()).unwrap();
        let a_query = TermCounts::from_dense(&[45, 38, 28, 22, 0, 0, 0, 0]);
        assert_eq!(db.classify(&a_query, 5).unwrap().as_deref(), Some("a"));
        let b_query = TermCounts::from_dense(&[0, 0, 0, 0, 55, 48, 41, 33]);
        assert_eq!(db.classify(&b_query, 5).unwrap().as_deref(), Some("b"));
    }

    #[test]
    fn syndromes_recover_classes() {
        let db = SignatureDb::build(&sample_raw()).unwrap();
        let syndromes = db.syndromes(2, 7).unwrap();
        assert_eq!(syndromes.len(), 2);
        let labels: Vec<_> = syndromes
            .iter()
            .map(|s| s.dominant_label.clone().unwrap())
            .collect();
        assert!(labels.contains(&"a".to_string()));
        assert!(labels.contains(&"b".to_string()));
        // Each syndrome has 6 members, all of its class.
        for s in &syndromes {
            assert_eq!(s.members.len(), 6);
        }
    }

    #[test]
    fn meta_clustering_groups_similar_syndromes() {
        let db = SignatureDb::build(&sample_raw()).unwrap();
        // Over-cluster into 4, then meta-cluster back into 2 groups.
        let syndromes = db.syndromes(4, 3).unwrap();
        let groups = SignatureDb::meta_cluster(&syndromes, 2).unwrap();
        assert_eq!(groups.len(), 4);
        // Syndromes with the same dominant label should land together.
        for (i, a) in syndromes.iter().enumerate() {
            for (j, b) in syndromes.iter().enumerate() {
                if a.dominant_label == b.dominant_label {
                    assert_eq!(groups[i], groups[j]);
                }
            }
        }
    }

    #[test]
    fn explain_surfaces_class_specific_terms() {
        let db = SignatureDb::build(&sample_raw()).unwrap();
        let syndromes = db.syndromes(2, 7).unwrap();
        for syndrome in &syndromes {
            let explanation = db.explain_syndrome(syndrome, 3);
            assert!(!explanation.is_empty());
            // Lifts are sorted descending and positive at the head.
            assert!(explanation[0].2 > 0.0);
            for pair in explanation.windows(2) {
                assert!(pair[0].2 >= pair[1].2);
            }
            // Class "a" lives on terms 0-3, class "b" on 4-7: the top
            // discriminative term must come from the right band.
            let top_term = explanation[0].0;
            match syndrome.dominant_label.as_deref() {
                Some("a") => assert!(top_term <= 3, "a-syndrome explained by {top_term}"),
                Some("b") => assert!(top_term >= 4, "b-syndrome explained by {top_term}"),
                other => panic!("unexpected label {other:?}"),
            }
        }
    }

    #[test]
    fn save_load_round_trip() {
        let db = SignatureDb::build(&sample_raw()).unwrap();
        let mut buffer = Vec::new();
        db.save(&mut buffer).unwrap();
        let restored = SignatureDb::load(&buffer[..]).unwrap();
        assert_eq!(restored.len(), db.len());
        let query = TermCounts::from_dense(&[45, 38, 28, 22, 0, 0, 0, 0]);
        assert_eq!(
            restored.classify(&query, 3).unwrap(),
            db.classify(&query, 3).unwrap()
        );
    }
}
