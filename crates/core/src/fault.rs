//! Deterministic IO fault injection for the durability layer.
//!
//! The testing posture here follows the kernel-fuzzing literature:
//! don't *hope* a write completed — inject the failure at a chosen byte
//! and prove recovery. Every wrapper in this module is deterministic
//! (no clocks, no randomness), so a failing case replays exactly.
//!
//! * [`FailpointFile`] wraps any [`Write`] with a scripted [`FailPlan`]
//!   (kill-at-byte-N, short writes, injected errors, failing syncs);
//! * [`CrashWriter`] is the common case — persist exactly the first `n`
//!   bytes, then fail every write, simulating a process killed
//!   mid-write (a *torn* write: the prefix survives);
//! * [`ShortWriter`] caps every `write` call, exercising the
//!   `write_all` retry loops that real kernels exercise on `ENOSPC`-ish
//!   partial writes.
//!
//! [`DurableLog`](crate::wal::DurableLog) accepts a [`FailPlan`] for
//! its WAL and checkpoint paths, which is how the kill-and-replay suite
//! and the degraded-mode tests drive failures through the *real* code
//! paths rather than mocks.

use std::io::{self, Write};

use crate::wal::WalSink;

/// A deterministic script of IO failures for [`FailpointFile`].
///
/// The default plan injects nothing (every field off), so a
/// `FailpointFile` with a default plan is a transparent pass-through.
#[derive(Debug, Clone, Default)]
pub struct FailPlan {
    /// Cumulative byte offset at which writes start failing. The write
    /// call that crosses the boundary persists the prefix below it and
    /// reports it written (a torn write); the next call fails. `Some(0)`
    /// fails every write immediately.
    pub kill_at_byte: Option<u64>,
    /// Cap each `write` call to at most this many bytes, forcing the
    /// caller's `write_all` loop to retry (never silently drops data).
    pub short_write: Option<usize>,
    /// Fail the nth `write` call (0-based, counted per wrapper) with an
    /// injected [`io::Error`], without writing anything.
    pub fail_nth_write: Option<u64>,
    /// Make every `sync`/`flush` fail with an injected error.
    pub fail_syncs: bool,
}

impl FailPlan {
    /// A plan that kills the writer at cumulative byte `n`.
    pub fn kill_at(n: u64) -> Self {
        FailPlan {
            kill_at_byte: Some(n),
            ..FailPlan::default()
        }
    }
}

fn injected(what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what}"))
}

/// A [`Write`] wrapper that fails according to a [`FailPlan`].
#[derive(Debug)]
pub struct FailpointFile<W> {
    inner: W,
    plan: FailPlan,
    written: u64,
    calls: u64,
}

impl<W: Write> FailpointFile<W> {
    /// Wraps `inner` with the given failure script.
    pub fn new(inner: W, plan: FailPlan) -> Self {
        FailpointFile {
            inner,
            plan,
            written: 0,
            calls: 0,
        }
    }

    /// Total bytes successfully handed to the inner writer.
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    /// Consumes the wrapper, returning the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FailpointFile<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let call = self.calls;
        self.calls += 1;
        if self.plan.fail_nth_write == Some(call) {
            return Err(injected(&format!("write call {call}")));
        }
        let mut n = buf.len();
        if let Some(cap) = self.plan.short_write {
            // A zero cap would make write_all spin forever; clamp to 1.
            n = n.min(cap.max(1));
        }
        if let Some(kill) = self.plan.kill_at_byte {
            let remaining = kill.saturating_sub(self.written);
            if remaining == 0 && !buf.is_empty() {
                return Err(injected(&format!("crash at byte {kill}")));
            }
            n = n.min(remaining as usize);
        }
        let n = self.inner.write(&buf[..n])?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.plan.fail_syncs {
            return Err(injected("flush"));
        }
        self.inner.flush()
    }
}

impl<W: WalSink> WalSink for FailpointFile<W> {
    fn sync(&mut self) -> io::Result<()> {
        if self.plan.fail_syncs {
            return Err(injected("sync"));
        }
        self.inner.sync()
    }
}

/// A [`Write`] wrapper that persists exactly the first `n` bytes and
/// fails everything after — a process killed mid-write.
#[derive(Debug)]
pub struct CrashWriter<W>(FailpointFile<W>);

impl<W: Write> CrashWriter<W> {
    /// Kills the writer once `kill_at_byte` cumulative bytes went
    /// through; the crossing write persists its prefix (a torn write).
    pub fn new(inner: W, kill_at_byte: u64) -> Self {
        CrashWriter(FailpointFile::new(inner, FailPlan::kill_at(kill_at_byte)))
    }

    /// Bytes that made it to the inner writer before the crash.
    pub fn bytes_written(&self) -> u64 {
        self.0.bytes_written()
    }

    /// Consumes the wrapper, returning the inner writer.
    pub fn into_inner(self) -> W {
        self.0.into_inner()
    }
}

impl<W: Write> Write for CrashWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

impl<W: WalSink> WalSink for CrashWriter<W> {
    fn sync(&mut self) -> io::Result<()> {
        self.0.sync()
    }
}

/// A [`Write`] wrapper that caps every `write` call at `max` bytes,
/// forcing callers to handle partial writes.
#[derive(Debug)]
pub struct ShortWriter<W>(FailpointFile<W>);

impl<W: Write> ShortWriter<W> {
    /// Caps each `write` call at `max` bytes (at least 1).
    pub fn new(inner: W, max: usize) -> Self {
        ShortWriter(FailpointFile::new(
            inner,
            FailPlan {
                short_write: Some(max),
                ..FailPlan::default()
            },
        ))
    }

    /// Consumes the wrapper, returning the inner writer.
    pub fn into_inner(self) -> W {
        self.0.into_inner()
    }
}

impl<W: Write> Write for ShortWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

impl<W: WalSink> WalSink for ShortWriter<W> {
    fn sync(&mut self) -> io::Result<()> {
        self.0.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_writer_persists_exactly_the_prefix() {
        let mut w = CrashWriter::new(Vec::new(), 5);
        assert!(w.write_all(b"abc").is_ok());
        // The crossing write persists 2 bytes, then the retry fails.
        assert!(w.write_all(b"defg").is_err());
        assert_eq!(w.bytes_written(), 5);
        assert_eq!(w.into_inner(), b"abcde");
    }

    #[test]
    fn crash_at_zero_fails_every_write() {
        let mut w = CrashWriter::new(Vec::new(), 0);
        assert!(w.write_all(b"x").is_err());
        assert_eq!(w.into_inner(), b"");
    }

    #[test]
    fn short_writer_never_drops_bytes_under_write_all() {
        let mut w = ShortWriter::new(Vec::new(), 3);
        w.write_all(b"hello durable world").unwrap();
        assert_eq!(w.into_inner(), b"hello durable world");
    }

    #[test]
    fn failpoint_nth_write_and_syncs() {
        let plan = FailPlan {
            fail_nth_write: Some(1),
            fail_syncs: true,
            ..FailPlan::default()
        };
        let mut w = FailpointFile::new(Vec::new(), plan);
        assert!(w.write(b"ok").is_ok());
        assert!(w.write(b"boom").is_err());
        assert!(w.write(b"fine again").is_ok());
        assert!(w.flush().is_err());
        assert!(WalSink::sync(&mut w).is_err());
    }
}
