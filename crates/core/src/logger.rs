use std::sync::Arc;

use fmeter_kernel_sim::{CpuId, Kernel, Nanos};
use fmeter_trace::{DeltaCursor, FmeterTracer};
use fmeter_workloads::Workload;

use crate::{FmeterError, RawSignature};

/// The user-space logging daemon (paper §3): periodically reads the
/// function invocation counts and emits the difference between
/// consecutive snapshots as a [`RawSignature`].
///
/// The daemon "reads all kernel function invocation counts twice (before
/// and after the time interval) and generates the difference between
/// them"; the interval is a configuration parameter (2–10 s in the
/// paper). Because the tf term frequency is length-normalised, the exact
/// interval does not skew signatures.
///
/// Interval state lives in a trace-layer [`DeltaCursor`], so the same
/// rolling-delta mechanics are available to daemons that bypass this
/// logger and feed an incremental signature database directly.
#[derive(Debug)]
pub struct SignatureLogger {
    tracer: Arc<FmeterTracer>,
    interval: Nanos,
    cursor: DeltaCursor,
}

impl SignatureLogger {
    /// Creates a logger sampling every `interval` of *simulated* time,
    /// starting from the tracer's current state.
    pub fn new(tracer: Arc<FmeterTracer>, interval: Nanos, now: Nanos) -> Self {
        assert!(interval > Nanos::ZERO, "logging interval must be positive");
        let cursor = DeltaCursor::new(tracer.snapshot(now));
        SignatureLogger {
            tracer,
            interval,
            cursor,
        }
    }

    /// The configured logging interval.
    pub fn interval(&self) -> Nanos {
        self.interval
    }

    /// Drives `workload` until one interval of simulated time has
    /// elapsed, then emits the signature for that interval.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors from workload steps.
    pub fn collect_one<W: Workload + ?Sized>(
        &mut self,
        kernel: &mut Kernel,
        workload: &mut W,
        cpus: &[CpuId],
        label: Option<&str>,
    ) -> Result<RawSignature, FmeterError> {
        assert!(
            !cpus.is_empty(),
            "need at least one CPU to run the workload on"
        );
        let deadline = self.cursor.previous().taken_at() + self.interval;
        let mut i = 0usize;
        while kernel.now() < deadline {
            let cpu = cpus[i % cpus.len()];
            workload.step(kernel, cpu)?;
            i += 1;
        }
        let (counts, started_at, ended_at) =
            self.cursor.advance(self.tracer.snapshot(kernel.now()));
        Ok(RawSignature {
            counts,
            started_at,
            ended_at,
            label: label.map(str::to_owned),
        })
    }

    /// Collects `count` consecutive signatures.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors from workload steps.
    pub fn collect<W: Workload + ?Sized>(
        &mut self,
        kernel: &mut Kernel,
        workload: &mut W,
        cpus: &[CpuId],
        count: usize,
        label: Option<&str>,
    ) -> Result<Vec<RawSignature>, FmeterError> {
        (0..count)
            .map(|_| self.collect_one(kernel, workload, cpus, label))
            .collect()
    }

    /// Re-bases the logger on the tracer's current state (e.g. after a
    /// workload change, to avoid a mixed-interval signature).
    pub fn resync(&mut self, now: Nanos) {
        self.cursor.rebase(self.tracer.snapshot(now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmeter_kernel_sim::{KernelConfig, KernelOp};
    use fmeter_workloads::Dbench;

    fn setup() -> (Kernel, Arc<FmeterTracer>) {
        let mut kernel = Kernel::new(KernelConfig {
            num_cpus: 2,
            seed: 21,
            timer_hz: 1000,
            image_seed: 0x2628,
        })
        .unwrap();
        let tracer = Arc::new(FmeterTracer::with_cpus(kernel.symbols(), 2));
        kernel.set_tracer(tracer.clone());
        (kernel, tracer)
    }

    #[test]
    fn signatures_cover_disjoint_intervals() {
        let (mut kernel, tracer) = setup();
        let mut logger = SignatureLogger::new(tracer, Nanos::from_millis(5), kernel.now());
        let mut workload = Dbench::new(3);
        let sigs = logger
            .collect(&mut kernel, &mut workload, &[CpuId(0)], 4, Some("dbench"))
            .unwrap();
        assert_eq!(sigs.len(), 4);
        for pair in sigs.windows(2) {
            assert_eq!(pair[0].ended_at, pair[1].started_at);
        }
        for s in &sigs {
            assert!(s.interval() >= Nanos::from_millis(5));
            assert!(s.total_calls() > 0);
            assert_eq!(s.label.as_deref(), Some("dbench"));
        }
    }

    #[test]
    fn delta_only_counts_new_calls() {
        let (mut kernel, tracer) = setup();
        // Pre-existing activity before the logger attaches.
        kernel
            .run_op(CpuId(0), KernelOp::Fork { pages: 64 })
            .unwrap();
        let before_total = tracer.snapshot(kernel.now()).total();
        assert!(before_total > 0);
        let mut logger = SignatureLogger::new(tracer, Nanos::from_millis(2), kernel.now());
        let mut workload = Dbench::new(4);
        let sig = logger
            .collect_one(&mut kernel, &mut workload, &[CpuId(0)], None)
            .unwrap();
        // The fork calls predate the logger and must not leak in.
        let dbench_calls = sig.total_calls();
        assert!(dbench_calls > 0);
        let after_total = sig.counts.iter().sum::<u64>() + before_total;
        assert!(after_total <= before_total + dbench_calls + 1);
    }

    #[test]
    fn resync_skips_interim_activity() {
        let (mut kernel, tracer) = setup();
        let mut logger = SignatureLogger::new(tracer, Nanos::from_millis(1), kernel.now());
        // Unlogged burst.
        for _ in 0..10 {
            kernel
                .run_op(CpuId(0), KernelOp::Fork { pages: 64 })
                .unwrap();
        }
        logger.resync(kernel.now());
        let mut workload = Dbench::new(5);
        let sig = logger
            .collect_one(&mut kernel, &mut workload, &[CpuId(0)], None)
            .unwrap();
        // Signature must reflect dbench-scale activity, not the forks.
        let fork_entry = kernel.symbols().lookup("copy_page_range").unwrap();
        assert_eq!(
            sig.counts[fork_entry.index()],
            0,
            "resync should have discarded the fork burst"
        );
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_interval_panics() {
        let (kernel, tracer) = setup();
        let _ = SignatureLogger::new(tracer, Nanos::ZERO, kernel.now());
    }
}
