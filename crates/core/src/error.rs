use std::error::Error;
use std::fmt;

use fmeter_ir::IrError;
use fmeter_kernel_sim::KernelError;
use fmeter_ml::MlError;

/// Errors produced by the Fmeter core crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum FmeterError {
    /// The simulated kernel rejected an operation.
    Kernel(KernelError),
    /// A vector-space operation failed.
    Ir(IrError),
    /// A learning operation failed.
    Ml(MlError),
    /// No signatures were available where at least one is required.
    NoSignatures,
    /// Signature persistence failed.
    Persist(String),
    /// A persisted envelope is structurally damaged: a section is
    /// shorter than its declared length (truncated / mid-write file) or
    /// its payload no longer matches the checksum recorded in the
    /// header. `expected`/`got` are byte lengths for truncation and
    /// CRC32 values for checksum mismatches.
    CorruptEnvelope {
        /// Name of the first damaged section (e.g. `"signatures"`).
        section: String,
        /// Declared byte length, or the checksum recorded in the header.
        expected: u64,
        /// Bytes actually present, or the checksum recomputed from the
        /// payload on disk.
        got: u64,
    },
    /// A persisted database names a format version this build does not
    /// know how to read or write (e.g. written by a newer release; see
    /// [`persist::FORMAT_VERSIONS`](crate::persist::FORMAT_VERSIONS)).
    UnsupportedFormat {
        /// The version tag found in (or requested for) the file.
        found: u32,
        /// The newest version this build supports.
        supported: u32,
    },
}

impl fmt::Display for FmeterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FmeterError::Kernel(e) => write!(f, "kernel error: {e}"),
            FmeterError::Ir(e) => write!(f, "vector space error: {e}"),
            FmeterError::Ml(e) => write!(f, "learning error: {e}"),
            FmeterError::NoSignatures => write!(f, "no signatures collected"),
            FmeterError::Persist(msg) => write!(f, "persistence error: {msg}"),
            FmeterError::CorruptEnvelope {
                section,
                expected,
                got,
            } => write!(
                f,
                "corrupt envelope: section `{section}` expected {expected}, got {got}"
            ),
            FmeterError::UnsupportedFormat { found, supported } => write!(
                f,
                "unsupported database format version {found} (this build supports up to {supported})"
            ),
        }
    }
}

impl Error for FmeterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FmeterError::Kernel(e) => Some(e),
            FmeterError::Ir(e) => Some(e),
            FmeterError::Ml(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<KernelError> for FmeterError {
    fn from(e: KernelError) -> Self {
        FmeterError::Kernel(e)
    }
}

#[doc(hidden)]
impl From<IrError> for FmeterError {
    fn from(e: IrError) -> Self {
        FmeterError::Ir(e)
    }
}

#[doc(hidden)]
impl From<MlError> for FmeterError {
    fn from(e: MlError) -> Self {
        FmeterError::Ml(e)
    }
}

#[doc(hidden)]
impl From<serde_json::Error> for FmeterError {
    fn from(e: serde_json::Error) -> Self {
        FmeterError::Persist(e.to_string())
    }
}

#[doc(hidden)]
impl From<std::io::Error> for FmeterError {
    fn from(e: std::io::Error) -> Self {
        FmeterError::Persist(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e = FmeterError::from(KernelError::UnknownFunction("x".into()));
        assert!(e.to_string().contains("kernel error"));
        assert!(Error::source(&e).is_some());
        let e = FmeterError::from(IrError::EmptyCorpus);
        assert!(e.to_string().contains("vector space"));
        let e = FmeterError::from(MlError::EmptyInput);
        assert!(e.to_string().contains("learning"));
        assert_eq!(
            FmeterError::NoSignatures.to_string(),
            "no signatures collected"
        );
        let e = FmeterError::CorruptEnvelope {
            section: "signatures".into(),
            expected: 100,
            got: 7,
        };
        assert_eq!(
            e.to_string(),
            "corrupt envelope: section `signatures` expected 100, got 7"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FmeterError>();
    }
}
