//! Property suite for the block-max search path and the 8-bit
//! quantized impact representation.
//!
//! Three contracts, mirroring `docs/SEARCH.md`:
//!
//! 1. **Bit-identity.** Unquantized `search_block_max` returns the same
//!    documents with bit-identical (`f64::to_bits`) scores as
//!    `search_exhaustive`, over arbitrary corpora × k × removals ×
//!    score ties and both compaction states. Block maxima and term
//!    bounds only ever *skip* documents that provably cannot enter the
//!    top-k; surviving candidates are scored by the same accumulation
//!    order.
//! 2. **Block metadata.** Per-block maxima always equal a reference
//!    recomputed from the normalised source vectors after any mutation
//!    sequence.
//! 3. **Quantized recall.** With `QuantizationMode::Int8`, search stays
//!    internally exact (bit-identical to the quantized index's own
//!    exhaustive scan) and recall@10 against the exact-`f64` ranking
//!    stays ≥ 0.99 on a 50-class synthetic corpus.

use fmeter_ir::{InvertedIndex, QuantizationMode, SearchScratch, SparseVec};
use proptest::prelude::*;

const DIM: usize = 32;

fn arb_sparse() -> impl Strategy<Value = SparseVec> {
    prop::collection::vec((0u32..DIM as u32, -100.0f64..100.0), 0..16)
        .prop_map(|pairs| SparseVec::from_pairs(DIM, pairs).expect("terms in range"))
}

/// Corpora with deliberate score ties: every third document is a
/// duplicate of an earlier one, so equal cosine scores (and the
/// doc-id tie-break) are exercised constantly, not just when the
/// generator happens to collide.
fn tie_heavy_corpus() -> impl Strategy<Value = Vec<SparseVec>> {
    prop::collection::vec(arb_sparse(), 1..40).prop_map(|docs| {
        let mut out = Vec::with_capacity(docs.len() + docs.len() / 3);
        for (i, d) in docs.iter().enumerate() {
            out.push(d.clone());
            if i % 3 == 0 {
                out.push(docs[i / 2].clone());
            }
        }
        out
    })
}

fn bits(hits: &[fmeter_ir::SearchHit]) -> Vec<(usize, u64)> {
    hits.iter().map(|h| (h.doc, h.score.to_bits())).collect()
}

proptest! {
    #[test]
    fn block_max_matches_exhaustive_bit_for_bit(
        docs in tie_heavy_corpus(),
        query in arb_sparse(),
        k in 1usize..12,
        removals in prop::collection::vec(0usize..4096, 0..8),
        optimize in any::<bool>(),
    ) {
        let mut index = InvertedIndex::new(DIM);
        for d in &docs {
            index.insert(d.clone()).unwrap();
        }
        for r in &removals {
            let doc = r % docs.len();
            if index.is_live(doc) {
                index.remove(doc).unwrap();
            }
        }
        if optimize {
            index.optimize();
        }
        let mut scratch = SearchScratch::new();
        let exhaustive = index.search_exhaustive(&query, k, &mut scratch).unwrap();
        let bm = index.search_block_max(&query, k, &mut scratch).unwrap();
        prop_assert_eq!(bits(&bm), bits(&exhaustive));
        // The dispatching entry point agrees too, whichever strategy it
        // picked.
        let auto = index.search_with(&query, k, &mut scratch).unwrap();
        prop_assert_eq!(bits(&auto), bits(&exhaustive));
    }

    #[test]
    fn block_maxima_match_recomputed_reference(
        docs in prop::collection::vec(arb_sparse(), 1..60),
        removals in prop::collection::vec(0usize..4096, 0..10),
    ) {
        let mut index = InvertedIndex::new(DIM);
        for d in &docs {
            index.insert(d.clone()).unwrap();
        }
        let mut live = vec![true; docs.len()];
        for r in &removals {
            let doc = r % docs.len();
            if index.is_live(doc) {
                index.remove(doc).unwrap();
                live[doc] = false;
            }
        }
        // Full compaction: the flat buffer now holds exactly the live
        // postings in ascending doc order, so the reference is
        // recomputable from the normalised source vectors alone.
        index.optimize();
        for t in 0..DIM as u32 {
            let mut weights: Vec<f64> = Vec::new();
            for (doc, d) in docs.iter().enumerate() {
                if live[doc] {
                    let w = d.l2_normalized().get(t);
                    if w != 0.0 {
                        weights.push(w);
                    }
                }
            }
            let expected_blocks = weights.len().div_ceil(InvertedIndex::BLOCK_SIZE);
            prop_assert!(
                index.num_blocks(t) == expected_blocks,
                "term {}: {} blocks vs {}", t, index.num_blocks(t), expected_blocks
            );
            for (b, chunk) in weights.chunks(InvertedIndex::BLOCK_SIZE).enumerate() {
                let want = chunk.iter().fold(0.0f64, |m, w| m.max(w.abs()));
                let have = index.block_max_impact(t, b);
                prop_assert!(
                    (have - want).abs() <= 1e-12 * (1.0 + want),
                    "term {} block {}: {} vs {}", t, b, have, want
                );
            }
        }
    }

    #[test]
    fn quantized_search_is_internally_bit_exact(
        docs in prop::collection::vec(arb_sparse(), 1..40),
        query in arb_sparse(),
        k in 1usize..12,
    ) {
        // Quantization changes *what* the index stores, never how a
        // stored corpus is searched: against its own dequantized
        // weights, every pruning path must stay bit-identical to the
        // exhaustive scan.
        let mut index = InvertedIndex::new(DIM);
        for d in &docs {
            index.insert(d.clone()).unwrap();
        }
        index.optimize();
        index.set_quantization(QuantizationMode::Int8);
        let mut scratch = SearchScratch::new();
        let exhaustive = index.search_exhaustive(&query, k, &mut scratch).unwrap();
        let bm = index.search_block_max(&query, k, &mut scratch).unwrap();
        prop_assert_eq!(bits(&bm), bits(&exhaustive));
    }
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

/// A 50-class synthetic corpus in the shape of the bench generator:
/// each class owns a band of 5 hot terms; documents jitter the class
/// prototype and add sparse background noise.
fn class_corpus(
    classes: usize,
    per_class: usize,
    dim: usize,
    seed: u64,
) -> (Vec<SparseVec>, Vec<SparseVec>) {
    let mut state = seed;
    let mut docs = Vec::with_capacity(classes * per_class);
    let mut queries = Vec::with_capacity(classes);
    for c in 0..classes {
        let base = (c * 5) % (dim - 8);
        // Hot counts span four orders of magnitude, like the bench
        // generator's `1..10_000` draw: within a class the top-10
        // score gaps dwarf the half-step quantization error, which is
        // what makes 8-bit impacts usable at all.
        let make = |state: &mut u64| {
            let mut pairs = Vec::new();
            for j in 0..5usize {
                let w = (1 + lcg(state) % 10_000) as f64;
                pairs.push(((base + j) as u32, w));
            }
            for _ in 0..2 {
                let t = (lcg(state) as usize) % dim;
                let w = (1 + lcg(state) % 500) as f64;
                pairs.push((t as u32, w));
            }
            SparseVec::from_pairs(dim, pairs).expect("terms in range")
        };
        for _ in 0..per_class {
            docs.push(make(&mut state));
        }
        queries.push(make(&mut state));
    }
    (docs, queries)
}

#[test]
fn quantized_recall_at_10_is_at_least_0_99_on_class_corpus() {
    let (docs, queries) = class_corpus(50, 40, 256, 0x5eed);
    let mut exact = InvertedIndex::new(256);
    for d in &docs {
        exact.insert(d.clone()).unwrap();
    }
    exact.optimize();
    let mut quant = exact.clone();
    quant.set_quantization(QuantizationMode::Int8);
    let mut scratch = SearchScratch::new();
    let (mut hit, mut total) = (0usize, 0usize);
    for q in &queries {
        let truth = exact.search_exhaustive(q, 10, &mut scratch).unwrap();
        let approx = quant.search_block_max(q, 10, &mut scratch).unwrap();
        let truth_ids: Vec<usize> = truth.iter().map(|h| h.doc).collect();
        hit += approx.iter().filter(|h| truth_ids.contains(&h.doc)).count();
        total += truth.len();
    }
    let recall = hit as f64 / total as f64;
    assert!(
        recall >= 0.99,
        "quantized recall@10 {recall:.4} < 0.99 ({hit}/{total})"
    );
}
