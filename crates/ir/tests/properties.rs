//! Property-based tests for the vector space model.

use fmeter_ir::{
    cosine_similarity, euclidean_distance, euclidean_distance_sq, manhattan_distance,
    minkowski_distance, Corpus, CsrMatrix, InvertedIndex, Metric, SearchScratch, SparseVec,
    TermCounts, TfIdfModel,
};
use proptest::prelude::*;

const DIM: usize = 32;

fn arb_sparse() -> impl Strategy<Value = SparseVec> {
    prop::collection::vec((0u32..DIM as u32, -100.0f64..100.0), 0..16)
        .prop_map(|pairs| SparseVec::from_pairs(DIM, pairs).expect("terms in range"))
}

/// Every metric the fused kernels implement, Minkowski at a few orders.
const ALL_METRICS: [Metric; 6] = [
    Metric::Euclidean,
    Metric::Manhattan,
    Metric::Minkowski(1.0),
    Metric::Minkowski(1.5),
    Metric::Minkowski(3.0),
    Metric::Cosine,
];

/// The naive reference the fused kernels replaced: materialise the
/// difference vector with `sub()` and take its norm (cosine from the
/// textbook dot/norms formula).
fn naive_distance(metric: Metric, a: &SparseVec, b: &SparseVec) -> f64 {
    let diff = a.sub(b).expect("dims match");
    match metric {
        Metric::Euclidean => diff.norm_l2(),
        Metric::Manhattan => diff.norm_l1(),
        Metric::Minkowski(p) => diff.norm_lp(p).expect("valid order"),
        Metric::Cosine => {
            let denom = a.norm_l2() * b.norm_l2();
            if denom == 0.0 {
                1.0
            } else {
                1.0 - (a.dot(b).expect("dims match") / denom).clamp(-1.0, 1.0)
            }
        }
    }
}

/// Tolerance scaled by magnitude: 1e-12 relative, 1e-12 floor.
fn close(x: f64, y: f64) -> bool {
    (x - y).abs() <= 1e-12 * (1.0 + x.abs().max(y.abs()))
}

fn arb_counts() -> impl Strategy<Value = TermCounts> {
    prop::collection::vec((0u32..DIM as u32, 0u64..1000), 0..16)
        .prop_map(|pairs| TermCounts::from_pairs(DIM, pairs).expect("terms in range"))
}

fn arb_corpus() -> impl Strategy<Value = Corpus> {
    prop::collection::vec(arb_counts(), 1..12).prop_map(|docs| docs.into_iter().collect())
}

proptest! {
    #[test]
    fn dense_round_trip_preserves_vector(v in arb_sparse()) {
        let dense = v.to_dense();
        let back = SparseVec::from_dense(&dense);
        prop_assert_eq!(v, back);
    }

    #[test]
    fn dot_is_commutative(a in arb_sparse(), b in arb_sparse()) {
        let ab = a.dot(&b).unwrap();
        let ba = b.dot(&a).unwrap();
        prop_assert!((ab - ba).abs() <= 1e-9 * (1.0 + ab.abs()));
    }

    #[test]
    fn dot_matches_dense_computation(a in arb_sparse(), b in arb_sparse()) {
        let sparse = a.dot(&b).unwrap();
        let dense: f64 = a
            .to_dense()
            .iter()
            .zip(b.to_dense())
            .map(|(x, y)| x * y)
            .sum();
        prop_assert!((sparse - dense).abs() <= 1e-9 * (1.0 + dense.abs()));
    }

    #[test]
    fn addition_is_commutative(a in arb_sparse(), b in arb_sparse()) {
        let l = a.add(&b).unwrap().to_dense();
        let r = b.add(&a).unwrap().to_dense();
        for (x, y) in l.iter().zip(&r) {
            prop_assert!((x - y).abs() <= 1e-12);
        }
    }

    #[test]
    fn sub_then_add_round_trips(a in arb_sparse(), b in arb_sparse()) {
        let back = a.sub(&b).unwrap().add(&b).unwrap().to_dense();
        for (x, y) in back.iter().zip(a.to_dense()) {
            prop_assert!((x - y).abs() <= 1e-9);
        }
    }

    #[test]
    fn cauchy_schwarz(a in arb_sparse(), b in arb_sparse()) {
        let dot = a.dot(&b).unwrap().abs();
        let bound = a.norm_l2() * b.norm_l2();
        prop_assert!(dot <= bound + 1e-9 * (1.0 + bound));
    }

    #[test]
    fn triangle_inequality_euclidean(
        a in arb_sparse(),
        b in arb_sparse(),
        c in arb_sparse(),
    ) {
        let ab = euclidean_distance(&a, &b).unwrap();
        let bc = euclidean_distance(&b, &c).unwrap();
        let ac = euclidean_distance(&a, &c).unwrap();
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn triangle_inequality_manhattan(
        a in arb_sparse(),
        b in arb_sparse(),
        c in arb_sparse(),
    ) {
        let ab = manhattan_distance(&a, &b).unwrap();
        let bc = manhattan_distance(&b, &c).unwrap();
        let ac = manhattan_distance(&a, &c).unwrap();
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn distances_are_symmetric_and_nonnegative(a in arb_sparse(), b in arb_sparse()) {
        for metric in [Metric::Euclidean, Metric::Manhattan, Metric::Minkowski(3.0)] {
            let d1 = metric.distance(&a, &b).unwrap();
            let d2 = metric.distance(&b, &a).unwrap();
            prop_assert!(d1 >= 0.0);
            prop_assert!((d1 - d2).abs() <= 1e-9 * (1.0 + d1));
        }
    }

    #[test]
    fn self_distance_is_zero(a in arb_sparse()) {
        prop_assert_eq!(euclidean_distance(&a, &a).unwrap(), 0.0);
        prop_assert_eq!(manhattan_distance(&a, &a).unwrap(), 0.0);
        prop_assert_eq!(minkowski_distance(&a, &a, 4.0).unwrap(), 0.0);
    }

    #[test]
    fn minkowski_orders_are_monotone_decreasing(a in arb_sparse(), b in arb_sparse()) {
        // For fixed vectors, d_p decreases (weakly) as p grows.
        let d1 = minkowski_distance(&a, &b, 1.0).unwrap();
        let d2 = minkowski_distance(&a, &b, 2.0).unwrap();
        let d4 = minkowski_distance(&a, &b, 4.0).unwrap();
        prop_assert!(d2 <= d1 + 1e-9);
        prop_assert!(d4 <= d2 + 1e-9);
    }

    #[test]
    fn cosine_is_bounded_and_scale_invariant(
        a in arb_sparse(),
        b in arb_sparse(),
        s in 0.01f64..100.0,
    ) {
        let c = cosine_similarity(&a, &b).unwrap();
        prop_assert!((-1.0..=1.0).contains(&c));
        let c_scaled = cosine_similarity(&a.scaled(s), &b).unwrap();
        prop_assert!((c - c_scaled).abs() <= 1e-9);
    }

    #[test]
    fn l2_normalization_is_idempotent_and_unit(a in arb_sparse()) {
        let n = a.l2_normalized();
        if !a.is_zero() {
            prop_assert!((n.norm_l2() - 1.0).abs() <= 1e-9);
        }
        let nn = n.l2_normalized();
        for (x, y) in n.to_dense().iter().zip(nn.to_dense()) {
            prop_assert!((x - y).abs() <= 1e-12);
        }
    }

    #[test]
    fn fused_kernels_match_naive_reference(a in arb_sparse(), b in arb_sparse()) {
        for metric in ALL_METRICS {
            let reference = naive_distance(metric, &a, &b);
            let fused = metric.distance(&a, &b).unwrap();
            prop_assert!(close(fused, reference), "{metric:?}: {fused} vs {reference}");
            let fused_sq = metric.distance_sq(&a, &b).unwrap();
            prop_assert!(
                close(fused_sq, reference * reference),
                "{metric:?} sq: {fused_sq} vs {}", reference * reference
            );
            let via_slices = metric
                .distance_slices(a.terms(), a.values(), b.terms(), b.values())
                .unwrap();
            prop_assert!(close(via_slices, reference));
        }
        prop_assert!(close(
            euclidean_distance_sq(&a, &b).unwrap(),
            naive_distance(Metric::Euclidean, &a, &b).powi(2)
        ));
    }

    #[test]
    fn fused_kernels_match_naive_on_zero_vectors(a in arb_sparse()) {
        let z = SparseVec::zeros(DIM);
        for metric in ALL_METRICS {
            for (x, y) in [(&a, &z), (&z, &a), (&z, &z)] {
                let reference = naive_distance(metric, x, y);
                let fused = metric.distance(x, y).unwrap();
                prop_assert!(close(fused, reference), "{metric:?}: {fused} vs {reference}");
            }
        }
    }

    #[test]
    fn fused_kernels_match_naive_on_disjoint_supports(a in arb_sparse(), b in arb_sparse()) {
        // Remap a onto even terms and b onto odd terms of a doubled space:
        // the merge-join never sees a shared term.
        let a2: SparseVec = SparseVec::from_pairs(
            2 * DIM, a.iter().map(|(t, v)| (2 * t, v))).unwrap();
        let b2: SparseVec = SparseVec::from_pairs(
            2 * DIM, b.iter().map(|(t, v)| (2 * t + 1, v))).unwrap();
        for metric in ALL_METRICS {
            let reference = naive_distance(metric, &a2, &b2);
            let fused = metric.distance(&a2, &b2).unwrap();
            prop_assert!(close(fused, reference), "{metric:?}: {fused} vs {reference}");
        }
    }

    #[test]
    fn csr_batch_kernel_matches_naive_reference(
        rows in prop::collection::vec(arb_sparse(), 0..10),
    ) {
        let m = CsrMatrix::from_rows(&rows).unwrap();
        prop_assert_eq!(m.len(), rows.len());
        for metric in ALL_METRICS {
            let cond = m.pairwise_condensed(metric).unwrap();
            let n = rows.len();
            prop_assert_eq!(cond.len(), n * n.saturating_sub(1) / 2);
            for i in 0..n {
                for j in (i + 1)..n {
                    let reference = naive_distance(metric, &rows[i], &rows[j]);
                    let got = cond[m.condensed_index(i, j)];
                    prop_assert!(
                        close(got, reference),
                        "{metric:?} ({i},{j}): {got} vs {reference}"
                    );
                }
            }
        }
    }

    #[test]
    fn csr_round_trips_rows_and_norms(rows in prop::collection::vec(arb_sparse(), 1..10)) {
        let m = CsrMatrix::from_rows(&rows).unwrap();
        for (i, r) in rows.iter().enumerate() {
            prop_assert_eq!(m.row_to_sparse(i), r.clone());
            prop_assert!(close(m.norm(i), r.norm_l2()));
            prop_assert!(close(m.sq_norm(i), r.norm_l2_sq()));
        }
    }

    #[test]
    fn tfidf_weights_are_nonnegative_and_finite(corpus in arb_corpus()) {
        let (model, vectors) = TfIdfModel::fit_transform(&corpus).unwrap();
        prop_assert_eq!(model.num_docs(), corpus.len());
        for v in vectors {
            for (_, w) in v.iter() {
                prop_assert!(w.is_finite());
                prop_assert!(w >= 0.0);
            }
        }
    }

    #[test]
    fn tfidf_zero_for_ubiquitous_terms(corpus in arb_corpus()) {
        let model = TfIdfModel::fit(&corpus).unwrap();
        let df = corpus.document_frequencies();
        for (term, &f) in df.iter().enumerate() {
            if f as usize == corpus.len() {
                prop_assert!(model.idf(term as u32).abs() <= 1e-12);
            }
        }
    }

    #[test]
    fn tfidf_idf_is_monotone_in_rarity(corpus in arb_corpus()) {
        let model = TfIdfModel::fit(&corpus).unwrap();
        let df = corpus.document_frequencies();
        // Rarer terms never get smaller idf than more common (seen) terms.
        for i in 0..df.len() {
            for j in 0..df.len() {
                if df[i] > 0 && df[j] > 0 && df[i] < df[j] {
                    prop_assert!(model.idf(i as u32) >= model.idf(j as u32) - 1e-12);
                }
            }
        }
    }

    #[test]
    fn term_counts_total_matches_iter_sum(doc in arb_counts()) {
        let total: u64 = doc.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(doc.total(), total);
    }

    #[test]
    fn wand_topk_matches_exhaustive_scoring(
        docs in prop::collection::vec(arb_sparse(), 1..40),
        query in arb_sparse(),
        k in 1usize..12,
        optimize in any::<bool>(),
    ) {
        // The WAND path must return *identical* hits to the exhaustive
        // accumulator — same documents, bit-identical scores — for any
        // corpus shape (negative weights, zero vectors, duplicate docs)
        // and any compaction state (flat postings vs live tails).
        let mut index = InvertedIndex::new(DIM);
        for d in &docs {
            index.insert(d.clone()).unwrap();
        }
        if optimize {
            index.optimize();
        }
        let mut scratch = SearchScratch::new();
        let exhaustive = index.search_exhaustive(&query, k, &mut scratch).unwrap();
        let wand = index.search_wand(&query, k, &mut scratch).unwrap();
        prop_assert_eq!(&wand, &exhaustive);
        // And the dispatching entry point agrees with both.
        let auto = index.search_with(&query, k, &mut scratch).unwrap();
        prop_assert_eq!(&auto, &exhaustive);
    }

    #[test]
    fn wand_max_impact_bounds_every_posting(
        docs in prop::collection::vec(arb_sparse(), 1..20),
        optimize in any::<bool>(),
    ) {
        let mut index = InvertedIndex::new(DIM);
        for d in &docs {
            index.insert(d.clone()).unwrap();
        }
        if optimize {
            index.optimize();
        }
        // Recompute the bound from the normalised source vectors.
        let mut expected = vec![0.0f64; DIM];
        for d in &docs {
            for (t, w) in d.l2_normalized().iter() {
                expected[t as usize] = expected[t as usize].max(w.abs());
            }
        }
        for t in 0..DIM as u32 {
            prop_assert!(
                close(index.max_impact(t), expected[t as usize]),
                "term {}: {} vs {}", t, index.max_impact(t), expected[t as usize]
            );
        }
    }
}
