//! Vector space model for Fmeter signatures.
//!
//! This crate implements the information-retrieval machinery the Fmeter paper
//! (Marian et al., MIDDLEWARE 2012) borrows from text mining: documents are
//! bags of *terms* (kernel functions), weighted with
//! [tf-idf](crate::TfIdfModel), embedded as [sparse vectors](crate::SparseVec)
//! in an orthonormal basis induced by the distinct terms, and compared with
//! [cosine similarity](crate::cosine_similarity) or
//! [Minkowski distances](crate::minkowski_distance).
//!
//! The crate is deliberately independent of the kernel simulator: a *term* is
//! just a `u32` [`TermId`], so the same model works for kernel-function
//! signatures, text, or any other bag-of-terms data. It owns everything
//! between raw counts and ranked hits:
//!
//! * [`TermCounts`] / [`Corpus`] — the raw bag-of-terms documents (§2.1's
//!   `n_{i,j}` counts),
//! * [`TfIdfModel`] — fitting, transforming, and *incrementally
//!   maintaining* the weights (observe/unobserve, drift measurement with
//!   a cached estimator, one-pass idf refits),
//! * [`SparseVec`] and the fused [`Metric`] distance kernels, plus the
//!   packed [`CsrMatrix`] corpus layout the batch/clustering paths use,
//! * [`AnnGraph`] — an incremental navigable-small-world graph whose
//!   `knn(query, k, ef)` beam search feeds sub-quadratic clustering and
//!   approximate retrieval with candidate lists in O(ef · degree)
//!   distance evaluations,
//! * [`InvertedIndex`] — the block-max postings search structure with
//!   tombstone-aware removal, posting rebuilds, optional 8-bit impact
//!   quantization ([`QuantizationMode`]), and WAND/MaxScore/block-max
//!   early-exit top-k (§2.2's "database of previously labeled
//!   signatures" retrieval path).
//!
//! `fmeter-core` assembles these into the operator-facing
//! [`SignatureDb`](https://docs.rs/fmeter-core); `docs/ARCHITECTURE.md`
//! in the repository shows the full data flow.
//!
//! # Quickstart
//!
//! ```
//! use fmeter_ir::{Corpus, TermCounts, TfIdfModel};
//!
//! // Three "documents": bags of term counts (term id -> count).
//! let mut corpus = Corpus::new(4);
//! corpus.push(TermCounts::from_pairs(4, [(0, 10), (1, 2)]).unwrap());
//! corpus.push(TermCounts::from_pairs(4, [(0, 8), (2, 5)]).unwrap());
//! corpus.push(TermCounts::from_pairs(4, [(0, 9), (3, 1)]).unwrap());
//!
//! let model = TfIdfModel::fit(&corpus).unwrap();
//! // Term 0 appears in every document, so its idf (and weight) is zero.
//! let v = model.transform(corpus.doc(0).unwrap());
//! assert_eq!(v.get(0), 0.0);
//! assert!(v.get(1) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ann;
pub mod codec;
mod corpus;
mod distance;
mod error;
mod index;
mod matrix;
mod shard;
mod sparse;
mod tfidf;

pub use ann::{AnnGraph, DEFAULT_EF_CONSTRUCTION, DEFAULT_MAX_DEGREE};
pub use codec::{BinCodec, CodecError};
pub use corpus::{Corpus, TermCounts};
pub use distance::{
    cosine_similarity, dot_slices, dot_sparse_dense, euclidean_distance, euclidean_distance_sq,
    manhattan_distance, minkowski_distance, Metric,
};
pub use error::IrError;
pub use index::{InvertedIndex, QuantizationMode, SearchHit, SearchScratch};
pub use matrix::CsrMatrix;
pub use shard::{merge_topk, search_sharded, Shard, ShardRouter};
pub use sparse::SparseVec;
pub use tfidf::{IdfMode, IdfRefit, TfIdfModel, TfIdfOptions, TfMode};

/// Identifier of a term in the vector space.
///
/// For Fmeter this is (an index derived from) a kernel function; for text it
/// would be a word id. Term ids are dense indices in `0..dim`.
pub type TermId = u32;

/// Identifier of a document within a [`Corpus`] or [`InvertedIndex`].
pub type DocId = usize;
